//! Path links: a direction plus a length abstraction.

use std::fmt;

/// The direction of a link.
///
/// `Down` means "left or right" — the direction approximation of the paper
/// (the path `R^1 D^+` of Figure 2 has an exact first direction and an
/// approximate remainder).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Dir {
    Left,
    Right,
    Down,
}

impl Dir {
    /// Whether a concrete edge in direction `other` is described by `self`.
    /// `Down` covers both concrete directions; `Left`/`Right` cover only
    /// themselves.
    pub fn covers(self, other: Dir) -> bool {
        self == Dir::Down || self == other
    }

    /// The least upper bound of two directions.
    pub fn join(self, other: Dir) -> Dir {
        if self == other {
            self
        } else {
            Dir::Down
        }
    }

    /// Single-letter rendering used in path expressions.
    pub fn letter(self) -> char {
        match self {
            Dir::Left => 'L',
            Dir::Right => 'R',
            Dir::Down => 'D',
        }
    }
}

impl fmt::Display for Dir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.letter())
    }
}

/// One link of a path expression: `dir^min` when `exact`, otherwise
/// "`min` or more edges in direction `dir`" (`dir^min+`, printed `dir+` when
/// `min == 1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Link {
    pub dir: Dir,
    /// Minimum number of edges (always at least 1).
    pub min: u32,
    /// If `true` the link stands for exactly `min` edges.
    pub exact: bool,
}

impl Link {
    /// `dir^n` — exactly `n` edges (`n >= 1`).
    pub fn exact(dir: Dir, n: u32) -> Link {
        assert!(n >= 1, "links describe at least one edge");
        Link {
            dir,
            min: n,
            exact: true,
        }
    }

    /// `dir^n+` — `n` or more edges (`n >= 1`).
    pub fn at_least(dir: Dir, n: u32) -> Link {
        assert!(n >= 1, "links describe at least one edge");
        Link {
            dir,
            min: n,
            exact: false,
        }
    }

    /// The maximum number of edges, or `None` when unbounded.
    pub fn max_edges(&self) -> Option<u32> {
        if self.exact {
            Some(self.min)
        } else {
            None
        }
    }

    /// Whether every concrete edge sequence described by `other` is also
    /// described by `self` (direction and length inclusion).
    pub fn covers(&self, other: &Link) -> bool {
        if !self.dir.covers(other.dir) {
            return false;
        }
        // length interval inclusion: [other.min, other.max] ⊆ [self.min, self.max]
        if other.min < self.min {
            return false;
        }
        match (self.max_edges(), other.max_edges()) {
            (None, _) => true,
            (Some(_), None) => false,
            (Some(smax), Some(omax)) => omax <= smax,
        }
    }

    /// Fuse two adjacent links of the same direction into one
    /// (`L^1 · L+  =  L^2+`).  Returns `None` when the directions differ.
    pub fn fuse(&self, other: &Link) -> Option<Link> {
        if self.dir != other.dir {
            return None;
        }
        Some(Link {
            dir: self.dir,
            min: self.min + other.min,
            exact: self.exact && other.exact,
        })
    }

    /// Least upper bound of two links viewed as single-segment summaries:
    /// the direction join and the smallest length interval containing both.
    pub fn generalize(&self, other: &Link) -> Link {
        let dir = self.dir.join(other.dir);
        let min = self.min.min(other.min);
        let exact = match (self.max_edges(), other.max_edges()) {
            (Some(a), Some(b)) => a == b && a == min,
            _ => false,
        };
        Link { dir, min, exact }
    }

    /// Remove one leading edge in direction `removed`.
    ///
    /// Used when re-rooting a path at a child (`a := b.f`): a path from `b`
    /// that starts with this link is viewed from `b.f`.  Returns:
    /// * `None` — the link cannot start with an edge in that direction, so no
    ///   path survives,
    /// * `Some(None)` — the link can consist of exactly that one edge, and
    ///   nothing of it remains,
    /// * `Some(Some(rest))` — the remainder of the link after removing one
    ///   edge.
    ///
    /// Note that both of the last two can apply (e.g. `L+` minus one left
    /// edge is "nothing or `L+` again"); callers get that by also checking
    /// [`Link::can_be_single_edge`].
    pub fn strip_one(&self, removed: Dir) -> Option<Option<Link>> {
        if !self.dir.covers(removed) && !removed.covers(self.dir) {
            // Directions are incompatible (e.g. stripping a left edge from R^2).
            return None;
        }
        if self.exact {
            if self.min == 1 {
                Some(None)
            } else {
                Some(Some(Link::exact(self.dir, self.min - 1)))
            }
        } else if self.min <= 1 {
            // `dir+` minus one edge: one-or-more minus one = zero-or-more;
            // the non-empty remainder is `dir+` again.
            Some(Some(Link::at_least(self.dir, 1)))
        } else {
            Some(Some(Link::at_least(self.dir, self.min - 1)))
        }
    }

    /// Whether the link can describe exactly one edge.
    pub fn can_be_single_edge(&self) -> bool {
        self.min == 1
    }

    /// Whether the first edge of this link could be in direction `d`.
    pub fn first_edge_may_be(&self, d: Dir) -> bool {
        self.dir.covers(d) || d.covers(self.dir)
    }

    /// Whether the first edge of this link is *guaranteed* to be in
    /// direction `d` (only when the link direction is concrete and equal,
    /// or `d` is `Down`).
    pub fn first_edge_must_be(&self, d: Dir) -> bool {
        d.covers(self.dir)
    }
}

impl fmt::Display for Link {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.exact {
            write!(f, "{}{}", self.dir, self.min)
        } else if self.min == 1 {
            write!(f, "{}+", self.dir)
        } else {
            write!(f, "{}{}+", self.dir, self.min)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dir_covers_and_join() {
        assert!(Dir::Down.covers(Dir::Left));
        assert!(Dir::Down.covers(Dir::Right));
        assert!(Dir::Left.covers(Dir::Left));
        assert!(!Dir::Left.covers(Dir::Right));
        assert!(!Dir::Left.covers(Dir::Down));
        assert_eq!(Dir::Left.join(Dir::Left), Dir::Left);
        assert_eq!(Dir::Left.join(Dir::Right), Dir::Down);
        assert_eq!(Dir::Down.join(Dir::Right), Dir::Down);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Link::exact(Dir::Left, 1).to_string(), "L1");
        assert_eq!(Link::exact(Dir::Right, 3).to_string(), "R3");
        assert_eq!(Link::at_least(Dir::Left, 1).to_string(), "L+");
        assert_eq!(Link::at_least(Dir::Down, 2).to_string(), "D2+");
    }

    #[test]
    fn coverage_by_direction() {
        let d_plus = Link::at_least(Dir::Down, 1);
        assert!(d_plus.covers(&Link::exact(Dir::Left, 2)));
        assert!(d_plus.covers(&Link::at_least(Dir::Right, 5)));
        assert!(!Link::at_least(Dir::Left, 1).covers(&Link::exact(Dir::Right, 1)));
        assert!(!Link::at_least(Dir::Left, 1).covers(&Link::at_least(Dir::Down, 1)));
    }

    #[test]
    fn coverage_by_length() {
        assert!(Link::at_least(Dir::Left, 1).covers(&Link::exact(Dir::Left, 7)));
        assert!(!Link::at_least(Dir::Left, 3).covers(&Link::exact(Dir::Left, 2)));
        assert!(Link::exact(Dir::Left, 2).covers(&Link::exact(Dir::Left, 2)));
        assert!(!Link::exact(Dir::Left, 2).covers(&Link::exact(Dir::Left, 3)));
        assert!(!Link::exact(Dir::Left, 2).covers(&Link::at_least(Dir::Left, 2)));
    }

    #[test]
    fn fuse_same_direction() {
        let a = Link::exact(Dir::Left, 1);
        let b = Link::at_least(Dir::Left, 1);
        assert_eq!(a.fuse(&b), Some(Link::at_least(Dir::Left, 2)));
        assert_eq!(
            a.fuse(&Link::exact(Dir::Left, 2)),
            Some(Link::exact(Dir::Left, 3))
        );
        assert_eq!(a.fuse(&Link::exact(Dir::Right, 1)), None);
    }

    #[test]
    fn generalize_is_upper_bound() {
        let a = Link::exact(Dir::Left, 1);
        let b = Link::exact(Dir::Left, 2);
        let g = a.generalize(&b);
        assert!(g.covers(&a));
        assert!(g.covers(&b));
        assert_eq!(g, Link::at_least(Dir::Left, 1));

        let c = Link::exact(Dir::Right, 1);
        let g = a.generalize(&c);
        assert_eq!(g, Link::exact(Dir::Down, 1));
        assert!(g.covers(&a) && g.covers(&c));

        let same = a.generalize(&a);
        assert_eq!(same, a);
    }

    #[test]
    fn strip_one_edge() {
        // L^1 minus a left edge: nothing remains
        assert_eq!(Link::exact(Dir::Left, 1).strip_one(Dir::Left), Some(None));
        // L^3 minus a left edge: L^2
        assert_eq!(
            Link::exact(Dir::Left, 3).strip_one(Dir::Left),
            Some(Some(Link::exact(Dir::Left, 2)))
        );
        // L+ minus a left edge: L+ remains possible (and the empty case is
        // signalled by can_be_single_edge)
        assert_eq!(
            Link::at_least(Dir::Left, 1).strip_one(Dir::Left),
            Some(Some(Link::at_least(Dir::Left, 1)))
        );
        assert!(Link::at_least(Dir::Left, 1).can_be_single_edge());
        // R^2 minus a left edge: impossible
        assert_eq!(Link::exact(Dir::Right, 2).strip_one(Dir::Left), None);
        // D+ minus a left edge: D+ or nothing
        assert_eq!(
            Link::at_least(Dir::Down, 1).strip_one(Dir::Left),
            Some(Some(Link::at_least(Dir::Down, 1)))
        );
    }

    #[test]
    fn first_edge_predicates() {
        assert!(Link::exact(Dir::Left, 2).first_edge_may_be(Dir::Left));
        assert!(!Link::exact(Dir::Left, 2).first_edge_may_be(Dir::Right));
        assert!(Link::at_least(Dir::Down, 1).first_edge_may_be(Dir::Left));
        assert!(Link::exact(Dir::Left, 2).first_edge_must_be(Dir::Left));
        assert!(!Link::at_least(Dir::Down, 1).first_edge_must_be(Dir::Left));
        assert!(Link::exact(Dir::Left, 2).first_edge_must_be(Dir::Down));
    }

    #[test]
    #[should_panic]
    fn zero_length_link_is_rejected() {
        let _ = Link::exact(Dir::Left, 0);
    }
}
