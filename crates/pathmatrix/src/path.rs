//! Path expressions: `S` or a non-empty sequence of links, each *definite*
//! or *possible*.
//!
//! Paths are stored inline — a fixed `[Link; MAX_LINKS]` array plus a length
//! byte — so a `Path` is `Copy`, never allocates, and clones with a memcpy.
//! `len == 0` encodes the `S` path.  The widening bound [`MAX_LINKS`] that
//! keeps the abstract domain finite is exactly what makes the inline array
//! total: any normalized sequence longer than the array is summarized into a
//! single link, as before.

use crate::link::{Dir, Link};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Whether a path is guaranteed to exist or only may exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Certainty {
    /// The path is guaranteed to exist (rendered without a suffix).
    Definite,
    /// The path may or may not exist (rendered with a trailing `?`).
    Possible,
}

impl Certainty {
    /// The weaker of two certainties.
    pub fn and(self, other: Certainty) -> Certainty {
        if self == Certainty::Definite && other == Certainty::Definite {
            Certainty::Definite
        } else {
            Certainty::Possible
        }
    }

    pub fn is_definite(self) -> bool {
        self == Certainty::Definite
    }
}

/// Paths longer than this many (normalized) links are widened to a single
/// summary link.  Keeping the bound small guarantees a finite abstract domain
/// and hence termination of every fixpoint computation.
pub const MAX_LINKS: usize = 4;

/// Filler for unused slots of the inline link array; never observed through
/// the public API (only `links[..len]` is meaningful).
const FILL_LINK: Link = Link {
    dir: Dir::Left,
    min: 1,
    exact: true,
};

/// A path expression with its certainty.
///
/// `S` when `len == 0`, otherwise the normalized link sequence
/// `links[..len]` (no two adjacent links share a direction).
#[derive(Debug, Clone, Copy)]
pub struct Path {
    links: [Link; MAX_LINKS],
    len: u8,
    pub certainty: Certainty,
}

impl Path {
    /// The `S` path.
    pub fn same(certainty: Certainty) -> Path {
        Path {
            links: [FILL_LINK; MAX_LINKS],
            len: 0,
            certainty,
        }
    }

    /// A single-link path.
    pub fn from_link(link: Link, certainty: Certainty) -> Path {
        let mut links = [FILL_LINK; MAX_LINKS];
        links[0] = link;
        Path {
            links,
            len: 1,
            certainty,
        }
    }

    /// Build a path from a sequence of links, normalizing adjacent links of
    /// the same direction and widening over-long paths to a single summary
    /// link.  Panics on an empty sequence; use [`Path::same`] for `S`.
    pub fn from_links(links: impl IntoIterator<Item = Link>, certainty: Certainty) -> Path {
        let mut buf = [FILL_LINK; MAX_LINKS];
        let mut len = 0usize;
        let mut overflow = false;
        // Summary accumulators over *all* links; fusing preserves the
        // direction set, the min sum, and all-exactness, so summarizing the
        // raw sequence equals summarizing the normalized one.
        let mut sum_dir = Dir::Left;
        let mut sum_min = 0u32;
        let mut sum_exact = true;
        let mut any = false;
        for link in links {
            if any {
                sum_dir = sum_dir.join(link.dir);
            } else {
                sum_dir = link.dir;
            }
            sum_min += link.min;
            sum_exact &= link.exact;
            any = true;
            if overflow {
                continue;
            }
            if len > 0 {
                if let Some(fused) = buf[len - 1].fuse(&link) {
                    buf[len - 1] = fused;
                    continue;
                }
            }
            if len == MAX_LINKS {
                overflow = true;
            } else {
                buf[len] = link;
                len += 1;
            }
        }
        assert!(any, "link paths must be non-empty; use Path::same");
        if overflow {
            return Path::from_link(
                Link {
                    dir: sum_dir,
                    min: sum_min,
                    exact: sum_exact,
                },
                certainty,
            );
        }
        Path {
            links: buf,
            len: len as u8,
            certainty,
        }
    }

    fn summarize_links(links: &[Link]) -> Link {
        let dir = links
            .iter()
            .map(|l| l.dir)
            .reduce(Dir::join)
            .expect("non-empty");
        let min: u32 = links.iter().map(|l| l.min).sum();
        let exact = links.iter().all(|l| l.exact);
        Link { dir, min, exact }
    }

    /// Whether this is the `S` path.
    pub fn is_same(&self) -> bool {
        self.len == 0
    }

    /// The link sequence, empty for `S`.
    pub fn links(&self) -> &[Link] {
        &self.links[..self.len as usize]
    }

    /// Whether two paths have the same shape (`S`-ness and link sequence),
    /// ignoring certainty.
    pub fn same_shape(&self, other: &Path) -> bool {
        self.links() == other.links()
    }

    /// A copy of this path with the given certainty.
    pub fn with_certainty(&self, certainty: Certainty) -> Path {
        Path { certainty, ..*self }
    }

    /// A copy demoted to `Possible`.
    pub fn weakened(&self) -> Path {
        self.with_certainty(Certainty::Possible)
    }

    pub fn is_definite(&self) -> bool {
        self.certainty.is_definite()
    }

    /// The minimum number of edges along the path (0 for `S`).
    pub fn min_len(&self) -> u32 {
        self.links().iter().map(|l| l.min).sum()
    }

    /// The maximum number of edges, `None` if unbounded.
    pub fn max_len(&self) -> Option<u32> {
        let mut total = 0u32;
        for l in self.links() {
            total += l.max_edges()?;
        }
        Some(total)
    }

    /// Append one link at the end of the path (`p · dir^1` etc.).
    pub fn append_link(&self, link: Link) -> Path {
        Path::from_links(
            self.links().iter().copied().chain(std::iter::once(link)),
            self.certainty,
        )
    }

    /// Concatenate two paths (`self · other`).  The certainty of the result
    /// is the weaker of the two.
    pub fn concat(&self, other: &Path) -> Path {
        let certainty = self.certainty.and(other.certainty);
        if self.is_same() {
            return other.with_certainty(certainty);
        }
        if other.is_same() {
            return self.with_certainty(certainty);
        }
        Path::from_links(self.links().iter().chain(other.links()).copied(), certainty)
    }

    /// Whether every concrete path described by `other` is also described by
    /// `self` (shape only; certainty is ignored).
    pub fn covers(&self, other: &Path) -> bool {
        match (self.is_same(), other.is_same()) {
            (true, true) => true,
            (true, false) | (false, true) => false,
            (false, false) => covers_links(self.links(), other.links()),
        }
    }

    /// The least upper bound of two paths as a *single* path, if one exists
    /// (`S` cannot be generalized with a link path).  Used for widening and
    /// for bounding path-set cardinality.
    pub fn generalize(&self, other: &Path) -> Option<Path> {
        let certainty = self.certainty.and(other.certainty);
        match (self.is_same(), other.is_same()) {
            (true, true) => Some(Path::same(certainty)),
            (true, false) | (false, true) => None,
            (false, false) => {
                let a = self.links();
                let b = other.links();
                if a.len() == 1 && b.len() == 1 {
                    return Some(Path::from_link(a[0].generalize(&b[0]), certainty));
                }
                if a.len() == b.len() {
                    // element-wise generalization keeps more structure,
                    // e.g. R1 D2 ⊔ R1 D5 = R1 D2+.  It is always an upper
                    // bound because each segment's concretizations are
                    // covered.
                    return Some(Path::from_links(
                        a.iter().zip(b.iter()).map(|(x, y)| x.generalize(y)),
                        certainty,
                    ));
                }
                let sa = Self::summarize_links(a);
                let sb = Self::summarize_links(b);
                Some(Path::from_link(sa.generalize(&sb), certainty))
            }
        }
    }

    /// The first link of the path, if it is a link path.
    pub fn first_link(&self) -> Option<&Link> {
        self.links().first()
    }

    /// Whether the path's first edge is guaranteed to follow `dir`
    /// (`dir` is a concrete direction, `Left` or `Right`).
    pub fn starts_definitely_with(&self, dir: Dir) -> bool {
        self.first_link().is_some_and(|l| l.dir == dir)
    }

    /// Whether the path's first edge could follow `dir`.
    pub fn may_start_with(&self, dir: Dir) -> bool {
        self.first_link().is_some_and(|l| l.first_edge_may_be(dir))
    }

    /// View this path (from node `b` to some node `x`) from the `dir`-child
    /// of `b` instead: the results describe the possible relationships
    /// between `b.dir` and `x`.
    ///
    /// Returns every surviving shape (at most two); an empty result means `x`
    /// cannot be reached from the child along this path.  The `S` path never
    /// survives re-rooting (the caller handles the `x` *is* `b` case
    /// separately).
    pub fn strip_first(&self, dir: Dir) -> Stripped {
        let mut out = Stripped::empty();
        if self.is_same() {
            return out;
        }
        let links = self.links();
        let first = links[0];
        let rest = &links[1..];
        let Some(stripped) = first.strip_one(dir) else {
            return out;
        };

        // The decomposition is forced (certainty preserved) only when the
        // first edge *must* be `dir` and the remaining length is determined.
        let forced = first.first_edge_must_be(dir) && first.exact;
        let certainty = if forced {
            self.certainty
        } else {
            Certainty::Possible
        };

        // Case 1: the first link is consumed entirely by the removed edge.
        if first.can_be_single_edge() {
            if rest.is_empty() {
                out.push(Path::same(certainty));
            } else {
                out.push(Path::from_links(rest.iter().copied(), certainty));
            }
        }

        // Case 2: part of the first link remains.
        if let Some(remaining) = stripped {
            // `remaining` only applies when the link may span more than one
            // edge; `strip_one` already encodes that (exact-1 links return
            // `Some(None)` only).
            let path = Path::from_links(
                std::iter::once(remaining).chain(rest.iter().copied()),
                certainty,
            );
            if !out.as_slice().contains(&path) {
                out.push(path);
            }
        }
        out
    }
}

/// The (at most two) results of [`Path::strip_first`], stored inline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stripped {
    out: [Path; 2],
    len: u8,
}

impl Stripped {
    fn empty() -> Stripped {
        Stripped {
            out: [Path::same(Certainty::Definite); 2],
            len: 0,
        }
    }

    fn push(&mut self, p: Path) {
        self.out[self.len as usize] = p;
        self.len += 1;
    }

    pub fn as_slice(&self) -> &[Path] {
        &self.out[..self.len as usize]
    }
}

impl std::ops::Deref for Stripped {
    type Target = [Path];
    fn deref(&self) -> &[Path] {
        self.as_slice()
    }
}

impl<'a> IntoIterator for &'a Stripped {
    type Item = &'a Path;
    type IntoIter = std::slice::Iter<'a, Path>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Equality/ordering/hashing consider only the meaningful prefix of the
/// inline array, and order exactly as the previous `enum { Same, Links(Vec) }`
/// representation did: `S` before link paths, link sequences
/// lexicographically, then certainty — [`crate::PathSet`] keeps its members
/// sorted with this order, and the rendered form (and through it the analysis
/// digest) depends on it.
impl PartialEq for Path {
    fn eq(&self, other: &Self) -> bool {
        self.links() == other.links() && self.certainty == other.certainty
    }
}

impl Eq for Path {}

impl Ord for Path {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.is_same(), other.is_same()) {
            (true, false) => Ordering::Less,
            (false, true) => Ordering::Greater,
            _ => self
                .links()
                .cmp(other.links())
                .then(self.certainty.cmp(&other.certainty)),
        }
    }
}

impl PartialOrd for Path {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Hash for Path {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.is_same().hash(state);
        self.links().hash(state);
        self.certainty.hash(state);
    }
}

/// Partition-based coverage check for link sequences.
fn covers_links(cover: &[Link], covered: &[Link]) -> bool {
    if cover.is_empty() {
        return covered.is_empty();
    }
    if covered.is_empty() {
        return false;
    }
    // Assign a non-empty prefix of `covered` to `cover[0]` and recurse.
    let head = cover[0];
    let mut dirs_ok = true;
    let mut total_min = 0u32;
    let mut total_max = Some(0u32);
    for k in 1..=covered.len() {
        let link = covered[k - 1];
        dirs_ok &= head.dir.covers(link.dir);
        if !dirs_ok {
            return false;
        }
        total_min += link.min;
        total_max = match (total_max, link.max_edges()) {
            (Some(a), Some(b)) => Some(a + b),
            _ => None,
        };
        // length interval of the group must fit inside head's interval
        let len_ok = total_min >= head.min
            && match (head.max_edges(), total_max) {
                (None, _) => true,
                (Some(_), None) => false,
                (Some(hm), Some(tm)) => tm <= hm,
            };
        if len_ok && covers_links(&cover[1..], &covered[k..]) {
            return true;
        }
        // If the group is already longer than an exact head allows, adding
        // more links cannot help.
        if let Some(hm) = head.max_edges() {
            if total_min > hm {
                return false;
            }
        }
    }
    false
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_same() {
            write!(f, "S")?;
        } else {
            for l in self.links() {
                write!(f, "{l}")?;
            }
        }
        if self.certainty == Certainty::Possible {
            write!(f, "?")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{at_least, exact, same};

    #[test]
    fn display_matches_paper() {
        // Figure 2(a): the path L^1 L+ L^1 between a and b (normalized here
        // to L3+ — "3 or more left links", the same set of concrete paths).
        let p = Path::from_links(
            vec![
                Link::exact(Dir::Left, 1),
                Link::at_least(Dir::Left, 1),
                Link::exact(Dir::Left, 1),
            ],
            Certainty::Definite,
        );
        assert_eq!(p.to_string(), "L3+");
        // Figure 2(a): R^1 D^+ between a and c.
        let p = Path::from_links(
            vec![Link::exact(Dir::Right, 1), Link::at_least(Dir::Down, 1)],
            Certainty::Definite,
        );
        assert_eq!(p.to_string(), "R1D+");
        assert_eq!(same().to_string(), "S");
        assert_eq!(same().weakened().to_string(), "S?");
        assert_eq!(at_least(Dir::Down, 1).weakened().to_string(), "D+?");
    }

    #[test]
    fn normalization_fuses_adjacent_links() {
        let p = Path::from_links(
            vec![Link::exact(Dir::Left, 2), Link::exact(Dir::Left, 3)],
            Certainty::Definite,
        );
        assert_eq!(p.links(), &[Link::exact(Dir::Left, 5)]);
    }

    #[test]
    fn over_long_paths_are_widened() {
        let links: Vec<Link> = vec![
            Link::exact(Dir::Left, 1),
            Link::exact(Dir::Right, 1),
            Link::exact(Dir::Left, 1),
            Link::exact(Dir::Right, 1),
            Link::exact(Dir::Left, 1),
            Link::exact(Dir::Right, 1),
        ];
        let p = Path::from_links(links, Certainty::Definite);
        assert_eq!(p.links().len(), 1);
        assert_eq!(p.links()[0], Link::exact(Dir::Down, 6));
    }

    #[test]
    fn ordering_matches_old_representation() {
        // S < links; links lexicographic (shorter prefix first); then
        // certainty Definite < Possible.
        let mut paths = [
            exact(Dir::Left, 1).weakened(),
            at_least(Dir::Down, 1),
            same().weakened(),
            exact(Dir::Left, 1).concat(&exact(Dir::Right, 2)),
            exact(Dir::Left, 1),
            same(),
        ];
        paths.sort();
        let rendered: Vec<String> = paths.iter().map(|p| p.to_string()).collect();
        assert_eq!(rendered, vec!["S", "S?", "L1", "L1?", "L1R2", "D+"]);
    }

    #[test]
    fn min_and_max_len() {
        assert_eq!(same().min_len(), 0);
        assert_eq!(same().max_len(), Some(0));
        let p = Path::from_links(
            vec![Link::exact(Dir::Right, 1), Link::at_least(Dir::Down, 1)],
            Certainty::Definite,
        );
        assert_eq!(p.min_len(), 2);
        assert_eq!(p.max_len(), None);
        assert_eq!(exact(Dir::Left, 3).max_len(), Some(3));
    }

    #[test]
    fn append_and_concat() {
        let p = same().append_link(Link::exact(Dir::Left, 1));
        assert_eq!(p, exact(Dir::Left, 1));
        let p = exact(Dir::Left, 1).append_link(Link::exact(Dir::Left, 1));
        assert_eq!(p, exact(Dir::Left, 2));
        let q = exact(Dir::Right, 1).concat(&at_least(Dir::Down, 1));
        assert_eq!(q.to_string(), "R1D+");
        assert_eq!(same().concat(&q), q);
        assert_eq!(q.concat(&same()), q);
        // possible · definite = possible
        let weak = exact(Dir::Left, 1).weakened().concat(&exact(Dir::Left, 1));
        assert_eq!(weak.certainty, Certainty::Possible);
    }

    #[test]
    fn coverage_examples() {
        assert!(at_least(Dir::Down, 1).covers(&exact(Dir::Left, 2)));
        assert!(at_least(Dir::Down, 1).covers(&at_least(Dir::Right, 1)));
        assert!(!exact(Dir::Left, 1).covers(&exact(Dir::Left, 2)));
        assert!(same().covers(&same()));
        assert!(!same().covers(&exact(Dir::Left, 1)));
        assert!(!exact(Dir::Left, 1).covers(&same()));
        // multi-link: D+ covers R1 D+ ; R1 D+ does not cover D+
        let r1dp = exact(Dir::Right, 1).concat(&at_least(Dir::Down, 1));
        assert!(at_least(Dir::Down, 1).covers(&r1dp));
        assert!(!r1dp.covers(&at_least(Dir::Down, 1)));
        // R1 D+ covers R1 L3
        let r1l3 = exact(Dir::Right, 1).concat(&exact(Dir::Left, 3));
        assert!(r1dp.covers(&r1l3));
        // L+ does not cover R1 L3
        assert!(!at_least(Dir::Left, 1).covers(&r1l3));
    }

    #[test]
    fn coverage_ignores_certainty() {
        assert!(at_least(Dir::Down, 1)
            .weakened()
            .covers(&exact(Dir::Left, 1)));
    }

    #[test]
    fn generalize_is_upper_bound() {
        let cases = vec![
            (exact(Dir::Left, 1), exact(Dir::Left, 2)),
            (exact(Dir::Left, 1), exact(Dir::Right, 1)),
            (at_least(Dir::Left, 1), exact(Dir::Right, 3)),
            (
                exact(Dir::Right, 1).concat(&at_least(Dir::Down, 1)),
                exact(Dir::Right, 1).concat(&exact(Dir::Left, 1)),
            ),
            (
                exact(Dir::Right, 1).concat(&at_least(Dir::Down, 1)),
                exact(Dir::Left, 2),
            ),
        ];
        for (a, b) in cases {
            let g = a.generalize(&b).expect("link paths generalize");
            assert!(g.covers(&a), "{g} should cover {a}");
            assert!(g.covers(&b), "{g} should cover {b}");
        }
        assert_eq!(
            same().generalize(&same()),
            Some(Path::same(Certainty::Definite))
        );
        assert_eq!(same().generalize(&exact(Dir::Left, 1)), None);
    }

    #[test]
    fn strip_first_exact_one() {
        // Figure 2(b)→(c): p[a,c] = R1 D+ ; d := a.right ⇒ p[d,c] = D+
        // (the first edge is definitely the right edge, so the remainder is
        // definite).
        let r1dp = exact(Dir::Right, 1).concat(&at_least(Dir::Down, 1));
        let stripped = r1dp.strip_first(Dir::Right);
        assert_eq!(stripped.as_slice(), &[at_least(Dir::Down, 1)]);

        // Stripping the *left* edge of R1 D+ is impossible.
        assert!(r1dp.strip_first(Dir::Left).is_empty());
    }

    #[test]
    fn strip_first_of_d_plus() {
        // Figure 2(c): p[d,c] = D+ ; e := d.left ⇒ p[e,c] = { S?, D+? }
        let dplus = at_least(Dir::Down, 1);
        let stripped = dplus.strip_first(Dir::Left);
        assert_eq!(stripped.len(), 2);
        assert!(stripped.contains(&Path::same(Certainty::Possible)));
        assert!(stripped.contains(&at_least(Dir::Down, 1).weakened()));
    }

    #[test]
    fn strip_first_exact_longer() {
        // L^3 from the left child is definitely L^2.
        let l3 = exact(Dir::Left, 3);
        assert_eq!(l3.strip_first(Dir::Left).as_slice(), &[exact(Dir::Left, 2)]);
        // ... and empty from the right child.
        assert!(l3.strip_first(Dir::Right).is_empty());
    }

    #[test]
    fn strip_first_of_l_plus() {
        // L+ from the left child: S? or L+?
        let lp = at_least(Dir::Left, 1);
        let stripped = lp.strip_first(Dir::Left);
        assert!(stripped.contains(&Path::same(Certainty::Possible)));
        assert!(stripped.contains(&at_least(Dir::Left, 1).weakened()));
        // L+ from the right child: nothing.
        assert!(lp.strip_first(Dir::Right).is_empty());
    }

    #[test]
    fn strip_first_of_same_is_empty() {
        assert!(same().strip_first(Dir::Left).is_empty());
    }

    #[test]
    fn strip_results_cover_reality() {
        // Soundness spot-check: for every concrete path of length n with a
        // known first edge, stripping must produce a shape covering the
        // suffix.  Model concrete paths as sequences of Dir::Left/Right.
        let abstractions = vec![
            at_least(Dir::Down, 1),
            exact(Dir::Down, 3),
            at_least(Dir::Left, 2),
            exact(Dir::Right, 1).concat(&at_least(Dir::Down, 1)),
        ];
        let concrete: Vec<Vec<Dir>> = vec![
            vec![Dir::Left],
            vec![Dir::Left, Dir::Right],
            vec![Dir::Left, Dir::Left, Dir::Left],
            vec![Dir::Right, Dir::Left, Dir::Right],
        ];
        for abs in &abstractions {
            for conc in &concrete {
                // Does `abs` describe `conc`?
                let conc_path = Path::from_links(
                    conc.iter().map(|d| Link::exact(*d, 1)).collect::<Vec<_>>(),
                    Certainty::Definite,
                );
                if !abs.covers(&conc_path) {
                    continue;
                }
                // Strip the first edge of `conc` and check some result of
                // strip_first covers the suffix.
                let first = conc[0];
                let suffix = &conc[1..];
                let stripped = abs.strip_first(first);
                if suffix.is_empty() {
                    assert!(
                        stripped.iter().any(|p| p.is_same()),
                        "{abs} stripped by {first:?} should allow S"
                    );
                } else {
                    let suffix_path = Path::from_links(
                        suffix
                            .iter()
                            .map(|d| Link::exact(*d, 1))
                            .collect::<Vec<_>>(),
                        Certainty::Definite,
                    );
                    assert!(
                        stripped.iter().any(|p| p.covers(&suffix_path)),
                        "{abs} stripped by {first:?} should cover {suffix_path}"
                    );
                }
            }
        }
    }

    #[test]
    fn start_predicates() {
        let r1dp = exact(Dir::Right, 1).concat(&at_least(Dir::Down, 1));
        assert!(r1dp.starts_definitely_with(Dir::Right));
        assert!(!r1dp.starts_definitely_with(Dir::Left));
        assert!(r1dp.may_start_with(Dir::Right));
        assert!(!r1dp.may_start_with(Dir::Left));
        let dp = at_least(Dir::Down, 1);
        assert!(!dp.starts_definitely_with(Dir::Left));
        assert!(dp.may_start_with(Dir::Left));
        assert!(dp.may_start_with(Dir::Right));
        assert!(!same().may_start_with(Dir::Left));
    }
}
