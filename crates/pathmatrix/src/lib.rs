//! # sil-pathmatrix
//!
//! Path expressions and path matrices from Section 4 of Hendren & Nicolau,
//! *Parallelizing Programs with Recursive Data Structures* (1989).
//!
//! The analysis estimates, for every ordered pair of live handles `(a, b)`,
//! the set of directed paths by which the node named `b` can be reached from
//! the node named `a`.  A path is either `S` — the two handles name the same
//! node — or a non-empty sequence of *links*:
//!
//! | link  | meaning                      |
//! |-------|------------------------------|
//! | `L^i` | exactly `i` left edges       |
//! | `L+`  | one or more left edges       |
//! | `R^i` | exactly `i` right edges      |
//! | `R+`  | one or more right edges      |
//! | `D^i` | exactly `i` down edges (left or right) |
//! | `D+`  | one or more down edges       |
//!
//! Every path is *definite* (guaranteed to exist) or *possible* (may exist,
//! rendered with a trailing `?`).  The set of paths for a pair is a
//! *covering* over-approximation: any actual path in the heap between the two
//! nodes is described by some member of the set; an empty set therefore
//! proves the two handles are unrelated — the key fact the parallelizer
//! exploits.
//!
//! The module layout mirrors the formalism:
//!
//! * [`mod@intern`] — the global handle-name interner mapping names to dense
//!   [`Symbol`] ids,
//! * [`link`] — directions and length-abstracted links,
//! * [`path`] — paths, certainty, concatenation, first-link stripping,
//!   coverage (subsumption) and generalisation (widening); a path is an
//!   inline, fixed-capacity array of links (`Copy`, no heap),
//! * [`pathset`] — canonical bounded sets of paths, also inline and `Copy`,
//! * [`matrix`] — the path matrix indexed by interned handles, with the
//!   control-flow `merge`, equality for fixpoint detection, and the tabular
//!   rendering used to reproduce the paper's figures.

pub mod intern;
pub mod link;
pub mod matrix;
pub mod path;
pub mod pathset;

pub use intern::{intern, lookup, matrix_bytes_high_water, symbol_count, Symbol};
pub use link::{Dir, Link};
pub use matrix::PathMatrix;
pub use path::{Certainty, Path};
pub use pathset::PathSet;

/// Convenience constructor: the definite path `S` (same node).
pub fn same() -> Path {
    Path::same(Certainty::Definite)
}

/// Convenience constructor: a definite single-link path of exactly `n` edges
/// in direction `dir`.
pub fn exact(dir: Dir, n: u32) -> Path {
    Path::from_link(Link::exact(dir, n), Certainty::Definite)
}

/// Convenience constructor: a definite single-link path of `n`-or-more edges
/// in direction `dir`.
pub fn at_least(dir: Dir, n: u32) -> Path {
    Path::from_link(Link::at_least(dir, n), Certainty::Definite)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convenience_constructors() {
        assert_eq!(same().to_string(), "S");
        assert_eq!(exact(Dir::Left, 1).to_string(), "L1");
        assert_eq!(at_least(Dir::Down, 1).to_string(), "D+");
        assert_eq!(at_least(Dir::Right, 3).to_string(), "R3+");
    }
}
