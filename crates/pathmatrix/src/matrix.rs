//! The path matrix: one [`PathSet`] per ordered pair of handles.
//!
//! "The relationships among a set of handles are described by a path matrix.
//! Each entry in the matrix describes the relationship between two handles."
//! (Section 4.)  Besides entry access this module provides the operations the
//! analysis needs: adding/removing/renaming handles, aliasing one handle to
//! another, the control-flow `join`, equality testing for fixpoint
//! detection, and the tabular rendering used to reproduce Figures 2, 3 and 7.

use crate::path::Path;
use crate::pathset::PathSet;
use crate::Certainty;
use std::collections::HashMap;
use std::fmt;

/// A path matrix over a set of named handles.
///
/// The diagonal of every known handle is `{S}` (definite).  Entries that are
/// absent are empty: the two handles are unrelated.
#[derive(Debug, Clone, Default)]
pub struct PathMatrix {
    /// Handle names in insertion order (the order used for display).
    handles: Vec<String>,
    /// Non-empty off-diagonal entries.
    entries: HashMap<(String, String), PathSet>,
}

impl PathMatrix {
    /// An empty matrix with no handles.
    pub fn new() -> PathMatrix {
        PathMatrix::default()
    }

    /// A matrix over the given handles, all mutually unrelated.
    pub fn with_handles<I, S>(handles: I) -> PathMatrix
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut m = PathMatrix::new();
        for h in handles {
            m.add_handle(h.into());
        }
        m
    }

    /// The handles known to the matrix, in insertion order.
    pub fn handles(&self) -> &[String] {
        &self.handles
    }

    /// Whether `name` is a handle of this matrix.
    pub fn contains(&self, name: &str) -> bool {
        self.handles.iter().any(|h| h == name)
    }

    /// Add a handle unrelated to every existing handle.  No-op if present.
    pub fn add_handle(&mut self, name: impl Into<String>) {
        let name = name.into();
        if !self.contains(&name) {
            self.handles.push(name);
        }
    }

    /// Remove a handle and every relationship involving it.
    pub fn remove_handle(&mut self, name: &str) {
        self.handles.retain(|h| h != name);
        self.entries.retain(|(a, b), _| a != name && b != name);
    }

    /// Keep only the given handles (used to restrict a matrix to the live
    /// handles at a program point).
    pub fn restrict_to<'a>(&mut self, keep: impl IntoIterator<Item = &'a str>) {
        let keep: Vec<&str> = keep.into_iter().collect();
        let to_remove: Vec<String> = self
            .handles
            .iter()
            .filter(|h| !keep.contains(&h.as_str()))
            .cloned()
            .collect();
        for h in to_remove {
            self.remove_handle(&h);
        }
    }

    /// Rename a handle, preserving all its relationships.
    pub fn rename_handle(&mut self, old: &str, new: impl Into<String>) {
        let new = new.into();
        if old == new {
            return;
        }
        for h in &mut self.handles {
            if h == old {
                *h = new.clone();
            }
        }
        let old_entries: Vec<((String, String), PathSet)> = self
            .entries
            .drain()
            .map(|((a, b), v)| {
                let a = if a == old { new.clone() } else { a };
                let b = if b == old { new.clone() } else { b };
                ((a, b), v)
            })
            .collect();
        for (k, v) in old_entries {
            // If both old and new existed, merge their relations.
            self.entries
                .entry(k)
                .and_modify(|existing| *existing = existing.union(&v))
                .or_insert(v);
        }
    }

    /// The relationship from `a` to `b`.  The diagonal of a known handle is
    /// `{S}`; unknown handles and absent entries are empty.
    pub fn get(&self, a: &str, b: &str) -> PathSet {
        if a == b {
            if self.contains(a) {
                return PathSet::singleton(Path::same(Certainty::Definite));
            }
            return PathSet::empty();
        }
        self.entries
            .get(&(a.to_string(), b.to_string()))
            .cloned()
            .unwrap_or_default()
    }

    /// Set the relationship from `a` to `b` (both handles are added if
    /// missing).  Setting the diagonal is ignored — it is always `{S}`.
    pub fn set(&mut self, a: &str, b: &str, set: PathSet) {
        self.add_handle(a.to_string());
        self.add_handle(b.to_string());
        if a == b {
            return;
        }
        if set.is_empty() {
            self.entries.remove(&(a.to_string(), b.to_string()));
        } else {
            self.entries.insert((a.to_string(), b.to_string()), set);
        }
    }

    /// Add `path` to the relationship from `a` to `b`.
    pub fn add_path(&mut self, a: &str, b: &str, path: Path) {
        let mut set = self.get(a, b);
        if a == b {
            return;
        }
        set.insert(path);
        self.set(a, b, set);
    }

    /// Remove every relationship (in both directions) involving `name`, but
    /// keep the handle (its diagonal stays `{S}`).  This is the effect of
    /// `name := nil` / `name := new()` on the matrix.
    pub fn clear_handle(&mut self, name: &str) {
        self.add_handle(name.to_string());
        self.entries.retain(|(a, b), _| a != name && b != name);
    }

    /// Make `dst` an alias of `src` (the effect of `dst := src`): `dst`
    /// takes on exactly `src`'s relationships plus `S` between the two.
    pub fn alias_handle(&mut self, dst: &str, src: &str) {
        if dst == src {
            return;
        }
        self.clear_handle(dst);
        self.add_handle(src.to_string());
        for other in self.handles.clone() {
            if other == dst || other == src {
                continue;
            }
            let from_src = self.get(src, &other);
            if !from_src.is_empty() {
                self.set(dst, &other, from_src);
            }
            let to_src = self.get(&other, src);
            if !to_src.is_empty() {
                self.set(&other, dst, to_src);
            }
        }
        self.set(
            dst,
            src,
            PathSet::singleton(Path::same(Certainty::Definite)),
        );
        self.set(
            src,
            dst,
            PathSet::singleton(Path::same(Certainty::Definite)),
        );
    }

    /// Whether `a` and `b` are *unrelated*: no path in either direction and
    /// they cannot be the same node.  Unrelated handles head disjoint
    /// subtrees in a TREE, so computations on them cannot interfere (§3.1).
    pub fn unrelated(&self, a: &str, b: &str) -> bool {
        if a == b {
            return false;
        }
        self.get(a, b).is_empty() && self.get(b, a).is_empty()
    }

    /// Iterate over all non-empty off-diagonal entries.
    pub fn related_pairs(&self) -> impl Iterator<Item = (&str, &str, &PathSet)> {
        self.entries
            .iter()
            .map(|((a, b), v)| (a.as_str(), b.as_str(), v))
    }

    /// Number of non-empty off-diagonal entries.
    pub fn relation_count(&self) -> usize {
        self.entries.len()
    }

    /// The control-flow join of two matrices (e.g. at the end of an `if`).
    /// Shapes from both sides survive; definiteness survives only when both
    /// sides guarantee a covered path.  Handles present on only one side keep
    /// their relations weakened to *possible*.
    pub fn join(&self, other: &PathMatrix) -> PathMatrix {
        let mut result = PathMatrix::new();
        for h in self.handles.iter().chain(other.handles.iter()) {
            result.add_handle(h.clone());
        }
        let names = result.handles.clone();
        for a in &names {
            for b in &names {
                if a == b {
                    continue;
                }
                let in_self = self.contains(a) && self.contains(b);
                let in_other = other.contains(a) && other.contains(b);
                let entry = match (in_self, in_other) {
                    (true, true) => self.get(a, b).join(&other.get(a, b)),
                    (true, false) => self.get(a, b).weakened(),
                    (false, true) => other.get(a, b).weakened(),
                    (false, false) => PathSet::empty(),
                };
                if !entry.is_empty() {
                    result.set(a, b, entry);
                }
            }
        }
        result
    }

    /// Weaken every relationship to *possible* (used by conservative
    /// procedure-call effects).
    pub fn weakened(&self) -> PathMatrix {
        let mut result = self.clone();
        for ((_, _), set) in result.entries.iter_mut() {
            *set = set.weakened();
        }
        result
    }

    /// Whether two matrices describe exactly the same relations over the
    /// same handles (used as the fixpoint termination test).
    pub fn same_relations(&self, other: &PathMatrix) -> bool {
        let mut mine: Vec<&String> = self.handles.iter().collect();
        let mut theirs: Vec<&String> = other.handles.iter().collect();
        mine.sort();
        theirs.sort();
        if mine != theirs {
            return false;
        }
        if self.entries.len() != other.entries.len() {
            return false;
        }
        self.entries
            .iter()
            .all(|(k, v)| other.entries.get(k) == Some(v))
    }

    /// Render the matrix as the kind of table printed in the paper's figures.
    pub fn render(&self) -> String {
        let names = &self.handles;
        if names.is_empty() {
            return String::from("(empty path matrix)\n");
        }
        let mut cells: Vec<Vec<String>> = Vec::with_capacity(names.len() + 1);
        let mut header = vec![String::new()];
        header.extend(names.iter().cloned());
        cells.push(header);
        for a in names {
            let mut row = vec![a.clone()];
            for b in names {
                let entry = self.get(a, b);
                row.push(if entry.is_empty() {
                    String::new()
                } else {
                    entry.to_string()
                });
            }
            cells.push(row);
        }
        let cols = names.len() + 1;
        let mut widths = vec![0usize; cols];
        for row in &cells {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        for row in &cells {
            let mut line = String::new();
            for (i, cell) in row.iter().enumerate() {
                line.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
            }
            out.push_str(line.trim_end());
            out.push('\n');
        }
        out
    }
}

impl PartialEq for PathMatrix {
    fn eq(&self, other: &Self) -> bool {
        self.same_relations(other)
    }
}

impl Eq for PathMatrix {}

impl fmt::Display for PathMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::Dir;
    use crate::{at_least, exact, same};

    #[test]
    fn diagonal_is_same() {
        let m = PathMatrix::with_handles(["a", "b"]);
        assert!(m.get("a", "a").must_be_same());
        assert!(m.get("b", "b").must_be_same());
        assert!(m.get("a", "b").is_empty());
        assert!(m.unrelated("a", "b"));
        assert!(!m.unrelated("a", "a"));
    }

    #[test]
    fn unknown_handles_are_unrelated_and_empty() {
        let m = PathMatrix::new();
        assert!(m.get("x", "x").is_empty());
        assert!(m.get("x", "y").is_empty());
    }

    #[test]
    fn set_and_get_roundtrip() {
        let mut m = PathMatrix::new();
        m.set("root", "lside", PathSet::singleton(exact(Dir::Left, 1)));
        assert_eq!(m.get("root", "lside").to_string(), "L1");
        assert!(m.contains("root") && m.contains("lside"));
        assert!(m.get("lside", "root").is_empty());
        assert!(!m.unrelated("root", "lside"));
    }

    #[test]
    fn setting_empty_removes_entry() {
        let mut m = PathMatrix::new();
        m.set("a", "b", PathSet::singleton(exact(Dir::Left, 1)));
        assert_eq!(m.relation_count(), 1);
        m.set("a", "b", PathSet::empty());
        assert_eq!(m.relation_count(), 0);
    }

    #[test]
    fn clear_handle_severs_relations() {
        let mut m = PathMatrix::new();
        m.set("a", "b", PathSet::singleton(exact(Dir::Left, 1)));
        m.set("c", "a", PathSet::singleton(at_least(Dir::Down, 1)));
        m.clear_handle("a");
        assert!(m.get("a", "b").is_empty());
        assert!(m.get("c", "a").is_empty());
        assert!(m.get("a", "a").must_be_same());
        assert!(m.contains("a"));
    }

    #[test]
    fn alias_handle_copies_relations() {
        // Figure 2(a)-ish: a above c; let d := a, then d has a's relations.
        let mut m = PathMatrix::new();
        m.set("a", "c", PathSet::singleton(at_least(Dir::Down, 1)));
        m.set("b", "a", PathSet::singleton(exact(Dir::Left, 1)));
        m.alias_handle("d", "a");
        assert_eq!(m.get("d", "c").to_string(), "D+");
        assert_eq!(m.get("b", "d").to_string(), "L1");
        assert!(m.get("d", "a").must_be_same());
        assert!(m.get("a", "d").must_be_same());
    }

    #[test]
    fn alias_handle_overwrites_previous_relations() {
        let mut m = PathMatrix::new();
        m.set("d", "x", PathSet::singleton(exact(Dir::Left, 5)));
        m.set("a", "c", PathSet::singleton(at_least(Dir::Down, 1)));
        m.alias_handle("d", "a");
        assert!(m.get("d", "x").is_empty(), "old relation must be severed");
        assert_eq!(m.get("d", "c").to_string(), "D+");
    }

    #[test]
    fn self_alias_is_noop() {
        let mut m = PathMatrix::new();
        m.set("a", "b", PathSet::singleton(exact(Dir::Left, 1)));
        m.alias_handle("a", "a");
        assert_eq!(m.get("a", "b").to_string(), "L1");
    }

    #[test]
    fn rename_handle_preserves_relations() {
        let mut m = PathMatrix::new();
        m.set("h", "l", PathSet::singleton(exact(Dir::Left, 1)));
        m.rename_handle("h", "h*");
        assert!(m.contains("h*"));
        assert!(!m.contains("h"));
        assert_eq!(m.get("h*", "l").to_string(), "L1");
    }

    #[test]
    fn remove_handle() {
        let mut m = PathMatrix::new();
        m.set("a", "b", PathSet::singleton(exact(Dir::Left, 1)));
        m.remove_handle("b");
        assert!(!m.contains("b"));
        assert_eq!(m.relation_count(), 0);
    }

    #[test]
    fn restrict_to_live_handles() {
        let mut m = PathMatrix::new();
        m.set("a", "b", PathSet::singleton(exact(Dir::Left, 1)));
        m.set("a", "c", PathSet::singleton(exact(Dir::Right, 1)));
        m.restrict_to(["a", "b"]);
        assert!(m.contains("a") && m.contains("b") && !m.contains("c"));
        assert_eq!(m.relation_count(), 1);
    }

    #[test]
    fn join_of_identical_matrices_is_identity() {
        let mut m = PathMatrix::new();
        m.set("a", "b", PathSet::singleton(exact(Dir::Left, 1)));
        assert!(m.join(&m).same_relations(&m));
    }

    #[test]
    fn join_demotes_one_sided_relations() {
        let mut m1 = PathMatrix::with_handles(["a", "b"]);
        m1.set("a", "b", PathSet::singleton(exact(Dir::Left, 1)));
        let m2 = PathMatrix::with_handles(["a", "b"]);
        let j = m1.join(&m2);
        let entry = j.get("a", "b");
        assert_eq!(entry.len(), 1);
        assert!(!entry.has_definite());
    }

    #[test]
    fn join_handles_union() {
        let mut m1 = PathMatrix::with_handles(["a"]);
        m1.set("a", "b", PathSet::singleton(exact(Dir::Left, 1)));
        let m2 = PathMatrix::with_handles(["a", "c"]);
        let j = m1.join(&m2);
        assert!(j.contains("a") && j.contains("b") && j.contains("c"));
        // b only existed on one side: relation kept but weakened
        assert!(!j.get("a", "b").has_definite());
    }

    #[test]
    fn same_relations_ignores_handle_order() {
        let mut m1 = PathMatrix::with_handles(["a", "b"]);
        m1.set("a", "b", PathSet::singleton(exact(Dir::Left, 1)));
        let mut m2 = PathMatrix::with_handles(["b", "a"]);
        m2.set("a", "b", PathSet::singleton(exact(Dir::Left, 1)));
        assert!(m1.same_relations(&m2));
        m2.set("b", "a", PathSet::singleton(same()));
        assert!(!m1.same_relations(&m2));
    }

    #[test]
    fn render_contains_header_and_entries() {
        // The pA matrix of Figure 7.
        let mut m = PathMatrix::with_handles(["root", "lside", "rside"]);
        m.set("root", "lside", PathSet::singleton(exact(Dir::Left, 1)));
        m.set("root", "rside", PathSet::singleton(exact(Dir::Right, 1)));
        let rendered = m.render();
        assert!(rendered.contains("root"), "{rendered}");
        assert!(rendered.contains("L1"), "{rendered}");
        assert!(rendered.contains("R1"), "{rendered}");
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn weakened_matrix() {
        let mut m = PathMatrix::new();
        m.set("a", "b", PathSet::singleton(exact(Dir::Left, 1)));
        let w = m.weakened();
        assert!(!w.get("a", "b").has_definite());
        assert!(m.get("a", "b").has_definite(), "original untouched");
    }
}
