//! The path matrix: one [`PathSet`] per ordered pair of handles.
//!
//! "The relationships among a set of handles are described by a path matrix.
//! Each entry in the matrix describes the relationship between two handles."
//! (Section 4.)  Besides entry access this module provides the operations the
//! analysis needs: adding/removing/renaming handles, aliasing one handle to
//! another, the control-flow `join`, equality testing for fixpoint
//! detection, and the tabular rendering used to reproduce Figures 2, 3 and 7.
//!
//! Handles are interned [`Symbol`]s and every entry is addressed by a pair of
//! small dense indices: `handles` keeps insertion order (which the rendering,
//! and through it the analysis digest, depends on), `pos` is a sorted
//! symbol→index map answering `contains`/`index_of` in `O(log n)`, and
//! `entries` is a sorted flat vector of `(row << 32 | col, PathSet)` cells.
//! All three are flat vectors of `Copy` elements, so cloning a matrix is
//! three memcpys and no per-entry allocation — the operation the analysis
//! hot loop performs most.

use crate::intern::{self, Symbol};
use crate::path::Path;
use crate::pathset::PathSet;
use crate::Certainty;
use std::fmt;

/// A path matrix over a set of named handles.
///
/// The diagonal of every known handle is `{S}` (definite).  Entries that are
/// absent are empty: the two handles are unrelated.
#[derive(Debug, Clone, Default)]
pub struct PathMatrix {
    /// Handle symbols in insertion order (the order used for display).
    handles: Vec<Symbol>,
    /// Sorted `(symbol, index into handles)` map.
    pos: Vec<(Symbol, u32)>,
    /// Non-empty off-diagonal entries, sorted by `(row << 32) | col` where
    /// row/col index into `handles`.
    entries: Vec<(u64, PathSet)>,
}

fn key(row: u32, col: u32) -> u64 {
    ((row as u64) << 32) | col as u64
}

impl PathMatrix {
    /// An empty matrix with no handles.
    pub fn new() -> PathMatrix {
        PathMatrix::default()
    }

    /// A matrix over the given handles, all mutually unrelated.
    pub fn with_handles<I, S>(handles: I) -> PathMatrix
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut m = PathMatrix::new();
        for h in handles {
            m.add_handle(h.as_ref());
        }
        m
    }

    /// The handles known to the matrix, in insertion order.
    pub fn handles(&self) -> &[Symbol] {
        &self.handles
    }

    /// The handle names in insertion order (resolved from the interner).
    pub fn handle_names(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.handles.iter().map(|s| s.as_str())
    }

    /// The index of `sym` in insertion order, if it is a handle.
    fn index_of(&self, sym: Symbol) -> Option<u32> {
        self.pos
            .binary_search_by_key(&sym, |&(s, _)| s)
            .ok()
            .map(|i| self.pos[i].1)
    }

    /// The index of a handle by name, without growing the interner.
    fn index_of_name(&self, name: &str) -> Option<u32> {
        intern::lookup(name).and_then(|sym| self.index_of(sym))
    }

    /// Whether `name` is a handle of this matrix.
    pub fn contains(&self, name: &str) -> bool {
        self.index_of_name(name).is_some()
    }

    /// Whether `sym` is a handle of this matrix.
    pub fn contains_sym(&self, sym: Symbol) -> bool {
        self.index_of(sym).is_some()
    }

    /// Add a handle unrelated to every existing handle.  No-op if present.
    pub fn add_handle(&mut self, name: impl AsRef<str>) {
        self.add_handle_sym(intern::intern(name.as_ref()));
    }

    /// [`PathMatrix::add_handle`] by symbol.
    pub fn add_handle_sym(&mut self, sym: Symbol) {
        if let Err(slot) = self.pos.binary_search_by_key(&sym, |&(s, _)| s) {
            self.pos.insert(slot, (sym, self.handles.len() as u32));
            self.handles.push(sym);
        }
    }

    /// Remap entry keys through `map` (old index → `Some(new index)` to keep,
    /// `None` to drop).  When `map` is monotonic over the kept indices the
    /// entries stay sorted; pass `monotonic = false` to re-sort.
    fn remap_entries(&mut self, map: impl Fn(u32) -> Option<u32>, monotonic: bool) {
        let mut kept = 0usize;
        for i in 0..self.entries.len() {
            let (k, set) = self.entries[i];
            let (row, col) = ((k >> 32) as u32, k as u32);
            if let (Some(r), Some(c)) = (map(row), map(col)) {
                self.entries[kept] = (key(r, c), set);
                kept += 1;
            }
        }
        self.entries.truncate(kept);
        if !monotonic {
            self.entries.sort_unstable_by_key(|&(k, _)| k);
        }
    }

    /// Rebuild `pos` from `handles` after indices shifted.
    fn rebuild_pos(&mut self) {
        self.pos.clear();
        self.pos
            .extend(self.handles.iter().enumerate().map(|(i, &s)| (s, i as u32)));
        self.pos.sort_unstable_by_key(|&(s, _)| s);
    }

    /// Remove a handle and every relationship involving it.
    pub fn remove_handle(&mut self, name: &str) {
        let Some(idx) = self.index_of_name(name) else {
            return;
        };
        self.handles.remove(idx as usize);
        self.rebuild_pos();
        self.remap_entries(
            |i| match i.cmp(&idx) {
                std::cmp::Ordering::Less => Some(i),
                std::cmp::Ordering::Equal => None,
                std::cmp::Ordering::Greater => Some(i - 1),
            },
            true,
        );
    }

    /// Keep only the given handles (used to restrict a matrix to the live
    /// handles at a program point).  Single pass — no quadratic rescans.
    pub fn restrict_to<'a>(&mut self, keep: impl IntoIterator<Item = &'a str>) {
        let mut keep_syms: Vec<Symbol> = keep
            .into_iter()
            .filter_map(intern::lookup)
            .filter(|&s| self.contains_sym(s))
            .collect();
        keep_syms.sort_unstable();
        // old index → new index (monotonic: surviving handles keep their
        // relative insertion order).
        let mut new_index: Vec<Option<u32>> = Vec::with_capacity(self.handles.len());
        let mut next = 0u32;
        for &sym in &self.handles {
            if keep_syms.binary_search(&sym).is_ok() {
                new_index.push(Some(next));
                next += 1;
            } else {
                new_index.push(None);
            }
        }
        self.handles
            .retain(|&s| keep_syms.binary_search(&s).is_ok());
        self.rebuild_pos();
        self.remap_entries(|i| new_index[i as usize], true);
    }

    /// Rename a handle, preserving all its relationships.  If the new name
    /// already names a handle, the two handles' relations are merged.
    pub fn rename_handle(&mut self, old: &str, new: impl AsRef<str>) {
        let new = new.as_ref();
        if old == new {
            return;
        }
        let Some(old_idx) = self.index_of_name(old) else {
            return;
        };
        let new_sym = intern::intern(new);
        match self.index_of(new_sym) {
            None => {
                // Plain rename: same index, new symbol; entries untouched.
                self.handles[old_idx as usize] = new_sym;
                self.rebuild_pos();
            }
            Some(new_idx) => {
                // Merge `old` into the existing `new` handle: redirect
                // entries, union on collision, drop the old slot.
                let mut merged: Vec<(u64, PathSet)> = Vec::with_capacity(self.entries.len());
                for &(k, set) in &self.entries {
                    let (mut row, mut col) = ((k >> 32) as u32, k as u32);
                    if row == old_idx {
                        row = new_idx;
                    }
                    if col == old_idx {
                        col = new_idx;
                    }
                    if row == col {
                        continue; // would-be diagonal: always `{S}` implicitly
                    }
                    merged.push((key(row, col), set));
                }
                merged.sort_unstable_by_key(|&(k, _)| k);
                merged.dedup_by(|b, a| {
                    if a.0 == b.0 {
                        a.1 = a.1.union(&b.1);
                        true
                    } else {
                        false
                    }
                });
                self.entries = merged;
                self.handles.remove(old_idx as usize);
                self.rebuild_pos();
                self.remap_entries(
                    |i| {
                        if i > old_idx {
                            Some(i - 1)
                        } else {
                            Some(i)
                        }
                    },
                    true,
                );
            }
        }
    }

    fn entry_at(&self, row: u32, col: u32) -> Option<&PathSet> {
        self.entries
            .binary_search_by_key(&key(row, col), |&(k, _)| k)
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// The relationship from `a` to `b`.  The diagonal of a known handle is
    /// `{S}`; unknown handles and absent entries are empty.
    pub fn get(&self, a: &str, b: &str) -> PathSet {
        match (self.index_of_name(a), self.index_of_name(b)) {
            (Some(i), Some(j)) => self.get_at(i, j),
            _ => PathSet::empty(),
        }
    }

    /// [`PathMatrix::get`] by symbol.
    pub fn get_sym(&self, a: Symbol, b: Symbol) -> PathSet {
        match (self.index_of(a), self.index_of(b)) {
            (Some(i), Some(j)) => self.get_at(i, j),
            _ => PathSet::empty(),
        }
    }

    fn get_at(&self, row: u32, col: u32) -> PathSet {
        if row == col {
            return PathSet::singleton(Path::same(Certainty::Definite));
        }
        self.entry_at(row, col).copied().unwrap_or_default()
    }

    /// Set the relationship from `a` to `b` (both handles are added if
    /// missing).  Setting the diagonal is ignored — it is always `{S}`.
    pub fn set(&mut self, a: &str, b: &str, set: PathSet) {
        self.set_sym(intern::intern(a), intern::intern(b), set);
    }

    /// [`PathMatrix::set`] by symbol.
    pub fn set_sym(&mut self, a: Symbol, b: Symbol, set: PathSet) {
        self.add_handle_sym(a);
        self.add_handle_sym(b);
        if a == b {
            return;
        }
        let row = self.index_of(a).expect("just added");
        let col = self.index_of(b).expect("just added");
        let k = key(row, col);
        match self.entries.binary_search_by_key(&k, |&(e, _)| e) {
            Ok(i) => {
                if set.is_empty() {
                    self.entries.remove(i);
                } else {
                    self.entries[i].1 = set;
                }
            }
            Err(slot) => {
                if !set.is_empty() {
                    self.entries.insert(slot, (k, set));
                }
            }
        }
    }

    /// Add `path` to the relationship from `a` to `b`.
    pub fn add_path(&mut self, a: &str, b: &str, path: Path) {
        let sa = intern::intern(a);
        let sb = intern::intern(b);
        self.add_handle_sym(sa);
        self.add_handle_sym(sb);
        if sa == sb {
            return;
        }
        let mut set = self.get_sym(sa, sb);
        set.insert(path);
        self.set_sym(sa, sb, set);
    }

    /// Remove every relationship (in both directions) involving `name`, but
    /// keep the handle (its diagonal stays `{S}`).  This is the effect of
    /// `name := nil` / `name := new()` on the matrix.
    pub fn clear_handle(&mut self, name: &str) {
        self.clear_handle_sym(intern::intern(name));
    }

    /// [`PathMatrix::clear_handle`] by symbol.
    pub fn clear_handle_sym(&mut self, sym: Symbol) {
        self.add_handle_sym(sym);
        let idx = self.index_of(sym).expect("just added");
        self.entries
            .retain(|&(k, _)| (k >> 32) as u32 != idx && k as u32 != idx);
    }

    /// Make `dst` an alias of `src` (the effect of `dst := src`): `dst`
    /// takes on exactly `src`'s relationships plus `S` between the two.
    pub fn alias_handle(&mut self, dst: &str, src: &str) {
        self.alias_handle_sym(intern::intern(dst), intern::intern(src));
    }

    /// [`PathMatrix::alias_handle`] by symbol.
    pub fn alias_handle_sym(&mut self, dst: Symbol, src: Symbol) {
        if dst == src {
            return;
        }
        self.clear_handle_sym(dst);
        self.add_handle_sym(src);
        let dst_idx = self.index_of(dst).expect("just added");
        let src_idx = self.index_of(src).expect("just added");
        // Copy src's relations to dst (dst currently has none).
        let copies: Vec<(u64, PathSet)> = self
            .entries
            .iter()
            .filter_map(|&(k, set)| {
                let (row, col) = ((k >> 32) as u32, k as u32);
                if row == src_idx && col != dst_idx {
                    Some((key(dst_idx, col), set))
                } else if col == src_idx && row != dst_idx {
                    Some((key(row, dst_idx), set))
                } else {
                    None
                }
            })
            .collect();
        for (k, set) in copies {
            let slot = self
                .entries
                .binary_search_by_key(&k, |&(e, _)| e)
                .expect_err("dst relations were cleared");
            self.entries.insert(slot, (k, set));
        }
        let s = PathSet::singleton(Path::same(Certainty::Definite));
        self.set_sym(dst, src, s);
        self.set_sym(src, dst, s);
    }

    /// Whether `a` and `b` are *unrelated*: no path in either direction and
    /// they cannot be the same node.  Unrelated handles head disjoint
    /// subtrees in a TREE, so computations on them cannot interfere (§3.1).
    pub fn unrelated(&self, a: &str, b: &str) -> bool {
        match (self.index_of_name(a), self.index_of_name(b)) {
            (Some(i), Some(j)) => {
                i != j && self.entry_at(i, j).is_none() && self.entry_at(j, i).is_none()
            }
            // Unknown handles have no relations, but a handle is never
            // unrelated to itself.
            _ => a != b,
        }
    }

    /// [`PathMatrix::unrelated`] by symbol.
    pub fn unrelated_sym(&self, a: Symbol, b: Symbol) -> bool {
        match (self.index_of(a), self.index_of(b)) {
            (Some(i), Some(j)) => {
                i != j && self.entry_at(i, j).is_none() && self.entry_at(j, i).is_none()
            }
            _ => a != b,
        }
    }

    /// Iterate over all non-empty off-diagonal entries, in row-major index
    /// order.
    pub fn related_pairs(&self) -> impl Iterator<Item = (&'static str, &'static str, &PathSet)> {
        self.entries.iter().map(|(k, set)| {
            (
                self.handles[(k >> 32) as usize].as_str(),
                self.handles[*k as u32 as usize].as_str(),
                set,
            )
        })
    }

    /// Number of non-empty off-diagonal entries.
    pub fn relation_count(&self) -> usize {
        self.entries.len()
    }

    /// Heap footprint of this matrix in bytes (flat vector capacities).
    pub fn heap_bytes(&self) -> usize {
        self.handles.capacity() * std::mem::size_of::<Symbol>()
            + self.pos.capacity() * std::mem::size_of::<(Symbol, u32)>()
            + self.entries.capacity() * std::mem::size_of::<(u64, PathSet)>()
    }

    /// Record this matrix's footprint in the process-wide
    /// `analysis.matrix_bytes` high-water gauge.
    pub fn note_footprint(&self) {
        intern::note_matrix_bytes(std::mem::size_of::<PathMatrix>() + self.heap_bytes());
    }

    /// The control-flow join of two matrices (e.g. at the end of an `if`).
    /// Shapes from both sides survive; definiteness survives only when both
    /// sides guarantee a covered path.  Handles present on only one side keep
    /// their relations weakened to *possible*.
    pub fn join(&self, other: &PathMatrix) -> PathMatrix {
        let mut result = PathMatrix {
            handles: self.handles.clone(),
            pos: self.pos.clone(),
            entries: Vec::with_capacity(self.entries.len() + other.entries.len()),
        };
        for &sym in &other.handles {
            result.add_handle_sym(sym);
        }
        // `result` starts with self's handles in order, so self's entry keys
        // are already result keys; other's need translation (and a sort,
        // since the translation permutes indices).
        let theirs: Vec<(u64, PathSet)> = {
            let mut v: Vec<(u64, PathSet)> = other
                .entries
                .iter()
                .map(|&(k, set)| {
                    let row = other.handles[(k >> 32) as usize];
                    let col = other.handles[k as u32 as usize];
                    (
                        key(
                            result.index_of(row).expect("handle added"),
                            result.index_of(col).expect("handle added"),
                        ),
                        set,
                    )
                })
                .collect();
            v.sort_unstable_by_key(|&(k, _)| k);
            v
        };
        // Sorted two-pointer merge.  A pair present on both sides joins; a
        // pair present on one side is weakened to *possible* — which is what
        // `PathSet::join` against an empty entry yields, whether the other
        // side lacks the entry or the handles themselves.
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.entries.len() || j < theirs.len() {
            let take_mine =
                j >= theirs.len() || (i < self.entries.len() && self.entries[i].0 <= theirs[j].0);
            let take_theirs =
                i >= self.entries.len() || (j < theirs.len() && theirs[j].0 <= self.entries[i].0);
            let joined = match (take_mine, take_theirs) {
                (true, true) => {
                    let e = (self.entries[i].0, self.entries[i].1.join(&theirs[j].1));
                    i += 1;
                    j += 1;
                    e
                }
                (true, false) => {
                    let e = (self.entries[i].0, self.entries[i].1.weakened());
                    i += 1;
                    e
                }
                (false, true) => {
                    let e = (theirs[j].0, theirs[j].1.weakened());
                    j += 1;
                    e
                }
                (false, false) => unreachable!(),
            };
            if !joined.1.is_empty() {
                result.entries.push(joined);
            }
        }
        result.note_footprint();
        result
    }

    /// Weaken every relationship to *possible* (used by conservative
    /// procedure-call effects).
    pub fn weakened(&self) -> PathMatrix {
        let mut result = self.clone();
        for (_, set) in result.entries.iter_mut() {
            *set = set.weakened();
        }
        result
    }

    /// Whether two matrices describe exactly the same relations over the
    /// same handles (used as the fixpoint termination test).
    pub fn same_relations(&self, other: &PathMatrix) -> bool {
        if self.handles.len() != other.handles.len() || self.entries.len() != other.entries.len() {
            return false;
        }
        // `pos` is sorted by symbol, so equal handle *sets* means equal pos
        // symbol sequences.
        if self
            .pos
            .iter()
            .map(|&(s, _)| s)
            .ne(other.pos.iter().map(|&(s, _)| s))
        {
            return false;
        }
        if self.handles == other.handles {
            // Same insertion order: keys line up directly.
            return self.entries == other.entries;
        }
        // Same handle set, different order: translate other's keys.
        let mut theirs: Vec<(u64, PathSet)> = other
            .entries
            .iter()
            .map(|&(k, set)| {
                let row = other.handles[(k >> 32) as usize];
                let col = other.handles[k as u32 as usize];
                (
                    key(
                        self.index_of(row).expect("same handle set"),
                        self.index_of(col).expect("same handle set"),
                    ),
                    set,
                )
            })
            .collect();
        theirs.sort_unstable_by_key(|&(k, _)| k);
        self.entries == theirs
    }

    /// Render the matrix as the kind of table printed in the paper's figures.
    pub fn render(&self) -> String {
        if self.handles.is_empty() {
            return String::from("(empty path matrix)\n");
        }
        let names: Vec<&str> = self.handle_names().collect();
        let n = names.len();
        let mut cells: Vec<Vec<String>> = Vec::with_capacity(n + 1);
        let mut header = vec![String::new()];
        header.extend(names.iter().map(|s| s.to_string()));
        cells.push(header);
        for (i, a) in names.iter().enumerate() {
            let mut row = vec![a.to_string()];
            for j in 0..n {
                let entry = self.get_at(i as u32, j as u32);
                row.push(if entry.is_empty() {
                    String::new()
                } else {
                    entry.to_string()
                });
            }
            cells.push(row);
        }
        let cols = n + 1;
        let mut widths = vec![0usize; cols];
        for row in &cells {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        for row in &cells {
            let mut line = String::new();
            for (i, cell) in row.iter().enumerate() {
                line.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
            }
            out.push_str(line.trim_end());
            out.push('\n');
        }
        out
    }
}

impl PartialEq for PathMatrix {
    fn eq(&self, other: &Self) -> bool {
        self.same_relations(other)
    }
}

impl Eq for PathMatrix {}

impl fmt::Display for PathMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::Dir;
    use crate::{at_least, exact, same};

    #[test]
    fn diagonal_is_same() {
        let m = PathMatrix::with_handles(["a", "b"]);
        assert!(m.get("a", "a").must_be_same());
        assert!(m.get("b", "b").must_be_same());
        assert!(m.get("a", "b").is_empty());
        assert!(m.unrelated("a", "b"));
        assert!(!m.unrelated("a", "a"));
    }

    #[test]
    fn unknown_handles_are_unrelated_and_empty() {
        let m = PathMatrix::new();
        assert!(m.get("x", "x").is_empty());
        assert!(m.get("x", "y").is_empty());
    }

    #[test]
    fn set_and_get_roundtrip() {
        let mut m = PathMatrix::new();
        m.set("root", "lside", PathSet::singleton(exact(Dir::Left, 1)));
        assert_eq!(m.get("root", "lside").to_string(), "L1");
        assert!(m.contains("root") && m.contains("lside"));
        assert!(m.get("lside", "root").is_empty());
        assert!(!m.unrelated("root", "lside"));
    }

    #[test]
    fn setting_empty_removes_entry() {
        let mut m = PathMatrix::new();
        m.set("a", "b", PathSet::singleton(exact(Dir::Left, 1)));
        assert_eq!(m.relation_count(), 1);
        m.set("a", "b", PathSet::empty());
        assert_eq!(m.relation_count(), 0);
    }

    #[test]
    fn clear_handle_severs_relations() {
        let mut m = PathMatrix::new();
        m.set("a", "b", PathSet::singleton(exact(Dir::Left, 1)));
        m.set("c", "a", PathSet::singleton(at_least(Dir::Down, 1)));
        m.clear_handle("a");
        assert!(m.get("a", "b").is_empty());
        assert!(m.get("c", "a").is_empty());
        assert!(m.get("a", "a").must_be_same());
        assert!(m.contains("a"));
    }

    #[test]
    fn alias_handle_copies_relations() {
        // Figure 2(a)-ish: a above c; let d := a, then d has a's relations.
        let mut m = PathMatrix::new();
        m.set("a", "c", PathSet::singleton(at_least(Dir::Down, 1)));
        m.set("b", "a", PathSet::singleton(exact(Dir::Left, 1)));
        m.alias_handle("d", "a");
        assert_eq!(m.get("d", "c").to_string(), "D+");
        assert_eq!(m.get("b", "d").to_string(), "L1");
        assert!(m.get("d", "a").must_be_same());
        assert!(m.get("a", "d").must_be_same());
    }

    #[test]
    fn alias_handle_overwrites_previous_relations() {
        let mut m = PathMatrix::new();
        m.set("d", "x", PathSet::singleton(exact(Dir::Left, 5)));
        m.set("a", "c", PathSet::singleton(at_least(Dir::Down, 1)));
        m.alias_handle("d", "a");
        assert!(m.get("d", "x").is_empty(), "old relation must be severed");
        assert_eq!(m.get("d", "c").to_string(), "D+");
    }

    #[test]
    fn self_alias_is_noop() {
        let mut m = PathMatrix::new();
        m.set("a", "b", PathSet::singleton(exact(Dir::Left, 1)));
        m.alias_handle("a", "a");
        assert_eq!(m.get("a", "b").to_string(), "L1");
    }

    #[test]
    fn rename_handle_preserves_relations() {
        let mut m = PathMatrix::new();
        m.set("h", "l", PathSet::singleton(exact(Dir::Left, 1)));
        m.rename_handle("h", "h*");
        assert!(m.contains("h*"));
        assert!(!m.contains("h"));
        assert_eq!(m.get("h*", "l").to_string(), "L1");
    }

    #[test]
    fn rename_handle_merges_into_existing() {
        let mut m = PathMatrix::new();
        m.set("a", "x", PathSet::singleton(exact(Dir::Left, 1)));
        m.set("b", "x", PathSet::singleton(exact(Dir::Right, 1)));
        m.rename_handle("a", "b");
        assert!(!m.contains("a"));
        // relations of both unioned under the surviving handle
        assert_eq!(m.get("b", "x").to_string(), "L1,R1");
    }

    #[test]
    fn remove_handle() {
        let mut m = PathMatrix::new();
        m.set("a", "b", PathSet::singleton(exact(Dir::Left, 1)));
        m.remove_handle("b");
        assert!(!m.contains("b"));
        assert_eq!(m.relation_count(), 0);
    }

    #[test]
    fn restrict_to_live_handles() {
        let mut m = PathMatrix::new();
        m.set("a", "b", PathSet::singleton(exact(Dir::Left, 1)));
        m.set("a", "c", PathSet::singleton(exact(Dir::Right, 1)));
        m.restrict_to(["a", "b"]);
        assert!(m.contains("a") && m.contains("b") && !m.contains("c"));
        assert_eq!(m.relation_count(), 1);
    }

    #[test]
    fn restrict_to_is_linear_over_wide_matrices() {
        // Regression for the old O(n²) restrict/contains: a wide matrix
        // restricted to most of its handles must keep exactly the surviving
        // relations, with insertion order preserved.
        let n = 512usize;
        let names: Vec<String> = (0..n).map(|i| format!("w{i}")).collect();
        let mut m = PathMatrix::with_handles(names.iter());
        for i in 0..n - 1 {
            m.set(
                &names[i],
                &names[i + 1],
                PathSet::singleton(exact(Dir::Left, 1)),
            );
        }
        let keep: Vec<&str> = names[..n - 1].iter().map(|s| s.as_str()).collect();
        m.restrict_to(keep.iter().copied());
        assert_eq!(m.handles().len(), n - 1);
        assert_eq!(m.relation_count(), n - 2);
        let order: Vec<&str> = m.handle_names().collect();
        assert_eq!(order, keep, "insertion order preserved");
        assert_eq!(m.get("w0", "w1").to_string(), "L1");
        assert!(!m.contains(&names[n - 1]));
    }

    #[test]
    fn contains_on_wide_matrix_via_index() {
        let n = 1024usize;
        let names: Vec<String> = (0..n).map(|i| format!("c{i}")).collect();
        let m = PathMatrix::with_handles(names.iter());
        for name in &names {
            assert!(m.contains(name));
        }
        assert!(!m.contains("c-not-here"));
    }

    #[test]
    fn join_of_identical_matrices_is_identity() {
        let mut m = PathMatrix::new();
        m.set("a", "b", PathSet::singleton(exact(Dir::Left, 1)));
        assert!(m.join(&m).same_relations(&m));
    }

    #[test]
    fn join_demotes_one_sided_relations() {
        let mut m1 = PathMatrix::with_handles(["a", "b"]);
        m1.set("a", "b", PathSet::singleton(exact(Dir::Left, 1)));
        let m2 = PathMatrix::with_handles(["a", "b"]);
        let j = m1.join(&m2);
        let entry = j.get("a", "b");
        assert_eq!(entry.len(), 1);
        assert!(!entry.has_definite());
    }

    #[test]
    fn join_handles_union() {
        let mut m1 = PathMatrix::with_handles(["a"]);
        m1.set("a", "b", PathSet::singleton(exact(Dir::Left, 1)));
        let m2 = PathMatrix::with_handles(["a", "c"]);
        let j = m1.join(&m2);
        assert!(j.contains("a") && j.contains("b") && j.contains("c"));
        // b only existed on one side: relation kept but weakened
        assert!(!j.get("a", "b").has_definite());
    }

    #[test]
    fn join_preserves_insertion_order() {
        let mut m1 = PathMatrix::with_handles(["a", "b"]);
        m1.set("b", "a", PathSet::singleton(exact(Dir::Left, 1)));
        let mut m2 = PathMatrix::with_handles(["c", "a"]);
        m2.set("c", "a", PathSet::singleton(exact(Dir::Right, 1)));
        let j = m1.join(&m2);
        let order: Vec<&str> = j.handle_names().collect();
        assert_eq!(order, vec!["a", "b", "c"], "self first, then other's new");
        assert_eq!(j.get("b", "a").to_string(), "L1?");
        assert_eq!(j.get("c", "a").to_string(), "R1?");
    }

    #[test]
    fn same_relations_ignores_handle_order() {
        let mut m1 = PathMatrix::with_handles(["a", "b"]);
        m1.set("a", "b", PathSet::singleton(exact(Dir::Left, 1)));
        let mut m2 = PathMatrix::with_handles(["b", "a"]);
        m2.set("a", "b", PathSet::singleton(exact(Dir::Left, 1)));
        assert!(m1.same_relations(&m2));
        m2.set("b", "a", PathSet::singleton(same()));
        assert!(!m1.same_relations(&m2));
    }

    #[test]
    fn render_contains_header_and_entries() {
        // The pA matrix of Figure 7.
        let mut m = PathMatrix::with_handles(["root", "lside", "rside"]);
        m.set("root", "lside", PathSet::singleton(exact(Dir::Left, 1)));
        m.set("root", "rside", PathSet::singleton(exact(Dir::Right, 1)));
        let rendered = m.render();
        assert!(rendered.contains("root"), "{rendered}");
        assert!(rendered.contains("L1"), "{rendered}");
        assert!(rendered.contains("R1"), "{rendered}");
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn weakened_matrix() {
        let mut m = PathMatrix::new();
        m.set("a", "b", PathSet::singleton(exact(Dir::Left, 1)));
        let w = m.weakened();
        assert!(!w.get("a", "b").has_definite());
        assert!(m.get("a", "b").has_definite(), "original untouched");
    }

    #[test]
    fn footprint_is_tracked() {
        let mut m = PathMatrix::new();
        m.set("a", "b", PathSet::singleton(exact(Dir::Left, 1)));
        let _ = m.join(&m);
        assert!(crate::intern::matrix_bytes_high_water() > 0);
        assert!(m.heap_bytes() > 0);
    }
}
