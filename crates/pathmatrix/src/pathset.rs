//! Canonical, bounded sets of paths — one path-matrix entry.
//!
//! An entry `r[a,b]` is a set of paths.  The set is kept small and canonical:
//!
//! * duplicate shapes are merged (keeping the stronger certainty),
//! * a *possible* path covered by another path in the set is dropped,
//! * if the set grows beyond [`MAX_PATHS`], link paths are pairwise
//!   generalized until it fits — a widening that keeps the abstract domain
//!   finite.
//!
//! Like [`Path`], the set is stored inline (`[Path; MAX_PATHS + 1]` plus a
//! length byte; one spare slot holds the transient overflow while widening
//! runs), so a `PathSet` is `Copy` and cloning a matrix entry is a memcpy.

use crate::path::{Certainty, Path};
use std::fmt;
use std::hash::{Hash, Hasher};

/// Maximum number of paths retained per matrix entry before widening.
pub const MAX_PATHS: usize = 4;

/// Inline capacity: one spare slot beyond [`MAX_PATHS`] for the push that
/// triggers widening.
const CAP: usize = MAX_PATHS + 1;

/// A canonical set of paths describing the relationship between two handles.
#[derive(Debug, Clone, Copy)]
pub struct PathSet {
    paths: [Path; CAP],
    len: u8,
}

impl Default for PathSet {
    fn default() -> Self {
        PathSet {
            paths: [Path::same(Certainty::Definite); CAP],
            len: 0,
        }
    }
}

impl PathSet {
    /// The empty relationship: the two handles are unrelated.
    pub fn empty() -> PathSet {
        PathSet::default()
    }

    /// A singleton set.
    pub fn singleton(path: Path) -> PathSet {
        let mut s = PathSet::empty();
        s.insert(path);
        s
    }

    /// Build from an iterator of paths.
    pub fn from_paths(paths: impl IntoIterator<Item = Path>) -> PathSet {
        let mut s = PathSet::empty();
        for p in paths {
            s.insert(p);
        }
        s
    }

    /// Whether the set is empty (the handles are unrelated).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of paths in the set.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Iterate over the paths.
    pub fn iter(&self) -> impl Iterator<Item = &Path> {
        self.paths().iter()
    }

    /// The paths as a slice.
    pub fn paths(&self) -> &[Path] {
        &self.paths[..self.len as usize]
    }

    fn paths_mut(&mut self) -> &mut [Path] {
        &mut self.paths[..self.len as usize]
    }

    /// Whether the set contains `S` (definitely or possibly): the two
    /// handles may name the same node.
    pub fn may_be_same(&self) -> bool {
        self.iter().any(Path::is_same)
    }

    /// Whether the set contains a definite `S`: the two handles certainly
    /// name the same node.
    pub fn must_be_same(&self) -> bool {
        self.iter().any(|p| p.is_same() && p.is_definite())
    }

    /// Whether any (definite or possible) path of one or more links exists —
    /// i.e. `b` may be a proper descendant of `a`.
    pub fn may_be_descendant(&self) -> bool {
        self.iter().any(|p| !p.is_same())
    }

    /// Whether the relationship definitely holds via some path
    /// (some member is definite).
    pub fn has_definite(&self) -> bool {
        self.iter().any(Path::is_definite)
    }

    /// Insert a path, keeping the set canonical.
    pub fn insert(&mut self, path: Path) {
        // Exact-shape duplicate: keep the stronger certainty.
        for existing in self.paths_mut() {
            if existing.same_shape(&path) {
                if path.is_definite() {
                    existing.certainty = Certainty::Definite;
                }
                return;
            }
        }
        // A possible path already covered by an existing path adds nothing.
        if !path.is_definite() && self.iter().any(|p| p.covers(&path)) {
            return;
        }
        // Drop existing possible paths that the new path covers.
        self.retain(|p| p.is_definite() || !path.covers(p) || p.same_shape(&path));
        self.paths[self.len as usize] = path;
        self.len += 1;
        self.paths_mut().sort_unstable();
        if self.len as usize > MAX_PATHS {
            self.widen_to_fit();
        }
    }

    /// In-place `Vec::retain` over the inline array.
    fn retain(&mut self, keep: impl Fn(&Path) -> bool) {
        let mut kept = 0usize;
        for i in 0..self.len as usize {
            if keep(&self.paths[i]) {
                self.paths[kept] = self.paths[i];
                kept += 1;
            }
        }
        self.len = kept as u8;
    }

    fn remove(&mut self, idx: usize) {
        for i in idx..self.len as usize - 1 {
            self.paths[i] = self.paths[i + 1];
        }
        self.len -= 1;
    }

    /// Union of two sets.
    pub fn union(&self, other: &PathSet) -> PathSet {
        let mut result = *self;
        for p in other.iter() {
            result.insert(*p);
        }
        result
    }

    /// The control-flow join of two entries (meet of information): every
    /// shape of either side survives, but a path stays definite only if the
    /// *other* side also guarantees a path it covers.  Joining an entry with
    /// itself is the identity.
    pub fn join(&self, other: &PathSet) -> PathSet {
        if self == other {
            return *self;
        }
        let mut result = PathSet::empty();
        for (mine, theirs) in [(self, other), (other, self)] {
            for p in mine.iter() {
                let certainty =
                    if p.is_definite() && theirs.iter().any(|q| q.is_definite() && p.covers(q)) {
                        Certainty::Definite
                    } else {
                        Certainty::Possible
                    };
                result.insert(p.with_certainty(certainty));
            }
        }
        result
    }

    /// Demote every path to *possible*.
    pub fn weakened(&self) -> PathSet {
        PathSet::from_paths(self.iter().map(Path::weakened))
    }

    /// Map every path through `f`, rebuilding a canonical set.
    pub fn map(&self, f: impl Fn(&Path) -> Path) -> PathSet {
        PathSet::from_paths(self.iter().map(f))
    }

    /// Keep only paths satisfying the predicate.
    pub fn filter(&self, f: impl Fn(&Path) -> bool) -> PathSet {
        PathSet::from_paths(self.iter().filter(|p| f(p)).copied())
    }

    /// Concatenate every path of `self` with every path of `other`
    /// (`{p · q | p ∈ self, q ∈ other}`).
    pub fn concat(&self, other: &PathSet) -> PathSet {
        let mut result = PathSet::empty();
        for p in self.iter() {
            for q in other.iter() {
                result.insert(p.concat(q));
            }
        }
        result
    }

    /// Whether every path of `other` is covered by some path of `self`
    /// (shape containment of the described relations).
    pub fn covers(&self, other: &PathSet) -> bool {
        other.iter().all(|q| self.iter().any(|p| p.covers(q)))
    }

    fn widen_to_fit(&mut self) {
        while self.len as usize > MAX_PATHS {
            // Generalize the two "closest" link paths (prefer pairs that
            // generalize at all; `S` cannot be merged with link paths).
            let mut best: Option<(usize, usize, Path)> = None;
            'outer: for i in 0..self.len as usize {
                for j in (i + 1)..self.len as usize {
                    if let Some(g) = self.paths[i].generalize(&self.paths[j]) {
                        best = Some((i, j, g));
                        break 'outer;
                    }
                }
            }
            match best {
                Some((i, j, g)) => {
                    // Remove j first (j > i) to keep indices valid.
                    self.remove(j);
                    self.remove(i);
                    // Re-insert through the canonical path.
                    let mut rebuilt = PathSet::from_paths(self.iter().copied());
                    rebuilt.insert(g);
                    *self = rebuilt;
                }
                None => break, // only `S` variants remain; nothing to widen
            }
        }
    }
}

impl PartialEq for PathSet {
    fn eq(&self, other: &Self) -> bool {
        self.paths() == other.paths()
    }
}

impl Eq for PathSet {}

impl Hash for PathSet {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.paths().hash(state);
    }
}

impl fmt::Display for PathSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "·");
        }
        let rendered: Vec<String> = self.iter().map(|p| p.to_string()).collect();
        write!(f, "{}", rendered.join(","))
    }
}

impl FromIterator<Path> for PathSet {
    fn from_iter<T: IntoIterator<Item = Path>>(iter: T) -> Self {
        PathSet::from_paths(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::Dir;
    use crate::{at_least, exact, same};

    #[test]
    fn empty_set_properties() {
        let s = PathSet::empty();
        assert!(s.is_empty());
        assert!(!s.may_be_same());
        assert!(!s.may_be_descendant());
        assert_eq!(s.to_string(), "·");
    }

    #[test]
    fn insert_deduplicates_shapes() {
        let mut s = PathSet::empty();
        s.insert(exact(Dir::Left, 1).weakened());
        s.insert(exact(Dir::Left, 1));
        assert_eq!(s.len(), 1);
        assert!(s.has_definite());
    }

    #[test]
    fn insert_drops_covered_possible_paths() {
        let mut s = PathSet::empty();
        s.insert(at_least(Dir::Down, 1));
        s.insert(exact(Dir::Left, 2).weakened());
        assert_eq!(s.len(), 1, "{s}");
        // but a definite specific path is kept alongside a covering one
        let mut s = PathSet::empty();
        s.insert(at_least(Dir::Down, 1).weakened());
        s.insert(exact(Dir::Left, 2));
        assert_eq!(s.len(), 2, "{s}");
    }

    #[test]
    fn may_and_must_be_same() {
        let s = PathSet::singleton(same());
        assert!(s.may_be_same());
        assert!(s.must_be_same());
        let s = PathSet::singleton(same().weakened());
        assert!(s.may_be_same());
        assert!(!s.must_be_same());
        let s = PathSet::singleton(exact(Dir::Left, 1));
        assert!(!s.may_be_same());
        assert!(s.may_be_descendant());
    }

    #[test]
    fn union_accumulates() {
        let a = PathSet::singleton(exact(Dir::Left, 1));
        let b = PathSet::singleton(exact(Dir::Right, 1));
        let u = a.union(&b);
        assert_eq!(u.len(), 2);
    }

    #[test]
    fn join_with_self_is_identity() {
        let s = PathSet::from_paths(vec![same(), at_least(Dir::Down, 1)]);
        assert_eq!(s.join(&s), s);
    }

    #[test]
    fn join_demotes_unmatched_definites() {
        // Figure 3 flavour: {S} ⊔ {L1} = {S?, L1?}
        let a = PathSet::singleton(same());
        let b = PathSet::singleton(exact(Dir::Left, 1));
        let j = a.join(&b);
        assert_eq!(j.len(), 2);
        assert!(!j.has_definite(), "{j}");
        assert!(j.may_be_same());
    }

    #[test]
    fn join_keeps_covered_definites() {
        // {D+} ⊔ {L2} : D+ stays definite (both branches guarantee a
        // downward path), L2 becomes possible.
        let a = PathSet::singleton(at_least(Dir::Down, 1));
        let b = PathSet::singleton(exact(Dir::Left, 2));
        let j = a.join(&b);
        let dplus = j
            .iter()
            .find(|p| p.to_string().starts_with("D+"))
            .expect("D+ present");
        assert!(dplus.is_definite(), "{j}");
        let l2 = j.iter().find(|p| p.to_string().starts_with("L2"));
        if let Some(l2) = l2 {
            assert!(!l2.is_definite());
        }
    }

    #[test]
    fn join_is_commutative() {
        let a = PathSet::from_paths(vec![same(), exact(Dir::Left, 2).weakened()]);
        let b = PathSet::from_paths(vec![at_least(Dir::Left, 1)]);
        assert_eq!(a.join(&b), b.join(&a));
    }

    #[test]
    fn concat_of_sets() {
        let a = PathSet::from_paths(vec![exact(Dir::Left, 1), exact(Dir::Right, 1)]);
        let b = PathSet::singleton(at_least(Dir::Down, 1));
        let c = a.concat(&b);
        assert_eq!(c.len(), 2);
        assert!(c.iter().any(|p| p.to_string() == "L1D+"));
        assert!(c.iter().any(|p| p.to_string() == "R1D+"));
    }

    #[test]
    fn widening_bounds_cardinality() {
        let mut s = PathSet::empty();
        for i in 1..=10u32 {
            s.insert(exact(Dir::Left, i));
        }
        assert!(s.len() <= MAX_PATHS, "{s}");
        // the widened set must still cover each of the inserted paths
        for i in 1..=10u32 {
            assert!(
                s.iter().any(|p| p.covers(&exact(Dir::Left, i))),
                "{s} lost L{i}"
            );
        }
    }

    #[test]
    fn covers_set_containment() {
        let big = PathSet::from_paths(vec![same().weakened(), at_least(Dir::Down, 1).weakened()]);
        let small = PathSet::singleton(exact(Dir::Left, 3).weakened());
        assert!(big.covers(&small));
        assert!(!small.covers(&big));
        assert!(big.covers(&PathSet::empty()));
    }

    #[test]
    fn display_ordering_is_stable() {
        let s = PathSet::from_paths(vec![at_least(Dir::Down, 1).weakened(), same().weakened()]);
        let t = PathSet::from_paths(vec![same().weakened(), at_least(Dir::Down, 1).weakened()]);
        assert_eq!(s.to_string(), t.to_string());
        assert_eq!(s.to_string(), "S?,D+?");
    }
}
