//! A global, lock-striped string interner for handle names.
//!
//! The analysis spends its time comparing and hashing handle names; interning
//! maps every distinct name to a dense `u32` [`Symbol`] once, after which all
//! comparisons are integer compares and matrices can be indexed instead of
//! keyed by string pairs.  Names are resolved back to `&str` only at the
//! rendering/serialization edges.
//!
//! The table is append-only and process-global: interned strings are leaked
//! (names are program identifiers — a small, bounded set per workload).  The
//! read-mostly fast path takes one shared lock on one of `STRIPES` stripes;
//! the miss path takes the stripe's write lock plus the global name table's
//! write lock, once per distinct name for the lifetime of the process.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{OnceLock, RwLock};

/// A dense id for an interned string.  `Symbol`s are cheap to copy, compare
/// and hash; two symbols are equal iff the strings they intern are equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

impl Symbol {
    /// The interned string.  `'static` because interned names are leaked.
    pub fn as_str(self) -> &'static str {
        interner().resolve(self)
    }

    /// The dense index of this symbol (0-based, in interning order).
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Number of hash-partitioned stripes; a small power of two so the stripe
/// pick is a mask.
const STRIPES: usize = 16;

struct Interner {
    /// `name -> symbol`, partitioned by name hash.
    stripes: [RwLock<HashMap<&'static str, Symbol>>; STRIPES],
    /// `symbol.index() -> name`, append-only.
    names: RwLock<Vec<&'static str>>,
}

fn interner() -> &'static Interner {
    static INTERNER: OnceLock<Interner> = OnceLock::new();
    INTERNER.get_or_init(|| Interner {
        stripes: std::array::from_fn(|_| RwLock::new(HashMap::new())),
        names: RwLock::new(Vec::new()),
    })
}

/// FNV-1a, used only to pick a stripe (stable, dependency-free).
fn stripe_of(s: &str) -> usize {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    (h as usize) & (STRIPES - 1)
}

impl Interner {
    fn intern(&self, s: &str) -> Symbol {
        let stripe = &self.stripes[stripe_of(s)];
        if let Some(&sym) = stripe.read().expect("interner stripe").get(s) {
            return sym;
        }
        let mut map = stripe.write().expect("interner stripe");
        // Re-check: another thread may have interned `s` while we waited.
        if let Some(&sym) = map.get(s) {
            return sym;
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let mut names = self.names.write().expect("interner names");
        let sym = Symbol(u32::try_from(names.len()).expect("interner overflow"));
        names.push(leaked);
        drop(names);
        map.insert(leaked, sym);
        sym
    }

    fn lookup(&self, s: &str) -> Option<Symbol> {
        self.stripes[stripe_of(s)]
            .read()
            .expect("interner stripe")
            .get(s)
            .copied()
    }

    fn resolve(&self, sym: Symbol) -> &'static str {
        self.names.read().expect("interner names")[sym.0 as usize]
    }
}

/// Intern `s`, returning its symbol (inserting it on first sight).
pub fn intern(s: &str) -> Symbol {
    interner().intern(s)
}

/// The symbol of `s` if it has ever been interned.  Read-only probes (matrix
/// lookups for names the matrix cannot contain) use this so arbitrary query
/// strings do not grow the global table.
pub fn lookup(s: &str) -> Option<Symbol> {
    interner().lookup(s)
}

/// Number of distinct interned strings (the `analysis.interned_symbols`
/// gauge).
pub fn symbol_count() -> usize {
    interner().names.read().expect("interner names").len()
}

/// High-water mark of the largest single path-matrix footprint observed, in
/// bytes (the `analysis.matrix_bytes` gauge).  Updated by
/// [`crate::PathMatrix::note_footprint`].
static MATRIX_BYTES_HIGH_WATER: AtomicUsize = AtomicUsize::new(0);

pub(crate) fn note_matrix_bytes(bytes: usize) {
    MATRIX_BYTES_HIGH_WATER.fetch_max(bytes, Ordering::Relaxed);
}

/// The current `analysis.matrix_bytes` high-water value.
pub fn matrix_bytes_high_water() -> usize {
    MATRIX_BYTES_HIGH_WATER.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let a = intern("intern-test-a");
        let b = intern("intern-test-b");
        assert_ne!(a, b);
        assert_eq!(a, intern("intern-test-a"));
        assert_eq!(a.as_str(), "intern-test-a");
        assert_eq!(b.as_str(), "intern-test-b");
    }

    #[test]
    fn lookup_does_not_insert() {
        let before = symbol_count();
        assert!(lookup("intern-test-never-inserted-xyzzy").is_none());
        assert_eq!(symbol_count(), before);
        let sym = intern("intern-test-lookup-hit");
        assert_eq!(lookup("intern-test-lookup-hit"), Some(sym));
    }

    #[test]
    fn concurrent_interning_agrees() {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(|| {
                    (0..64)
                        .map(|i| intern(&format!("intern-race-{i}")))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let results: Vec<Vec<Symbol>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for w in results.windows(2) {
            assert_eq!(w[0], w[1]);
        }
        for (i, sym) in results[0].iter().enumerate() {
            assert_eq!(sym.as_str(), format!("intern-race-{i}"));
        }
    }
}
