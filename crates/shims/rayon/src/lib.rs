//! A small, offline work-alike of the `rayon` API surface this workspace
//! uses: [`join`], [`current_num_threads`], and `slice.par_iter().map(..)
//! .collect()` via [`prelude`].
//!
//! The build environment has no crate registry, so the real rayon cannot be
//! vendored.  This shim provides genuine multi-threaded execution on
//! `std::thread::scope`, with a global token counter bounding the number of
//! concurrently spawned threads (beyond the bound, work degrades gracefully
//! to inline sequential execution — the same observable semantics as rayon's
//! work-stealing, minus the stealing).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Maximum number of *extra* threads alive at any moment.  Twice the core
/// count keeps all cores busy even when tasks briefly block on locks.
fn thread_limit() -> usize {
    static LIMIT: OnceLock<usize> = OnceLock::new();
    *LIMIT.get_or_init(|| 2 * current_num_threads())
}

static ACTIVE: AtomicUsize = AtomicUsize::new(0);

fn try_reserve_thread() -> bool {
    let limit = thread_limit();
    let mut current = ACTIVE.load(Ordering::Relaxed);
    loop {
        if current >= limit {
            return false;
        }
        match ACTIVE.compare_exchange_weak(
            current,
            current + 1,
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => return true,
            Err(observed) => current = observed,
        }
    }
}

/// RAII token: returned by a successful reservation, released on drop so a
/// panicking closure cannot leak its slot and permanently shrink the pool.
struct ThreadToken;

impl Drop for ThreadToken {
    fn drop(&mut self) {
        ACTIVE.fetch_sub(1, Ordering::Relaxed);
    }
}

/// The number of threads the "pool" would use: the host's parallelism.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run two closures, potentially in parallel, and return both results.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if !try_reserve_thread() {
        return (oper_a(), oper_b());
    }
    let _token = ThreadToken;
    let result = std::thread::scope(|scope| {
        let handle_b = scope.spawn(oper_b);
        let ra = oper_a();
        (ra, handle_b.join())
    });
    match result {
        (ra, Ok(rb)) => (ra, rb),
        (_, Err(panic)) => std::panic::resume_unwind(panic),
    }
}

pub mod iter {
    //! `par_iter` over slices with `map` + `collect`.

    /// Entry point: `items.par_iter()` on slices and `Vec`s.
    pub trait IntoParallelRefIterator<'data> {
        type Item: 'data;
        fn par_iter(&'data self) -> ParSlice<'data, Self::Item>;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = T;
        fn par_iter(&'data self) -> ParSlice<'data, T> {
            ParSlice { items: self }
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = T;
        fn par_iter(&'data self) -> ParSlice<'data, T> {
            ParSlice { items: self }
        }
    }

    /// A borrowed slice about to be processed in parallel.
    pub struct ParSlice<'data, T> {
        items: &'data [T],
    }

    impl<'data, T: Sync> ParSlice<'data, T> {
        pub fn map<R, F>(self, op: F) -> ParMap<'data, T, F>
        where
            F: Fn(&'data T) -> R + Sync,
            R: Send,
        {
            ParMap {
                items: self.items,
                op,
            }
        }
    }

    /// The mapped form; `collect` drives the parallel execution.
    pub struct ParMap<'data, T, F> {
        items: &'data [T],
        op: F,
    }

    impl<'data, T, F, R> ParMap<'data, T, F>
    where
        T: Sync,
        F: Fn(&'data T) -> R + Sync,
        R: Send,
    {
        pub fn collect<C: FromIterator<R>>(self) -> C {
            run_split(self.items, &self.op).into_iter().collect()
        }
    }

    /// Recursive binary split, each half through [`crate::join`].
    fn run_split<'data, T, R, F>(items: &'data [T], op: &F) -> Vec<R>
    where
        T: Sync,
        F: Fn(&'data T) -> R + Sync,
        R: Send,
    {
        if items.len() <= 1 {
            return items.iter().map(op).collect();
        }
        let (left, right) = items.split_at(items.len() / 2);
        let (mut lv, rv) = crate::join(|| run_split(left, op), || run_split(right, op));
        lv.extend(rv);
        lv
    }
}

pub mod prelude {
    pub use crate::iter::{IntoParallelRefIterator, ParMap, ParSlice};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn join_returns_both_results() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn nested_joins_bound_thread_count() {
        fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = super::join(|| fib(n - 1), || fib(n - 2));
            a + b
        }
        assert_eq!(fib(18), 2584);
    }

    #[test]
    fn par_iter_map_collect_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let doubled: Vec<u64> = items.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_collects_results() {
        let items = [1i64, -2, 3];
        let checked: Vec<Result<i64, String>> = items
            .par_iter()
            .map(|x| {
                if *x >= 0 {
                    Ok(*x)
                } else {
                    Err("negative".into())
                }
            })
            .collect();
        assert_eq!(checked, vec![Ok(1), Err("negative".to_string()), Ok(3)]);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn join_propagates_panics() {
        super::join(|| (), || panic!("boom"));
    }
}
