//! A small, offline work-alike of the `criterion` API surface this
//! workspace's benches use: `Criterion` with the builder knobs, benchmark
//! groups, `BenchmarkId`, `Bencher::iter` / `iter_with_setup`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Statistics are deliberately simple — warm up once, run up to
//! `sample_size` timed iterations capped by `measurement_time`, report the
//! mean — which is enough for the relative comparisons (cold vs. warm cache,
//! sequential vs. parallel) these benches exist to demonstrate.

use std::fmt::Display;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Smoke mode (`CRITERION_SMOKE=1`): every benchmark runs exactly one timed
/// iteration, whatever the configured sample size — CI uses it to prove the
/// bench code builds and runs without paying for measurements.
fn smoke_mode() -> bool {
    static SMOKE: OnceLock<bool> = OnceLock::new();
    *SMOKE.get_or_init(|| std::env::var("CRITERION_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0"))
}

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size, self.measurement_time, |b| f(b));
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            _criterion: self,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.sample_size, self.measurement_time, |b| f(b));
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        run_one(&full, self.sample_size, self.measurement_time, |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

/// A benchmark identifier: a function name, an input parameter, or both.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

/// Passed to the benchmark closure; `iter` does the timing.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    /// (total time, iterations) recorded by the last `iter` call.
    recorded: Option<(Duration, u64)>,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up
        let started = Instant::now();
        let mut iters = 0u64;
        for _ in 0..self.sample_size {
            black_box(routine());
            iters += 1;
            if started.elapsed() > self.measurement_time {
                break;
            }
        }
        self.recorded = Some((started.elapsed(), iters));
    }

    pub fn iter_with_setup<S, R, SF, F>(&mut self, mut setup: SF, mut routine: F)
    where
        SF: FnMut() -> S,
        F: FnMut(S) -> R,
    {
        black_box(routine(setup())); // warm-up
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.sample_size {
            let input = setup();
            let started = Instant::now();
            black_box(routine(input));
            total += started.elapsed();
            iters += 1;
            if total > self.measurement_time {
                break;
            }
        }
        self.recorded = Some((total, iters));
    }
}

fn run_one(id: &str, sample_size: usize, measurement_time: Duration, f: impl FnOnce(&mut Bencher)) {
    let (sample_size, measurement_time) = if smoke_mode() {
        (1, Duration::from_millis(1))
    } else {
        (sample_size, measurement_time)
    };
    let mut bencher = Bencher {
        sample_size,
        measurement_time,
        recorded: None,
    };
    f(&mut bencher);
    match bencher.recorded {
        Some((total, iters)) if iters > 0 => {
            let mean = total.as_nanos() as f64 / iters as f64;
            println!("bench: {id:<50} {:>14}/iter ({iters} iters)", human(mean));
        }
        _ => println!("bench: {id:<50} (no measurement)"),
    }
}

fn human(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// `criterion_group! { name = g; config = expr; targets = f1, f2 }` or the
/// short `criterion_group!(g, f1, f2)` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// `criterion_main!(group1, group2)` — generates `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(50));
        let mut runs = 0;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        assert!(runs >= 2, "warm-up + at least one sample");
    }

    #[test]
    fn groups_and_inputs_work() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut seen = 0u32;
        group.bench_with_input(BenchmarkId::new("f", 7), &7u32, |b, &input| {
            b.iter(|| seen = input)
        });
        group.bench_with_input(BenchmarkId::from_parameter(9), &9u32, |b, input| {
            b.iter_with_setup(|| *input, |v| seen = v)
        });
        group.finish();
        assert_eq!(seen, 9);
    }
}
