//! A small, offline work-alike of the `parking_lot` lock API this workspace
//! uses: `Mutex::lock`, `RwLock::read` / `RwLock::write`, all returning
//! guards directly (no poisoning `Result`).  Backed by the std locks; a
//! panicked holder's poison is stripped, matching parking_lot's semantics.

use std::fmt;
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(*m.lock(), vec![1, 2, 3]);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5u32);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn locks_are_not_poisoned_by_panics() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("holder dies");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
