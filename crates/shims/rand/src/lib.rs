//! A small, offline work-alike of the `rand` API surface this workspace
//! uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, `Rng::gen_range`
//! over half-open integer ranges, and `Rng::gen_bool`.
//!
//! The generator is SplitMix64 — deterministic for a given seed, which is
//! all the program generator and the property tests require (statistical
//! quality far beyond "not obviously patterned" is irrelevant here).

use std::ops::Range;

/// Types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Copy {
    fn sample_from(rng: &mut dyn RngCore, range: Range<Self>) -> Self;
}

/// The raw 64-bit source every generator provides.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

macro_rules! impl_sample_uniform {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_from(rng: &mut dyn RngCore, range: Range<$ty>) -> $ty {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (range.start as i128 + offset as i128) as $ty
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The sampling / convenience methods, blanket-implemented for every core.
pub trait Rng: RngCore {
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_from(self, range)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 random bits → uniform in [0, 1)
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    fn gen_u64(&mut self) -> u64
    where
        Self: Sized,
    {
        self.next_u64()
    }
}

impl<T: RngCore> Rng for T {}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64: passes through every 64-bit state exactly once and is
    /// trivially seedable — the standard choice for deterministic test RNGs.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&y));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_800..3_200).contains(&hits), "got {hits}");
    }

    #[test]
    fn different_seeds_disagree() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }
}
