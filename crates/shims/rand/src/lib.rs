//! A small, offline work-alike of the `rand` API surface this workspace
//! uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, `Rng::gen_range`
//! over half-open integer ranges, and `Rng::gen_bool`.
//!
//! The generator is SplitMix64 — deterministic for a given seed, which is
//! all the program generator and the property tests require (statistical
//! quality far beyond "not obviously patterned" is irrelevant here).

use std::ops::Range;

/// Types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Copy {
    fn sample_from(rng: &mut dyn RngCore, range: Range<Self>) -> Self;
}

/// The raw 64-bit source every generator provides.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

macro_rules! impl_sample_uniform {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_from(rng: &mut dyn RngCore, range: Range<$ty>) -> $ty {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (range.start as i128 + offset as i128) as $ty
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The sampling / convenience methods, blanket-implemented for every core.
pub trait Rng: RngCore {
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_from(self, range)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 random bits → uniform in [0, 1)
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    fn gen_u64(&mut self) -> u64
    where
        Self: Sized,
    {
        self.next_u64()
    }
}

impl<T: RngCore> Rng for T {}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod distributions {
    //! The distribution surface of `rand_distr` this workspace uses: the
    //! [`Distribution`] trait and a [`Zipf`] law for skewed request
    //! generators (cache eviction-policy experiments model a few hot
    //! programs dominating a long tail, per the NDN caching-policy study in
    //! PAPERS.md).

    use super::Rng;

    /// Types that produce values of `T` from a source of randomness.
    pub trait Distribution<T> {
        fn sample<R: Rng>(&self, rng: &mut R) -> T;
    }

    /// A Zipf distribution over ranks `1..=n`: `P(k) ∝ 1 / k^s`.
    ///
    /// Sampling inverts the precomputed CDF with a binary search —
    /// `O(log n)` per draw, exact for any exponent `s ≥ 0` (`s = 0` is the
    /// uniform distribution, larger `s` concentrates the mass on the lowest
    /// ranks).
    #[derive(Debug, Clone)]
    pub struct Zipf {
        cdf: Vec<f64>,
    }

    impl Zipf {
        /// A Zipf law over `1..=n` with exponent `s`.  `n` must be nonzero
        /// and `s` finite and nonnegative.
        pub fn new(n: u64, s: f64) -> Result<Zipf, &'static str> {
            if n == 0 {
                return Err("Zipf requires at least one rank");
            }
            if !s.is_finite() || s < 0.0 {
                return Err("Zipf exponent must be finite and >= 0");
            }
            let mut cdf = Vec::with_capacity(n as usize);
            let mut total = 0.0f64;
            for k in 1..=n {
                total += (k as f64).powf(-s);
                cdf.push(total);
            }
            for c in &mut cdf {
                *c /= total;
            }
            Ok(Zipf { cdf })
        }

        /// Number of ranks.
        pub fn len(&self) -> usize {
            self.cdf.len()
        }

        pub fn is_empty(&self) -> bool {
            self.cdf.is_empty()
        }
    }

    impl Distribution<u64> for Zipf {
        /// Draw a rank in `1..=n` (rank 1 is the most probable).
        fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
            // 53 random bits → uniform in [0, 1)
            let unit = (rng.gen_u64() >> 11) as f64 / (1u64 << 53) as f64;
            let idx = self.cdf.partition_point(|&c| c < unit);
            (idx.min(self.cdf.len() - 1) + 1) as u64
        }
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64: passes through every 64-bit state exactly once and is
    /// trivially seedable — the standard choice for deterministic test RNGs.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&y));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_800..3_200).contains(&hits), "got {hits}");
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        use super::distributions::{Distribution, Zipf};
        let zipf = Zipf::new(100, 1.1).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 100];
        for _ in 0..50_000 {
            let rank = zipf.sample(&mut rng);
            assert!((1..=100).contains(&rank));
            counts[(rank - 1) as usize] += 1;
        }
        assert!(counts[0] > counts[9], "rank 1 beats rank 10: {counts:?}");
        assert!(counts[9] > counts[99], "rank 10 beats rank 100");
        // Rank 1 carries ~21% of the mass at s=1.1, n=100.
        assert!((8_000..16_000).contains(&counts[0]), "got {}", counts[0]);
    }

    #[test]
    fn zipf_exponent_zero_is_uniform() {
        use super::distributions::{Distribution, Zipf};
        let zipf = Zipf::new(10, 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 10];
        for _ in 0..20_000 {
            counts[(zipf.sample(&mut rng) - 1) as usize] += 1;
        }
        for c in counts {
            assert!((1_500..2_500).contains(&c), "uniform-ish: {counts:?}");
        }
    }

    #[test]
    fn zipf_is_deterministic_and_validates() {
        use super::distributions::{Distribution, Zipf};
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(4, -1.0).is_err());
        assert!(Zipf::new(4, f64::NAN).is_err());
        let zipf = Zipf::new(64, 1.3).unwrap();
        assert_eq!(zipf.len(), 64);
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            assert_eq!(zipf.sample(&mut a), zipf.sample(&mut b));
        }
    }

    #[test]
    fn different_seeds_disagree() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }
}
