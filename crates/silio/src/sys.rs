//! Raw `extern "C"` bindings to the handful of Linux syscalls the crate
//! needs: `epoll_create1`/`epoll_ctl`/`epoll_wait` for readiness polling,
//! `eventfd` for cross-thread wakeups, and `read`/`write`/`close` on the
//! eventfd itself.
//!
//! The build environment has no crate registry, so there is no `libc` to
//! lean on — these declarations link directly against the C library,
//! mirroring how `crates/shims/` replaces rayon and rand.  Everything here
//! is `pub(crate)`: the rest of the crate wraps each call in a safe API
//! that owns its file descriptors and converts failures to [`io::Error`].

use std::ffi::{c_int, c_void};
use std::io;

pub(crate) const EPOLL_CLOEXEC: c_int = 0o2000000;

pub(crate) const EPOLL_CTL_ADD: c_int = 1;
pub(crate) const EPOLL_CTL_DEL: c_int = 2;
pub(crate) const EPOLL_CTL_MOD: c_int = 3;

pub(crate) const EPOLLIN: u32 = 0x001;
pub(crate) const EPOLLOUT: u32 = 0x004;
pub(crate) const EPOLLERR: u32 = 0x008;
pub(crate) const EPOLLHUP: u32 = 0x010;
pub(crate) const EPOLLRDHUP: u32 = 0x2000;

pub(crate) const EFD_NONBLOCK: c_int = 0o4000;
pub(crate) const EFD_CLOEXEC: c_int = 0o2000000;

/// One readiness record, exactly as the kernel fills it in.  On x86-64 the
/// kernel ABI packs this struct to 4-byte alignment (a 12-byte layout); on
/// other architectures it uses natural alignment.  Field reads below copy
/// by value, never by reference, so the packing is safe to consume.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub(crate) struct EpollEvent {
    pub(crate) events: u32,
    pub(crate) data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: u32, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
}

fn cvt(result: c_int) -> io::Result<c_int> {
    if result < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(result)
    }
}

/// A new epoll instance (close-on-exec), as an owned raw descriptor.
pub(crate) fn epoll_create() -> io::Result<c_int> {
    // SAFETY: no pointers cross the boundary; the flag is a valid constant.
    cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })
}

/// Add, modify, or remove `fd`'s registration on `epfd`.  `event` may be
/// `None` only for `EPOLL_CTL_DEL` (the kernel ignores it there).
pub(crate) fn epoll_control(
    epfd: c_int,
    op: c_int,
    fd: c_int,
    event: Option<EpollEvent>,
) -> io::Result<()> {
    let mut event = event;
    let ptr = event
        .as_mut()
        .map_or(std::ptr::null_mut(), |e| e as *mut EpollEvent);
    // SAFETY: `ptr` is null only for DEL, where the kernel does not read
    // it; otherwise it points at a live, properly laid out EpollEvent.
    cvt(unsafe { epoll_ctl(epfd, op, fd, ptr) })?;
    Ok(())
}

/// Wait for readiness on `epfd`, filling `events` and returning how many
/// records the kernel wrote.  `timeout_ms < 0` blocks indefinitely.
/// Interrupted waits (`EINTR`) are retried.
pub(crate) fn epoll_wait_events(
    epfd: c_int,
    events: &mut [EpollEvent],
    timeout_ms: c_int,
) -> io::Result<usize> {
    loop {
        // SAFETY: the pointer and length describe the caller's live slice;
        // the kernel writes at most `len` records into it.
        let n = unsafe { epoll_wait(epfd, events.as_mut_ptr(), events.len() as c_int, timeout_ms) };
        match cvt(n) {
            Ok(n) => return Ok(n as usize),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

/// A new nonblocking, close-on-exec eventfd.
pub(crate) fn eventfd_create() -> io::Result<c_int> {
    // SAFETY: no pointers cross the boundary; the flags are valid.
    cvt(unsafe { eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC) })
}

/// Add 1 to an eventfd's counter (the wakeup signal).
pub(crate) fn eventfd_write(fd: c_int) -> io::Result<()> {
    let one: u64 = 1;
    // SAFETY: the buffer is 8 live bytes, exactly what eventfd expects.
    let n = unsafe { write(fd, (&one as *const u64).cast::<c_void>(), 8) };
    if n == 8 {
        Ok(())
    } else {
        Err(io::Error::last_os_error())
    }
}

/// Drain an eventfd's counter to zero.  Returns `Ok(true)` if a wakeup was
/// pending, `Ok(false)` if the counter was already zero.
pub(crate) fn eventfd_drain(fd: c_int) -> io::Result<bool> {
    let mut value: u64 = 0;
    // SAFETY: the buffer is 8 live bytes, exactly what eventfd expects.
    let n = unsafe { read(fd, (&mut value as *mut u64).cast::<c_void>(), 8) };
    if n == 8 {
        return Ok(true);
    }
    let error = io::Error::last_os_error();
    if error.kind() == io::ErrorKind::WouldBlock {
        Ok(false)
    } else {
        Err(error)
    }
}

/// Close a raw descriptor, ignoring failure (only used from `Drop`).
pub(crate) fn close_fd(fd: c_int) {
    // SAFETY: callers only pass descriptors they own exactly once.
    let _ = unsafe { close(fd) };
}
