//! Cross-thread wakeups for an event loop parked in [`crate::Poll::poll`]:
//! a [`Waker`] wraps one nonblocking eventfd.  Worker threads call
//! [`Waker::wake`] when they finish a job; the event loop registers the
//! waker like any other readable source and calls [`Waker::drain`] when its
//! token fires.
//!
//! eventfd is a counter, not a pipe: any number of `wake` calls before the
//! next poll coalesce into one readiness event and one `drain`, so a burst
//! of completions costs the loop a single wakeup.

use crate::sys;
use std::ffi::c_int;
use std::io;
use std::os::fd::{AsRawFd, RawFd};

/// A cross-thread wakeup handle for a [`crate::Poll`] loop.
///
/// `wake` is safe to call from any thread at any time, including after the
/// event loop has stopped polling — the counter just accumulates.
#[derive(Debug)]
pub struct Waker {
    fd: c_int,
}

impl Waker {
    /// A fresh waker with nothing pending.
    pub fn new() -> io::Result<Waker> {
        Ok(Waker {
            fd: sys::eventfd_create()?,
        })
    }

    /// Signal the poller: its next (or current) poll sees this waker's
    /// token as readable.
    pub fn wake(&self) -> io::Result<()> {
        sys::eventfd_write(self.fd)
    }

    /// Consume all pending wakeups.  Returns whether any were pending.
    /// Must be called when the waker's token fires, or (being
    /// level-triggered) it fires again immediately.
    pub fn drain(&self) -> io::Result<bool> {
        sys::eventfd_drain(self.fd)
    }
}

impl AsRawFd for Waker {
    fn as_raw_fd(&self) -> RawFd {
        self.fd
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        sys::close_fd(self.fd);
    }
}

// SAFETY: the waker is a plain file descriptor; eventfd reads and writes
// are atomic syscalls, so sharing across threads needs no further locking.
unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Events, Interest, Poll, Token};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn wake_is_seen_by_the_poller_and_coalesces() {
        let poll = Poll::new().unwrap();
        let waker = Waker::new().unwrap();
        poll.register(&waker, Token(9), Interest::READABLE).unwrap();

        let mut events = Events::with_capacity(4);
        assert_eq!(
            poll.poll(&mut events, Some(Duration::from_millis(10)))
                .unwrap(),
            0,
            "no wake yet"
        );

        waker.wake().unwrap();
        waker.wake().unwrap();
        waker.wake().unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token() == Token(9)));
        assert!(waker.drain().unwrap(), "three wakes drain as one");
        assert!(!waker.drain().unwrap(), "counter is now zero");
        assert_eq!(
            poll.poll(&mut events, Some(Duration::from_millis(10)))
                .unwrap(),
            0,
            "drained waker goes quiet"
        );
    }

    #[test]
    fn wake_crosses_threads() {
        let poll = Poll::new().unwrap();
        let waker = Arc::new(Waker::new().unwrap());
        poll.register(&*waker, Token(2), Interest::READABLE)
            .unwrap();
        let remote = waker.clone();
        let thread = std::thread::spawn(move || remote.wake().unwrap());
        let mut events = Events::with_capacity(4);
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token() == Token(2)));
        thread.join().unwrap();
    }
}
