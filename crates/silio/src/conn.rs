//! The line-framed connection state machine: [`LineConn`] owns one
//! nonblocking [`Stream`] plus its read and write buffers, and turns raw
//! readiness into whole protocol lines in and backpressured line writes
//! out.
//!
//! * **Reads** accumulate into an internal buffer until `\n`; a readiness
//!   round returns every complete line it uncovered ([`Drained`]), leaving
//!   a trailing partial line buffered for the next round.  A line that
//!   grows past [`MAX_LINE_BYTES`] without a newline is a protocol
//!   violation and fails the connection before it can exhaust memory.
//! * **Writes** queue whole lines and flush as far as the kernel buffer
//!   allows; [`LineConn::wants_write`] tells the event loop whether to add
//!   writable interest (backpressure) or drop it (all drained).  A slow or
//!   stalled reader therefore costs bounded memory and zero threads.

use crate::net::Stream;
use std::io::{self, Read, Write};

/// Upper bound on one framed line (request or response).  Batch requests
/// carry whole program corpora, so the bound is generous — but it exists,
/// so one malicious newline-free connection cannot grow a buffer forever.
pub const MAX_LINE_BYTES: usize = 64 * 1024 * 1024;

/// How much one readiness round reads per syscall.
const READ_CHUNK: usize = 16 * 1024;

/// Upper bound on bytes one [`LineConn::read_ready`] call consumes before
/// yielding — the fairness valve that keeps one flooding connection from
/// starving an event loop, and the bound on how far a connection's
/// pending work can grow in a single round.
pub const READ_BUDGET: usize = 64 * 1024;

/// What one read-readiness round produced.
#[derive(Debug, Default)]
pub struct Drained {
    /// Complete lines, in arrival order, newline stripped (and `\r\n`
    /// tolerated).  Bytes are decoded lossily: the protocol layer above
    /// rejects non-JSON lines with its own error, so invalid UTF-8 becomes
    /// a well-formed "malformed request" exchange instead of a dead
    /// connection.
    pub lines: Vec<String>,
    /// The peer closed its write side; no further lines will arrive.
    pub eof: bool,
}

/// One nonblocking connection with line framing and write backpressure.
#[derive(Debug)]
pub struct LineConn {
    stream: Stream,
    rbuf: Vec<u8>,
    /// Outbound bytes not yet accepted by the kernel, starting at `wpos`.
    wbuf: Vec<u8>,
    wpos: usize,
}

impl LineConn {
    /// Wrap a nonblocking stream with empty buffers.
    pub fn new(stream: Stream) -> LineConn {
        LineConn {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
        }
    }

    /// The underlying stream (the event loop registers and deregisters it).
    pub fn stream(&self) -> &Stream {
        &self.stream
    }

    /// Service read readiness: pull what is currently available off the
    /// socket — up to [`READ_BUDGET`] bytes per call, so one firehosing
    /// connection cannot monopolize an event loop serving many — and
    /// return the complete lines it uncovered.  Level-triggered polling
    /// makes the budget safe: unread bytes re-fire readability, and the
    /// loop comes back after giving other connections a turn.
    ///
    /// Returns an error if the connection failed or a single line
    /// overflowed [`MAX_LINE_BYTES`]; the caller should drop the
    /// connection either way.
    pub fn read_ready(&mut self) -> io::Result<Drained> {
        let mut drained = Drained::default();
        let mut chunk = [0u8; READ_CHUNK];
        let mut consumed = 0usize;
        while consumed < READ_BUDGET {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    drained.eof = true;
                    break;
                }
                Ok(n) => {
                    self.rbuf.extend_from_slice(&chunk[..n]);
                    consumed += n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        // Split every complete line out of the buffer, keeping the tail.
        let mut start = 0;
        while let Some(offset) = self.rbuf[start..].iter().position(|&b| b == b'\n') {
            let end = start + offset;
            let mut line = &self.rbuf[start..end];
            if line.last() == Some(&b'\r') {
                line = &line[..line.len() - 1];
            }
            drained
                .lines
                .push(String::from_utf8_lossy(line).into_owned());
            start = end + 1;
        }
        if start > 0 {
            self.rbuf.drain(..start);
        }
        // Whatever remains is one partial line; bound it.  (Checking after
        // extraction keeps the check O(1) per round — no rescans — while
        // still catching a newline-free flood within one budget of the
        // limit.)
        if self.rbuf.len() > MAX_LINE_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line exceeds {MAX_LINE_BYTES} bytes without a newline"),
            ));
        }
        Ok(drained)
    }

    /// Queue one line (newline appended) for writing and push as much of
    /// the queue as the kernel will take.  Check [`LineConn::wants_write`]
    /// afterwards to decide whether writable interest is needed.
    pub fn enqueue_line(&mut self, line: &str) -> io::Result<()> {
        self.wbuf.extend_from_slice(line.as_bytes());
        self.wbuf.push(b'\n');
        self.write_ready()
    }

    /// Service write readiness: flush queued bytes until the queue empties
    /// or the kernel pushes back.  Returns an error if the connection
    /// failed; the caller should drop it.
    pub fn write_ready(&mut self) -> io::Result<()> {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "connection accepted zero bytes",
                    ))
                }
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.wpos >= self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
        } else if self.wpos > READ_CHUNK {
            // Reclaim flushed prefix bytes so a long-lived backpressured
            // connection does not keep its whole history buffered.
            self.wbuf.drain(..self.wpos);
            self.wpos = 0;
        }
        Ok(())
    }

    /// Whether flushed-but-unaccepted bytes remain (the backpressure
    /// signal: register writable interest exactly while this is true).
    pub fn wants_write(&self) -> bool {
        self.wpos < self.wbuf.len()
    }

    /// Bytes currently queued for write (tests assert backpressure bounds).
    pub fn queued_bytes(&self) -> usize {
        self.wbuf.len() - self.wpos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::os::unix::net::UnixStream;

    fn pair() -> (UnixStream, LineConn) {
        let (client, server) = UnixStream::pair().unwrap();
        (client, LineConn::new(Stream::from_unix(server).unwrap()))
    }

    #[test]
    fn lines_are_framed_across_arbitrary_chunk_boundaries() {
        let (mut client, mut conn) = pair();
        client.write_all(b"first li").unwrap();
        let drained = conn.read_ready().unwrap();
        assert!(drained.lines.is_empty(), "partial line stays buffered");
        assert!(!drained.eof);

        client.write_all(b"ne\r\nsecond\nthird part").unwrap();
        let drained = conn.read_ready().unwrap();
        assert_eq!(drained.lines, vec!["first line", "second"]);

        client.write_all(b"ial\n").unwrap();
        drop(client);
        let drained = conn.read_ready().unwrap();
        assert_eq!(drained.lines, vec!["third partial"]);
        assert!(drained.eof, "peer close is reported with the final lines");
    }

    #[test]
    fn empty_and_invalid_utf8_lines_survive_framing() {
        let (mut client, mut conn) = pair();
        client.write_all(b"\n\xff\xfe garbage \xff\nok\n").unwrap();
        let drained = conn.read_ready().unwrap();
        assert_eq!(drained.lines.len(), 3);
        assert_eq!(drained.lines[0], "");
        assert!(drained.lines[1].contains('\u{FFFD}'), "lossy decode");
        assert_eq!(drained.lines[2], "ok");
    }

    #[test]
    fn write_backpressure_queues_and_drains() {
        let (mut client, mut conn) = pair();
        // Stuff the kernel buffer until the conn reports backpressure.
        let big = "x".repeat(64 * 1024);
        let mut queued = false;
        for _ in 0..64 {
            conn.enqueue_line(&big).unwrap();
            if conn.wants_write() {
                queued = true;
                break;
            }
        }
        assert!(queued, "a never-reading peer must trigger backpressure");
        let backlog = conn.queued_bytes();
        assert!(backlog > 0);

        // Drain the client side; the conn can then flush the rest.
        let mut sink = vec![0u8; 1 << 20];
        let mut total = 0usize;
        client.set_nonblocking(true).unwrap();
        while conn.wants_write() {
            match client.read(&mut sink) {
                Ok(0) => break,
                Ok(n) => total += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    conn.write_ready().unwrap();
                }
                Err(e) => panic!("{e}"),
            }
        }
        conn.write_ready().unwrap();
        assert!(!conn.wants_write());
        assert!(total > 0);
        assert_eq!(conn.queued_bytes(), 0);
    }

    /// One readiness round consumes at most [`READ_BUDGET`] bytes: a
    /// firehosing peer gets its lines over several calls (level-triggered
    /// polling re-fires for the remainder) instead of monopolizing one.
    #[test]
    fn read_rounds_are_budget_bounded_for_fairness() {
        let (mut client, mut conn) = pair();
        let line = "x".repeat(99); // 100 bytes with the newline
        let lines = 2 * READ_BUDGET / 100;
        let mut flood = String::new();
        for _ in 0..lines {
            flood.push_str(&line);
            flood.push('\n');
        }
        let writer = std::thread::spawn(move || {
            client.write_all(flood.as_bytes()).unwrap();
            client
        });
        let mut total = 0usize;
        let mut rounds = 0usize;
        while total < lines {
            let drained = conn.read_ready().unwrap();
            assert!(
                drained.lines.len() <= READ_BUDGET / 100 + READ_CHUNK / 100 + 2,
                "one round must not exceed its budget by more than a chunk: {}",
                drained.lines.len()
            );
            total += drained.lines.len();
            rounds += 1;
        }
        assert_eq!(total, lines);
        assert!(rounds >= 2, "the flood must take several rounds");
        let _client = writer.join().unwrap();
    }

    #[test]
    fn oversized_newline_free_input_is_rejected() {
        let (client_half, server_half) = UnixStream::pair().unwrap();
        let mut conn = LineConn::new(Stream::from_unix(server_half).unwrap());
        let mut client = client_half;
        let writer = std::thread::spawn(move || {
            let chunk = vec![b'a'; 1 << 20];
            // Stream > MAX_LINE_BYTES without ever sending a newline; stop
            // when the server drops the connection.
            for _ in 0..(MAX_LINE_BYTES / chunk.len()) + 2 {
                if client.write_all(&chunk).is_err() {
                    return;
                }
            }
        });
        let error = loop {
            match conn.read_ready() {
                Ok(_) => std::thread::sleep(std::time::Duration::from_millis(1)),
                Err(e) => break e,
            }
        };
        assert_eq!(error.kind(), io::ErrorKind::InvalidData);
        drop(conn); // closes the socket so the writer unblocks
        writer.join().unwrap();
    }
}
