//! Nonblocking socket wrappers: one [`Listener`] and one [`Stream`] type
//! over both Unix-domain and TCP sockets, so the event loop above them is
//! transport-agnostic.
//!
//! The wrappers own already-bound std sockets (binding policy — paths,
//! ports, stale-socket cleanup — stays with the caller) and flip them to
//! nonblocking on construction: `accept`, `read`, and `write` all return
//! `Ok(None)` / `WouldBlock` instead of parking the thread, which is what
//! lets a single [`crate::Poll`] loop multiplex thousands of them.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::{UnixListener, UnixStream};

/// A nonblocking accept source: a bound Unix or TCP listener.
#[derive(Debug)]
pub enum Listener {
    /// A bound Unix-domain listener.
    Unix(UnixListener),
    /// A bound TCP listener.
    Tcp(TcpListener),
}

impl Listener {
    /// Wrap a bound Unix listener, flipping it to nonblocking.
    pub fn from_unix(listener: UnixListener) -> io::Result<Listener> {
        listener.set_nonblocking(true)?;
        Ok(Listener::Unix(listener))
    }

    /// Wrap a bound TCP listener, flipping it to nonblocking.
    pub fn from_tcp(listener: TcpListener) -> io::Result<Listener> {
        listener.set_nonblocking(true)?;
        Ok(Listener::Tcp(listener))
    }

    /// Accept one pending connection as a nonblocking [`Stream`], or
    /// `Ok(None)` when the backlog is empty.  Callers drain the backlog by
    /// looping until `None` — with level-triggered polling a non-empty
    /// backlog re-fires, so a missed loop iteration only costs one poll.
    pub fn accept(&self) -> io::Result<Option<Stream>> {
        let accepted = match self {
            Listener::Unix(listener) => listener.accept().map(|(s, _)| Stream::unix(s)),
            Listener::Tcp(listener) => listener.accept().map(|(s, _)| Stream::tcp(s)),
        };
        match accepted {
            Ok(stream) => Ok(Some(stream?)),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }
}

impl AsRawFd for Listener {
    fn as_raw_fd(&self) -> RawFd {
        match self {
            Listener::Unix(listener) => listener.as_raw_fd(),
            Listener::Tcp(listener) => listener.as_raw_fd(),
        }
    }
}

/// A nonblocking byte stream: one accepted (or dialed) connection.
#[derive(Debug)]
pub enum Stream {
    /// A Unix-domain connection.
    Unix(UnixStream),
    /// A TCP connection.
    Tcp(TcpStream),
}

impl Stream {
    fn unix(stream: UnixStream) -> io::Result<Stream> {
        stream.set_nonblocking(true)?;
        Ok(Stream::Unix(stream))
    }

    fn tcp(stream: TcpStream) -> io::Result<Stream> {
        stream.set_nonblocking(true)?;
        // One response is one small line; favor latency over batching.
        stream.set_nodelay(true)?;
        Ok(Stream::Tcp(stream))
    }

    /// Wrap an existing Unix stream (tests dial with std and hand the
    /// server half over), flipping it to nonblocking.
    pub fn from_unix(stream: UnixStream) -> io::Result<Stream> {
        Stream::unix(stream)
    }

    /// Wrap an existing TCP stream, flipping it to nonblocking and
    /// disabling Nagle.
    pub fn from_tcp(stream: TcpStream) -> io::Result<Stream> {
        Stream::tcp(stream)
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

impl AsRawFd for Stream {
    fn as_raw_fd(&self) -> RawFd {
        match self {
            Stream::Unix(s) => s.as_raw_fd(),
            Stream::Tcp(s) => s.as_raw_fd(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpStream as StdTcpStream;

    #[test]
    fn unix_accept_is_nonblocking() {
        let dir = std::env::temp_dir().join(format!("silio-net-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&dir);
        let listener = Listener::from_unix(UnixListener::bind(&dir).unwrap()).unwrap();
        assert!(listener.accept().unwrap().is_none(), "empty backlog");
        let _client = UnixStream::connect(&dir).unwrap();
        // The backlog entry may take a beat to appear; poll briefly.
        let mut accepted = None;
        for _ in 0..100 {
            accepted = listener.accept().unwrap();
            if accepted.is_some() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(accepted.is_some(), "the pending connection is accepted");
        assert!(listener.accept().unwrap().is_none(), "backlog drained");
        let _ = std::fs::remove_file(&dir);
    }

    #[test]
    fn tcp_reads_would_block_instead_of_parking() {
        let listener = Listener::from_tcp(TcpListener::bind("127.0.0.1:0").unwrap()).unwrap();
        let addr = match &listener {
            Listener::Tcp(l) => l.local_addr().unwrap(),
            _ => unreachable!(),
        };
        let _client = StdTcpStream::connect(addr).unwrap();
        let mut server = loop {
            if let Some(stream) = listener.accept().unwrap() {
                break stream;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        };
        let mut buf = [0u8; 16];
        let err = server.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
    }
}
