//! # silio
//!
//! A self-contained readiness-based I/O subsystem in the mio style:
//! [`Poll`]/[`Token`]/[`Interest`]/[`Events`] over raw Linux epoll,
//! [`Waker`] over eventfd for cross-thread completion wakeups,
//! nonblocking [`Listener`]/[`Stream`] wrappers for Unix and TCP sockets,
//! and a line-framed connection state machine ([`LineConn`]) with buffered
//! reads and write backpressure.
//!
//! The crate exists so an event-driven server can multiplex thousands of
//! mostly-idle connections onto a handful of threads: one thread parks in
//! [`Poll::poll`], workers park on a queue, and nobody owns a stack per
//! connection.  The build environment has no crate registry, so the epoll
//! and eventfd bindings are declared directly (`extern "C"` against the C
//! library) rather than through `libc`/`mio` — the same offline strategy
//! as `crates/shims/`.
//!
//! Everything readiness-specific is Linux-only; [`SUPPORTED`] is the
//! compile-time capability flag callers gate on (the `sild` daemon falls
//! back to its thread-per-connection server elsewhere).
//!
//! ```no_run
//! use silio::{Events, Interest, Listener, Poll, Token};
//! use std::os::unix::net::UnixListener;
//!
//! let listener = Listener::from_unix(UnixListener::bind("/tmp/demo.sock")?)?;
//! let poll = Poll::new()?;
//! poll.register(&listener, Token(0), Interest::READABLE)?;
//! let mut events = Events::with_capacity(64);
//! poll.poll(&mut events, None)?;
//! for event in events.iter() {
//!     assert_eq!(event.token(), Token(0)); // a connection is waiting
//! }
//! # std::io::Result::Ok(())
//! ```

/// Whether this build carries the readiness subsystem (epoll and eventfd
/// are Linux kernel APIs; on other targets the crate is an empty shell and
/// servers should use a threaded fallback).
pub const SUPPORTED: bool = cfg!(target_os = "linux");

#[cfg(target_os = "linux")]
mod sys;

#[cfg(target_os = "linux")]
mod conn;
#[cfg(target_os = "linux")]
mod net;
#[cfg(target_os = "linux")]
mod poll;
#[cfg(target_os = "linux")]
mod waker;

#[cfg(target_os = "linux")]
pub use conn::{Drained, LineConn, MAX_LINE_BYTES, READ_BUDGET};
#[cfg(target_os = "linux")]
pub use net::{Listener, Stream};
#[cfg(target_os = "linux")]
pub use poll::{Event, Events, Interest, Poll, Token};
#[cfg(target_os = "linux")]
pub use waker::Waker;
