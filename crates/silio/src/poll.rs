//! The readiness selector: [`Poll`] wraps one epoll instance and reports
//! which registered descriptors are ready via [`Events`], in the mio
//! style — register a source with a [`Token`] and an [`Interest`], then
//! `poll` to learn which tokens fired.
//!
//! Registrations are level-triggered: a readable source keeps firing until
//! its buffered bytes are consumed, so a server that under-reads one round
//! is re-told on the next — no edge-triggered starvation modes to reason
//! about.

use crate::sys;
use std::ffi::c_int;
use std::io;
use std::os::fd::{AsRawFd, RawFd};
use std::time::Duration;

/// Caller-chosen identifier carried by a registration and returned with
/// every readiness event for it.  Servers typically use a connection id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub usize);

/// Which readiness directions a registration asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// Readable readiness (includes peer hangup, so a closed connection
    /// wakes its reader).
    pub const READABLE: Interest = Interest(0b01);
    /// Writable readiness.
    pub const WRITABLE: Interest = Interest(0b10);
    /// No direction: only errors and hangups are reported (epoll always
    /// delivers those).
    pub const NONE: Interest = Interest(0);

    /// This interest combined with another.
    pub fn with(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    /// Does this interest include readable readiness?
    pub fn is_readable(self) -> bool {
        self.0 & Self::READABLE.0 != 0
    }

    /// Does this interest include writable readiness?
    pub fn is_writable(self) -> bool {
        self.0 & Self::WRITABLE.0 != 0
    }

    fn epoll_mask(self) -> u32 {
        let mut mask = 0;
        if self.is_readable() {
            mask |= sys::EPOLLIN | sys::EPOLLRDHUP;
        }
        if self.is_writable() {
            mask |= sys::EPOLLOUT;
        }
        mask
    }
}

/// One readiness report: which token fired and in which directions.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    token: Token,
    mask: u32,
}

impl Event {
    /// The token the ready source was registered with.
    pub fn token(&self) -> Token {
        self.token
    }

    /// The source has bytes to read (or a pending accept, or a peer
    /// hangup — reading returns 0 to distinguish).
    pub fn is_readable(&self) -> bool {
        self.mask & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLHUP) != 0
    }

    /// The source can accept more written bytes.
    pub fn is_writable(&self) -> bool {
        self.mask & sys::EPOLLOUT != 0
    }

    /// The source failed or the peer closed it; the registration should be
    /// torn down.
    pub fn is_error_or_hangup(&self) -> bool {
        self.mask & (sys::EPOLLERR | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0
    }
}

/// Reusable buffer of readiness events filled by [`Poll::poll`].
pub struct Events {
    raw: Vec<sys::EpollEvent>,
    len: usize,
}

impl Events {
    /// A buffer that can carry up to `capacity` events per poll.
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            raw: vec![sys::EpollEvent { events: 0, data: 0 }; capacity.max(1)],
            len: 0,
        }
    }

    /// Events reported by the last poll, in kernel order.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.raw[..self.len].iter().map(|raw| {
            // Copy the (possibly packed) fields by value; references into
            // a packed struct would be unsound.
            let events = raw.events;
            let data = raw.data;
            Event {
                token: Token(data as usize),
                mask: events,
            }
        })
    }

    /// How many events the last poll reported.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the last poll reported none.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// A readiness selector over registered descriptors — one epoll instance.
#[derive(Debug)]
pub struct Poll {
    epfd: c_int,
}

impl Poll {
    /// A fresh selector with no registrations.
    pub fn new() -> io::Result<Poll> {
        Ok(Poll {
            epfd: sys::epoll_create()?,
        })
    }

    fn control(&self, op: c_int, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        sys::epoll_control(
            self.epfd,
            op,
            fd,
            Some(sys::EpollEvent {
                events: interest.epoll_mask(),
                data: token.0 as u64,
            }),
        )
    }

    /// Start watching `source` for `interest`, tagging its events with
    /// `token`.  The caller keeps ownership of the descriptor and must
    /// [`Poll::deregister`] it (or close it) when done.
    pub fn register(
        &self,
        source: &impl AsRawFd,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        self.control(sys::EPOLL_CTL_ADD, source.as_raw_fd(), token, interest)
    }

    /// Replace an existing registration's token and interest.
    pub fn reregister(
        &self,
        source: &impl AsRawFd,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        self.control(sys::EPOLL_CTL_MOD, source.as_raw_fd(), token, interest)
    }

    /// Stop watching `source`.
    pub fn deregister(&self, source: &impl AsRawFd) -> io::Result<()> {
        sys::epoll_control(self.epfd, sys::EPOLL_CTL_DEL, source.as_raw_fd(), None)
    }

    /// Block until at least one registered source is ready (or `timeout`
    /// elapses — `None` waits indefinitely), filling `events`.  Returns the
    /// number of events reported; 0 means the timeout fired.
    pub fn poll(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        let timeout_ms: c_int = match timeout {
            // Round sub-millisecond timeouts up so `Some(tiny)` cannot
            // degenerate into a busy spin at 0ms.
            Some(t) => t.as_millis().clamp(1, c_int::MAX as u128) as c_int,
            None => -1,
        };
        events.len = sys::epoll_wait_events(self.epfd, &mut events.raw, timeout_ms)?;
        Ok(events.len)
    }
}

impl Drop for Poll {
    fn drop(&mut self) {
        sys::close_fd(self.epfd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::unix::net::UnixStream;

    #[test]
    fn interest_composition() {
        let both = Interest::READABLE.with(Interest::WRITABLE);
        assert!(both.is_readable() && both.is_writable());
        assert!(!Interest::NONE.is_readable() && !Interest::NONE.is_writable());
        assert!(!Interest::WRITABLE.is_readable());
    }

    #[test]
    fn poll_reports_readability_level_triggered() {
        let poll = Poll::new().unwrap();
        let (mut a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        poll.register(&b, Token(7), Interest::READABLE).unwrap();

        let mut events = Events::with_capacity(8);
        // Nothing to read yet: the timeout fires.
        let n = poll
            .poll(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);
        assert!(events.is_empty());

        a.write_all(b"hello").unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let fired: Vec<Event> = events.iter().collect();
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].token(), Token(7));
        assert!(fired[0].is_readable());

        // Level-triggered: unread bytes keep firing.
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);

        poll.deregister(&b).unwrap();
        let n = poll
            .poll(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0, "deregistered sources stay silent");
    }

    #[test]
    fn hangup_is_reported_to_the_reader() {
        let poll = Poll::new().unwrap();
        let (a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        poll.register(&b, Token(1), Interest::READABLE).unwrap();
        drop(a);
        let mut events = Events::with_capacity(4);
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let event = events.iter().next().expect("hangup must wake the poll");
        assert!(event.is_error_or_hangup());
        assert!(event.is_readable(), "hangup reads as EOF-readable");
    }

    #[test]
    fn writability_fires_for_a_fresh_socket() {
        let poll = Poll::new().unwrap();
        let (_a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        poll.register(&b, Token(3), Interest::WRITABLE).unwrap();
        let mut events = Events::with_capacity(4);
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events
            .iter()
            .any(|e| e.token() == Token(3) && e.is_writable()));
    }
}
