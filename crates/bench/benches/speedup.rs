//! Experiments E1 and E2: execution benchmarks.
//!
//! * the SIL interpreter running the sequential versus the automatically
//!   parallelized `add_and_reverse` (cost model captures work/span; this
//!   bench captures the interpreter overhead and the wall-clock effect of
//!   rayon-backed execution),
//! * the native Rust kernels (sequential versus rayon) for
//!   `add_and_reverse`, `treeadd` and `bisort`, which give the real-machine
//!   wall-clock speedups reported in EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sil_lang::frontend;
use sil_lang::pretty::pretty_program;
use sil_parallelizer::parallelize_program;
use sil_runtime::interp::{Interpreter, RunConfig};
use sil_runtime::parallel::ParallelExecutor;
use sil_workloads::native;
use sil_workloads::programs::Workload;
use std::hint::black_box;

/// A fast Criterion configuration so the whole suite completes quickly while
/// still giving stable relative numbers.
fn bench_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

fn interpreter_add_and_reverse(c: &mut Criterion) {
    let mut group = c.benchmark_group("interp_add_and_reverse");
    for depth in [8u32, 10, 12] {
        let src = Workload::AddAndReverse.source(depth);
        let (seq_program, seq_types) = frontend(&src).unwrap();
        let (parallel, _) = parallelize_program(&seq_program, &seq_types);
        let printed = pretty_program(&parallel);
        let (par_program, par_types) = frontend(&printed).unwrap();
        let config = RunConfig {
            store_capacity: (1 << (depth + 1)) as usize,
            ..RunConfig::default()
        };

        group.bench_with_input(BenchmarkId::new("sequential", depth), &depth, |b, _| {
            b.iter(|| {
                let mut interp = Interpreter::with_config(&seq_program, &seq_types, config.clone());
                black_box(interp.run().unwrap())
            })
        });
        group.bench_with_input(BenchmarkId::new("parallel_rayon", depth), &depth, |b, _| {
            b.iter(|| {
                let mut exec =
                    ParallelExecutor::with_config(&par_program, &par_types, config.clone());
                black_box(exec.run().unwrap())
            })
        });
    }
    group.finish();
}

fn native_add_and_reverse(c: &mut Criterion) {
    let mut group = c.benchmark_group("native_add_and_reverse");
    for depth in [14u32, 16, 18] {
        group.bench_with_input(BenchmarkId::new("sequential", depth), &depth, |b, &d| {
            b.iter(|| black_box(native::add_and_reverse_seq(d)))
        });
        group.bench_with_input(BenchmarkId::new("rayon", depth), &depth, |b, &d| {
            b.iter(|| black_box(native::add_and_reverse_par(d)))
        });
    }
    group.finish();
}

fn native_treeadd(c: &mut Criterion) {
    let mut group = c.benchmark_group("native_treeadd");
    for depth in [14u32, 16, 18] {
        group.bench_with_input(BenchmarkId::new("sequential", depth), &depth, |b, &d| {
            b.iter_with_setup(
                || native::Tree::perfect(d),
                |mut t| black_box(native::treeadd_seq(&mut t)),
            )
        });
        group.bench_with_input(BenchmarkId::new("rayon", depth), &depth, |b, &d| {
            b.iter_with_setup(
                || native::Tree::perfect(d),
                |mut t| black_box(native::treeadd_par(&mut t)),
            )
        });
    }
    group.finish();
}

fn native_bisort(c: &mut Criterion) {
    let mut group = c.benchmark_group("native_bisort");
    group.sample_size(20);
    for depth in [12u32, 14, 16] {
        group.bench_with_input(BenchmarkId::new("sequential", depth), &depth, |b, &d| {
            b.iter_with_setup(
                || native::Tree::perfect_keyed(d, 1),
                |mut t| black_box(native::bisort_seq(&mut t, i64::MAX, true)),
            )
        });
        group.bench_with_input(BenchmarkId::new("rayon", depth), &depth, |b, &d| {
            b.iter_with_setup(
                || native::Tree::perfect_keyed(d, 1),
                |mut t| black_box(native::bisort_par(&mut t, i64::MAX, true)),
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = speedup_benches;
    config = bench_config();
    targets =
    interpreter_add_and_reverse,
    native_add_and_reverse,
    native_treeadd,
    native_bisort

}
criterion_main!(speedup_benches);
