//! Micro-benchmarks of the path-matrix abstract domain: the operations the
//! paper's §4 singles out as needing to be efficient ("efficient operations
//! for merging and equality testing of path matrices").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sil_pathmatrix::{at_least, exact, Certainty, Dir, Link, Path, PathMatrix, PathSet};
use std::hint::black_box;

/// A fast Criterion configuration so the whole suite completes quickly while
/// still giving stable relative numbers.
fn bench_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

/// A matrix over `n` handles forming a left-spine chain plus assorted
/// cross-relations, representative of what the analysis builds.
fn chain_matrix(n: usize) -> PathMatrix {
    let names: Vec<String> = (0..n).map(|i| format!("h{i}")).collect();
    let mut m = PathMatrix::with_handles(names.iter().cloned());
    for i in 0..n {
        for j in (i + 1)..n {
            let dist = (j - i) as u32;
            let path = if dist == 1 {
                exact(Dir::Left, 1)
            } else {
                at_least(Dir::Down, dist.min(3))
            };
            m.set(&names[i], &names[j], PathSet::singleton(path));
        }
    }
    m
}

fn matrix_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("pathmatrix_join");
    for n in [4usize, 8, 16, 32] {
        let a = chain_matrix(n);
        let mut b = chain_matrix(n);
        // make the two sides differ so the join has real work to do
        b.set("h0", "h1", PathSet::singleton(exact(Dir::Right, 1)));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(a.join(&b)))
        });
    }
    group.finish();
}

fn matrix_equality(c: &mut Criterion) {
    let mut group = c.benchmark_group("pathmatrix_equality");
    for n in [4usize, 8, 16, 32] {
        let a = chain_matrix(n);
        let b = chain_matrix(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(a.same_relations(&b)))
        });
    }
    group.finish();
}

fn matrix_alias_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("pathmatrix_alias_handle");
    for n in [8usize, 32] {
        let m = chain_matrix(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                let mut copy = m.clone();
                copy.alias_handle("fresh", "h0");
                black_box(copy)
            })
        });
    }
    group.finish();
}

fn path_operations(c: &mut Criterion) {
    let long = Path::from_links(
        vec![
            Link::exact(Dir::Right, 1),
            Link::at_least(Dir::Down, 2),
            Link::exact(Dir::Left, 1),
        ],
        Certainty::Definite,
    );
    let other = Path::from_links(
        vec![Link::exact(Dir::Right, 1), Link::at_least(Dir::Left, 1)],
        Certainty::Possible,
    );
    c.bench_function("path_covers", |b| b.iter(|| black_box(long.covers(&other))));
    c.bench_function("path_concat", |b| b.iter(|| black_box(long.concat(&other))));
    c.bench_function("path_strip_first", |b| {
        b.iter(|| black_box(long.strip_first(Dir::Right)))
    });
    c.bench_function("path_generalize", |b| {
        b.iter(|| black_box(long.generalize(&other)))
    });
    let mut set = PathSet::empty();
    for i in 1..=4u32 {
        set.insert(exact(Dir::Left, i).weakened());
    }
    let set2 = PathSet::from_paths(vec![at_least(Dir::Down, 1), exact(Dir::Right, 2)]);
    c.bench_function("pathset_union", |b| b.iter(|| black_box(set.union(&set2))));
    c.bench_function("pathset_join", |b| b.iter(|| black_box(set.join(&set2))));
}

criterion_group! {
    name = pathmatrix_ops;
    config = bench_config();
    targets =
    matrix_join,
    matrix_equality,
    matrix_alias_store,
    path_operations

}
criterion_main!(pathmatrix_ops);
