//! Micro-benchmarks of the path-matrix abstract domain: the operations the
//! paper's §4 singles out as needing to be efficient ("efficient operations
//! for merging and equality testing of path matrices").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sil_analysis::{transfer_stmt, AbstractState};
use sil_lang::{parse_stmt, ProcSignature, Type};
use sil_pathmatrix::{at_least, exact, Certainty, Dir, Link, Path, PathMatrix, PathSet};
use std::hint::black_box;
use std::time::Instant;

/// A fast Criterion configuration so the whole suite completes quickly while
/// still giving stable relative numbers.
fn bench_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

/// A matrix over `n` handles forming a left-spine chain plus assorted
/// cross-relations, representative of what the analysis builds.
fn chain_matrix(n: usize) -> PathMatrix {
    let names: Vec<String> = (0..n).map(|i| format!("h{i}")).collect();
    let mut m = PathMatrix::with_handles(names.iter().cloned());
    for i in 0..n {
        for j in (i + 1)..n {
            let dist = (j - i) as u32;
            let path = if dist == 1 {
                exact(Dir::Left, 1)
            } else {
                at_least(Dir::Down, dist.min(3))
            };
            m.set(&names[i], &names[j], PathSet::singleton(path));
        }
    }
    m
}

/// An abstract state over a `chain_matrix(n)` plus the signature benchmarked
/// statements run against, so the transfer cases exercise the real analysis
/// entry point (kill/gen loops over every handle) rather than matrix ops in
/// isolation.
fn transfer_fixture(n: usize) -> (AbstractState, ProcSignature) {
    let mut state = AbstractState::new();
    state.matrix = chain_matrix(n);
    let mut sig = ProcSignature {
        name: "bench".to_string(),
        params: Vec::new(),
        return_type: None,
        vars: std::collections::HashMap::new(),
    };
    for i in 0..n {
        sig.vars.insert(format!("h{i}"), Type::Handle);
    }
    sig.vars.insert("fresh".to_string(), Type::Handle);
    (state, sig)
}

fn matrix_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("pathmatrix_join");
    for n in [4usize, 16, 64] {
        let a = chain_matrix(n);
        let mut b = chain_matrix(n);
        // make the two sides differ so the join has real work to do
        b.set("h0", "h1", PathSet::singleton(exact(Dir::Right, 1)));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(a.join(&b)))
        });
    }
    group.finish();
}

fn matrix_clone(c: &mut Criterion) {
    let mut group = c.benchmark_group("pathmatrix_clone");
    for n in [4usize, 16, 64] {
        let m = chain_matrix(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(m.clone()))
        });
    }
    group.finish();
}

fn matrix_transfer(c: &mut Criterion) {
    let mut group = c.benchmark_group("pathmatrix_transfer");
    // `h1.left := h2` is the expensive transfer: its kill phase scans every
    // handle that may reach the stored field and its gen phase concatenates
    // relations across sources × targets.
    let store = parse_stmt("h1.left := h2").expect("parses");
    for n in [4usize, 16, 64] {
        let (state, sig) = transfer_fixture(n);
        let mut warnings = Vec::new();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                warnings.clear();
                black_box(transfer_stmt(&state, &store, &sig, &mut warnings))
            })
        });
    }
    group.finish();
}

fn matrix_equality(c: &mut Criterion) {
    let mut group = c.benchmark_group("pathmatrix_equality");
    for n in [4usize, 16, 64] {
        let a = chain_matrix(n);
        let b = chain_matrix(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(a.same_relations(&b)))
        });
    }
    group.finish();
}

fn matrix_alias_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("pathmatrix_alias_handle");
    for n in [8usize, 32] {
        let m = chain_matrix(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                let mut copy = m.clone();
                copy.alias_handle("fresh", "h0");
                black_box(copy)
            })
        });
    }
    group.finish();
}

fn path_operations(c: &mut Criterion) {
    let long = Path::from_links(
        vec![
            Link::exact(Dir::Right, 1),
            Link::at_least(Dir::Down, 2),
            Link::exact(Dir::Left, 1),
        ],
        Certainty::Definite,
    );
    let other = Path::from_links(
        vec![Link::exact(Dir::Right, 1), Link::at_least(Dir::Left, 1)],
        Certainty::Possible,
    );
    c.bench_function("path_covers", |b| b.iter(|| black_box(long.covers(&other))));
    c.bench_function("path_concat", |b| b.iter(|| black_box(long.concat(&other))));
    c.bench_function("path_strip_first", |b| {
        b.iter(|| black_box(long.strip_first(Dir::Right)))
    });
    c.bench_function("path_generalize", |b| {
        b.iter(|| black_box(long.generalize(&other)))
    });
    let mut set = PathSet::empty();
    for i in 1..=4u32 {
        set.insert(exact(Dir::Left, i).weakened());
    }
    let set2 = PathSet::from_paths(vec![at_least(Dir::Down, 1), exact(Dir::Right, 2)]);
    c.bench_function("pathset_union", |b| b.iter(|| black_box(set.union(&set2))));
    c.bench_function("pathset_join", |b| b.iter(|| black_box(set.join(&set2))));
}

/// Time `f` directly and return operations per second.  Smoke mode
/// (`CRITERION_SMOKE=1`) runs a single iteration so CI only proves the code
/// paths execute.
fn measure_ops(mut f: impl FnMut()) -> f64 {
    let smoke = std::env::var("CRITERION_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    if smoke {
        f();
        return 0.0;
    }
    // Warm up, then size the batch so the timed region is ~200ms.
    let start = Instant::now();
    let mut warm = 0u64;
    while start.elapsed() < std::time::Duration::from_millis(50) {
        f();
        warm += 1;
    }
    let per_op = start.elapsed().as_secs_f64() / warm as f64;
    let iters = ((0.2 / per_op) as u64).max(1);
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    iters as f64 / start.elapsed().as_secs_f64()
}

/// Print a plain ops/sec table over the join/transfer/clone/equality cases —
/// the summary the ROADMAP before/after numbers are read from.
fn ops_table(_c: &mut Criterion) {
    let store = parse_stmt("h1.left := h2").expect("parses");
    println!("\nops/sec (higher is better)");
    println!(
        "{:<12} {:>14} {:>14} {:>14}",
        "case", "4 handles", "16 handles", "64 handles"
    );
    let mut rows: Vec<(&str, Vec<f64>)> = vec![
        ("join", Vec::new()),
        ("transfer", Vec::new()),
        ("clone", Vec::new()),
        ("equality", Vec::new()),
    ];
    for n in [4usize, 16, 64] {
        let a = chain_matrix(n);
        let mut b = chain_matrix(n);
        b.set("h0", "h1", PathSet::singleton(exact(Dir::Right, 1)));
        let (state, sig) = transfer_fixture(n);
        let mut warnings = Vec::new();
        rows[0].1.push(measure_ops(|| {
            black_box(a.join(&b));
        }));
        rows[1].1.push(measure_ops(|| {
            warnings.clear();
            black_box(transfer_stmt(&state, &store, &sig, &mut warnings));
        }));
        rows[2].1.push(measure_ops(|| {
            black_box(a.clone());
        }));
        rows[3].1.push(measure_ops(|| {
            black_box(a.same_relations(&b));
        }));
    }
    for (name, cols) in rows {
        print!("{name:<12}");
        for v in cols {
            print!(" {v:>14.0}");
        }
        println!();
    }
    println!();
}

criterion_group! {
    name = pathmatrix_ops;
    config = bench_config();
    targets =
    matrix_join,
    matrix_clone,
    matrix_transfer,
    matrix_equality,
    matrix_alias_store,
    path_operations,
    ops_table

}
criterion_main!(pathmatrix_ops);
