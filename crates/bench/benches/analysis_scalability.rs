//! Experiment E3: how the whole-program path-matrix analysis scales with the
//! number of statements and the number of live handles — supporting the
//! paper's claim that restricting the method to regular recursive structures
//! keeps the analysis cheap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sil_analysis::analyze_program;
use sil_lang::{check_program, normalize_program};
use sil_workloads::generator::{GeneratorConfig, ProgramGenerator};
use sil_workloads::programs::Workload;
use std::hint::black_box;

/// A fast Criterion configuration so the whole suite completes quickly while
/// still giving stable relative numbers.
fn bench_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

fn analysis_vs_statement_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis_vs_statements");
    for statements in [50usize, 100, 200, 400] {
        let mut generator = ProgramGenerator::new(GeneratorConfig {
            statements,
            handle_vars: 10,
            int_vars: 4,
            seed: 11,
        });
        let program = normalize_program(&generator.generate());
        let types = check_program(&program).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(statements),
            &statements,
            |b, _| b.iter(|| black_box(analyze_program(&program, &types))),
        );
    }
    group.finish();
}

fn analysis_vs_handle_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis_vs_handles");
    for handles in [4usize, 8, 16, 32] {
        let mut generator = ProgramGenerator::new(GeneratorConfig {
            statements: 150,
            handle_vars: handles,
            int_vars: 4,
            seed: 13,
        });
        let program = normalize_program(&generator.generate());
        let types = check_program(&program).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(handles), &handles, |b, _| {
            b.iter(|| black_box(analyze_program(&program, &types)))
        });
    }
    group.finish();
}

fn analysis_of_real_workloads(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis_of_workloads");
    for workload in [Workload::AddAndReverse, Workload::TreeSum, Workload::Bisort] {
        let src = workload.source(4);
        let (program, types) = sil_lang::frontend(&src).unwrap();
        group.bench_function(workload.name(), |b| {
            b.iter(|| black_box(analyze_program(&program, &types)))
        });
    }
    group.finish();
}

criterion_group! {
    name = analysis_scalability;
    config = bench_config();
    targets =
    analysis_vs_statement_count,
    analysis_vs_handle_count,
    analysis_of_real_workloads

}
criterion_main!(analysis_scalability);
