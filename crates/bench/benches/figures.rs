//! Benchmarks of the code paths behind each figure of the paper:
//! the transfer functions (Fig. 2), the while-loop fixpoint (Fig. 3),
//! statement packing (Fig. 4), interference sets (Figs. 5/6), the full
//! interprocedural analysis of `add_and_reverse` (Fig. 7), its
//! parallelization (Fig. 8), and statement-sequence interference (Figs. 9/10).

use criterion::{criterion_group, criterion_main, Criterion};
use sil_analysis::analyze_program;
use sil_analysis::interference::interference_set;
use sil_analysis::sequences::sequences_independent;
use sil_analysis::state::AbstractState;
use sil_bench::figures;
use sil_lang::parser::parse_stmt;
use sil_lang::types::Type;
use sil_lang::{frontend, testsrc};
use sil_parallelizer::parallelize_program;
use std::collections::HashMap;
use std::hint::black_box;

/// A fast Criterion configuration so the whole suite completes quickly while
/// still giving stable relative numbers.
fn bench_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

fn signature(handles: &[&str], ints: &[&str]) -> sil_lang::types::ProcSignature {
    let mut vars = HashMap::new();
    for h in handles {
        vars.insert(h.to_string(), Type::Handle);
    }
    for i in ints {
        vars.insert(i.to_string(), Type::Int);
    }
    sil_lang::types::ProcSignature {
        name: "bench".into(),
        params: vec![],
        return_type: None,
        vars,
    }
}

fn fig2_handle_assignment(c: &mut Criterion) {
    c.bench_function("fig2_handle_assignment_transfers", |b| {
        b.iter(|| black_box(figures::run_figure_2_transfers()))
    });
}

fn fig3_while_fixpoint(c: &mut Criterion) {
    c.bench_function("fig3_while_loop_fixpoint", |b| {
        b.iter(|| black_box(figures::run_figure_3_fixpoint()))
    });
}

fn fig4_statement_packing(c: &mut Criterion) {
    let (program, types) = frontend(testsrc::STRAIGHT_LINE).unwrap();
    c.bench_function("fig4_statement_packing", |b| {
        b.iter(|| black_box(parallelize_program(&program, &types)))
    });
}

fn fig6_interference(c: &mut Criterion) {
    let sig = signature(&["a", "b", "c", "d"], &["x", "y", "n"]);
    let mut state = AbstractState::with_handles(["a", "b", "c", "d"]);
    state.matrix.set(
        "a",
        "b",
        sil_pathmatrix::PathSet::singleton(sil_pathmatrix::same()),
    );
    let s1 = parse_stmt("x := a.left").unwrap();
    let s2 = parse_stmt("b.left := nil").unwrap();
    c.bench_function("fig6_interference_set", |b| {
        b.iter(|| black_box(interference_set(&s1, &s2, &sig, &state.matrix)))
    });
}

fn fig7_analysis(c: &mut Criterion) {
    let (program, types) = frontend(testsrc::ADD_AND_REVERSE).unwrap();
    c.bench_function("fig7_add_and_reverse_analysis", |b| {
        b.iter(|| black_box(analyze_program(&program, &types)))
    });
}

fn fig8_parallelization(c: &mut Criterion) {
    let (program, types) = frontend(testsrc::ADD_AND_REVERSE).unwrap();
    c.bench_function("fig8_add_and_reverse_parallelization", |b| {
        b.iter(|| black_box(parallelize_program(&program, &types)))
    });
}

fn fig9_sequence_interference(c: &mut Criterion) {
    let sig = signature(&["t", "a", "b"], &["x", "y"]);
    let entry = AbstractState::with_handles(["t"]);
    let u: Vec<_> = ["a := t.left", "x := a.value", "a.value := x + 1"]
        .iter()
        .map(|s| parse_stmt(s).unwrap())
        .collect();
    let v: Vec<_> = ["b := t.right", "y := b.value", "b.value := y + 1"]
        .iter()
        .map(|s| parse_stmt(s).unwrap())
        .collect();
    c.bench_function("fig9_sequence_interference", |b| {
        b.iter(|| black_box(sequences_independent(&u, &v, &entry, &sig)))
    });
}

criterion_group! {
    name = figures_benches;
    config = bench_config();
    targets =
    fig2_handle_assignment,
    fig3_while_fixpoint,
    fig4_statement_packing,
    fig6_interference,
    fig7_analysis,
    fig8_parallelization,
    fig9_sequence_interference

}
criterion_main!(figures_benches);
