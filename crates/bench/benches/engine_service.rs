//! Experiment E6: the daemon's serving strategies under concurrency.
//!
//! Threaded (one stack per connection) vs. async (one silio/epoll event
//! loop plus a worker pool) at 1/32/256 concurrent connections, driving
//! Zipf-skewed `Analyze` streams of the 64 real workload programs over a
//! temp Unix socket — the serve-many-cheap-consumers-from-a-shared-cache
//! shape the NDN caching literature evaluates.  The table reports
//! throughput (requests/sec) and client-observed p50 latency per cell;
//! both servers answer from the same `ShardedService`, so any difference
//! is the serving strategy, not the analysis.
//!
//! The corpus is primed once per daemon before measuring, so the measured
//! traffic is warm-cache protocol exchanges — the regime where the server
//! itself (not the analysis) dominates, which is what this bench isolates.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::distributions::{Distribution, Zipf};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sil_engine::service::{
    RemoteService, Request, Response, Server, ServerKind, ServerOptions, Service, ShardedService,
};
use sil_engine::{Addr, EngineConfig};
use sil_workloads::programs::Workload;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// 64 distinct real programs (every workload at several sizes), ranked so
/// Zipf rank 1 is the hottest.
fn program_corpus() -> Vec<String> {
    let mut corpus = Vec::new();
    for size in 3..=9u32 {
        for workload in Workload::ALL {
            corpus.push(workload.source(size));
            if corpus.len() == 64 {
                return corpus;
            }
        }
    }
    corpus
}

fn temp_socket(name: &str) -> Addr {
    let path = std::env::temp_dir().join(format!("sild-bench-{}-{name}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    Addr::Unix(path)
}

struct CellResult {
    requests_per_sec: f64,
    p50: Duration,
}

/// Run one (server kind × connection count) cell: spawn a fresh daemon,
/// prime the corpus, then fan `requests` Zipf-sampled analyze exchanges
/// across `connections` concurrent clients, collecting per-request
/// latencies.
fn run_cell(kind: ServerKind, connections: usize, requests: usize) -> CellResult {
    let corpus = Arc::new(program_corpus());
    let service = Arc::new(ShardedService::new(4, EngineConfig::default()));
    let server = Server::bind_with(
        &temp_socket(&format!("{}-{connections}", kind.name())),
        service,
        ServerOptions {
            kind,
            workers: 0,
            ..ServerOptions::default()
        },
    )
    .unwrap();
    assert_eq!(server.kind(), kind, "bench needs the real strategy");
    let handle = server.spawn();
    let addr = handle.addr().to_string();

    // Prime every program once so the measured stream is warm.
    let primer = RemoteService::connect(&addr).unwrap();
    for src in corpus.iter() {
        match primer.call(Request::analyze(src.clone())) {
            Response::Analyzed { .. } => {}
            other => panic!("prime failed: {other:?}"),
        }
    }
    drop(primer);

    // Pre-sample each client's request ranks so the measured loop does no
    // RNG work and every (kind, connections) cell sees identical streams.
    let per_client = requests.div_ceil(connections);
    let streams: Vec<Vec<usize>> = (0..connections)
        .map(|client| {
            let zipf = Zipf::new(corpus.len() as u64, 1.2).unwrap();
            let mut rng = StdRng::seed_from_u64(1000 + client as u64);
            (0..per_client)
                .map(|_| zipf.sample(&mut rng) as usize - 1)
                .collect()
        })
        .collect();

    let started = Instant::now();
    let mut latencies: Vec<Duration> = std::thread::scope(|scope| {
        let handles: Vec<_> = streams
            .iter()
            .map(|stream| {
                let addr = &addr;
                let corpus = &corpus;
                scope.spawn(move || {
                    let remote = RemoteService::connect(addr).unwrap();
                    let mut latencies = Vec::with_capacity(stream.len());
                    for &rank in stream {
                        let request = Request::analyze(corpus[rank].clone());
                        let sent = Instant::now();
                        match remote.call(request) {
                            Response::Analyzed { .. } => {}
                            other => panic!("exchange failed: {other:?}"),
                        }
                        latencies.push(sent.elapsed());
                    }
                    latencies
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("bench client panicked"))
            .collect()
    });
    let elapsed = started.elapsed();
    handle.shutdown();

    latencies.sort_unstable();
    CellResult {
        requests_per_sec: latencies.len() as f64 / elapsed.as_secs_f64(),
        p50: latencies[latencies.len() / 2],
    }
}

fn human_duration(d: Duration) -> String {
    let us = d.as_nanos() as f64 / 1e3;
    if us >= 1e3 {
        format!("{:.2}ms", us / 1e3)
    } else {
        format!("{us:.0}us")
    }
}

/// The threaded-vs-async table, plus one timed sweep per strategy.
fn threaded_vs_async(c: &mut Criterion) {
    let smoke = std::env::var_os("CRITERION_SMOKE").is_some();
    let (conn_counts, requests): (&[usize], usize) = if smoke {
        (&[1, 8], 64)
    } else {
        (&[1, 32, 256], 4096)
    };

    println!(
        "daemon serving strategies ({requests} warm Zipf analyze requests over 64 real \
         programs, 4 shards, unix socket):"
    );
    println!(
        "{:>9} {:>12} {:>12} {:>10} {:>10}",
        "conns", "thr req/s", "async req/s", "thr p50", "async p50"
    );
    for &connections in conn_counts {
        let threaded = run_cell(ServerKind::Threaded, connections, requests);
        let asynced = run_cell(ServerKind::Async, connections, requests);
        println!(
            "{connections:>9} {:>12.0} {:>12.0} {:>10} {:>10}",
            threaded.requests_per_sec,
            asynced.requests_per_sec,
            human_duration(threaded.p50),
            human_duration(asynced.p50),
        );
    }

    let mut group = c.benchmark_group("engine_service");
    let sweep_conns = if smoke { 4 } else { 32 };
    let sweep_requests = if smoke { 32 } else { 512 };
    for kind in [ServerKind::Threaded, ServerKind::Async] {
        group.bench_function(format!("{}_{sweep_conns}conns", kind.name()), |b| {
            b.iter(|| {
                let cell = run_cell(kind, sweep_conns, sweep_requests);
                criterion::black_box(cell.requests_per_sec)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = engine_service;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(3));
    targets = threaded_vs_async
}
criterion_main!(engine_service);
