//! Experiment E5: the engine's content-addressed caches.
//!
//! * cold vs. warm whole-program analysis of an unchanged workload (the
//!   warm path is a fingerprint plus a map lookup — the acceptance target
//!   is >=5x, the observed ratio is orders of magnitude),
//! * summary-cache reuse across program variants sharing a call-graph cone,
//! * batch throughput over the whole workload suite, sequential engine vs.
//!   rayon-parallel engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sil_engine::{Engine, EngineConfig};
use sil_workloads::programs::Workload;
use std::hint::black_box;

/// A fast Criterion configuration so the whole suite completes quickly while
/// still giving stable relative numbers.
fn bench_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

fn cold_vs_warm(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_cold_vs_warm");
    for workload in [Workload::AddAndReverse, Workload::Bisort, Workload::ListSum] {
        let src = workload.source(workload.test_size());
        let engine = Engine::new(EngineConfig::default());

        group.bench_with_input(BenchmarkId::new("cold", workload.name()), &src, |b, src| {
            b.iter(|| {
                engine.clear_caches();
                black_box(engine.analyze_source(src).unwrap())
            })
        });

        engine.clear_caches();
        engine.analyze_source(&src).unwrap(); // prime
        group.bench_with_input(BenchmarkId::new("warm", workload.name()), &src, |b, src| {
            b.iter(|| black_box(engine.analyze_source(src).unwrap()))
        });
    }
    group.finish();
}

fn summary_reuse_across_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_summary_reuse");
    // Ten sizes of tree_sum share the build/sum cone; only `main` differs.
    let variants: Vec<String> = (3..13).map(|d| Workload::TreeSum.source(d)).collect();

    group.bench_function("no_summary_cache", |b| {
        b.iter(|| {
            let engine = Engine::new(EngineConfig {
                summary_cache_capacity: 0,
                ..EngineConfig::default()
            });
            for v in &variants {
                black_box(engine.analyze_source(v).unwrap());
            }
        })
    });
    group.bench_function("with_summary_cache", |b| {
        b.iter(|| {
            let engine = Engine::new(EngineConfig::default());
            for v in &variants {
                black_box(engine.analyze_source(v).unwrap());
            }
        })
    });
    group.finish();
}

fn batch_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_batch_all_workloads");
    let sources: Vec<String> = Workload::ALL
        .iter()
        .map(|w| w.source(w.test_size()))
        .collect();
    for parallel in [false, true] {
        let label = if parallel { "rayon" } else { "sequential" };
        group.bench_function(label, |b| {
            b.iter(|| {
                let engine = Engine::new(EngineConfig {
                    parallel,
                    ..EngineConfig::default()
                });
                black_box(engine.analyze_batch(&sources))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = engine_cache;
    config = bench_config();
    targets =
    cold_vs_warm,
    summary_reuse_across_variants,
    batch_throughput
}
criterion_main!(engine_cache);
