//! Experiment E5: the engine's content-addressed summary store.
//!
//! * cold vs. warm whole-program analysis of an unchanged workload (the
//!   warm path is a fingerprint plus a map lookup — the acceptance target
//!   is >=5x, the observed ratio is orders of magnitude),
//! * cold full analysis vs. warm *incremental* re-analysis of an edited
//!   program (the edit's stale cone is re-walked, everything else replays),
//! * summary-cache reuse across program variants sharing a call-graph cone,
//! * batch throughput over the whole workload suite, sequential engine vs.
//!   rayon-parallel engine,
//! * the ROADMAP eviction-policy experiment: LRU vs LFU vs Adaptive
//!   hit-rate table under Zipf-skewed request streams at several skews and
//!   capacities (Adaptive must track the winner without being told),
//! * the shared-vs-private-store experiment behind `sild`: aggregate hit
//!   rate of a `ShardedService` whose shards share one store vs. the same
//!   shard count over private per-shard stores, at fixed *total* capacity,
//!   over Zipf-skewed streams of real programs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::distributions::{Distribution, Zipf};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sil_engine::service::{route_fingerprint, Request, Service, ShardedService};
use sil_engine::{Engine, EngineConfig, EvictionPolicy, NamespaceCache};
use sil_workloads::programs::Workload;
use std::hint::black_box;

/// A fast Criterion configuration so the whole suite completes quickly while
/// still giving stable relative numbers.
fn bench_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

fn cold_vs_warm(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_cold_vs_warm");
    for workload in [Workload::AddAndReverse, Workload::Bisort, Workload::ListSum] {
        let src = workload.source(workload.test_size());
        let engine = Engine::new(EngineConfig::default());

        group.bench_with_input(BenchmarkId::new("cold", workload.name()), &src, |b, src| {
            b.iter(|| {
                engine.clear_caches();
                black_box(engine.analyze_source(src).unwrap())
            })
        });

        engine.clear_caches();
        engine.analyze_source(&src).unwrap(); // prime
        group.bench_with_input(BenchmarkId::new("warm", workload.name()), &src, |b, src| {
            b.iter(|| black_box(engine.analyze_source(src).unwrap()))
        });
    }
    group.finish();
}

fn summary_reuse_across_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_summary_reuse");
    // Ten sizes of tree_sum share the build/sum cone; only `main` differs.
    let variants: Vec<String> = (3..13).map(|d| Workload::TreeSum.source(d)).collect();

    group.bench_function("no_summary_cache", |b| {
        b.iter(|| {
            let engine = Engine::new(EngineConfig {
                summary_cache_capacity: 0,
                ..EngineConfig::default()
            });
            for v in &variants {
                black_box(engine.analyze_source(v).unwrap());
            }
        })
    });
    group.bench_function("with_summary_cache", |b| {
        b.iter(|| {
            let engine = Engine::new(EngineConfig::default());
            for v in &variants {
                black_box(engine.analyze_source(v).unwrap());
            }
        })
    });
    group.finish();
}

/// Cold full analysis vs. warm incremental re-analysis of an edited
/// program.  The edit touches `add_n` only, so `reverse` and `build` replay
/// their retained walks; the incremental acceptance criterion is that the
/// warm edit is measurably faster than the cold full analysis.
fn incremental_edit(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_incremental_edit");
    let base = Workload::AddAndReverse.source(6);
    let edited = base.replace("h.value := h.value + n", "h.value := h.value + n + 0");
    assert_ne!(base, edited);

    let cold_engine = Engine::new(EngineConfig {
        incremental: false,
        ..EngineConfig::default()
    });
    group.bench_function("cold_full", |b| {
        b.iter(|| {
            cold_engine.clear_caches();
            black_box(cold_engine.analyze_source(&edited).unwrap())
        })
    });

    let warm_engine = Engine::new(EngineConfig::default());
    warm_engine.analyze_source(&base).unwrap(); // retain the base cones
    group.bench_function("warm_incremental", |b| {
        b.iter(|| {
            // Only the whole-program namespace is dropped: the edited
            // program must miss it and take the incremental path against
            // the retained summary and walk namespaces.
            warm_engine.clear_program_cache();
            black_box(warm_engine.analyze_source(&edited).unwrap())
        })
    });
    group.finish();

    // Reuse counters of the *first* edit against a freshly primed engine
    // (the timed loop above converges to full replay after its first
    // iteration, once the edited cones are retained too).
    let first_engine = Engine::new(EngineConfig::default());
    first_engine.analyze_source(&base).unwrap();
    let entry = first_engine.analyze_source(&edited).unwrap();
    if let Some(stats) = entry.incremental {
        println!(
            "first incremental edit: {} procedures reused / {} stale, \
             {} walks replayed / {} performed",
            stats.procedures_reused,
            stats.procedures_stale,
            stats.walks_reused,
            stats.walks_performed
        );
    }
}

/// One Zipf-skewed request sweep through a bounded single-stripe namespace
/// cache; returns hit rate.
fn simulate_policy(policy: EvictionPolicy, capacity: usize, skew: f64) -> f64 {
    let cache: NamespaceCache<u64> = NamespaceCache::with_stripes(capacity, policy, 1);
    let zipf = Zipf::new(256, skew).unwrap();
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..20_000 {
        let key = zipf.sample(&mut rng);
        if cache.get(key).is_none() {
            cache.insert(key, key);
        }
    }
    cache.totals().hit_rate()
}

/// The eviction-policy experiment: print the LRU / LFU / Adaptive hit-rate
/// table over several skews and capacities, then time one representative
/// sweep per policy.  Adaptive starts as LRU and must *learn* its way to
/// the winning column from its own ghost-hit counters.
fn eviction_policy_hit_rates(c: &mut Criterion) {
    println!("eviction-policy hit rates (20000 Zipf requests over 256 keys):");
    println!(
        "{:>6} {:>9} {:>8} {:>8} {:>9}  winner",
        "skew", "capacity", "LRU", "LFU", "Adaptive"
    );
    for &skew in &[0.6, 0.9, 1.2] {
        for &capacity in &[8usize, 32, 64] {
            let lru = simulate_policy(EvictionPolicy::Lru, capacity, skew);
            let lfu = simulate_policy(EvictionPolicy::Lfu, capacity, skew);
            let adaptive = simulate_policy(EvictionPolicy::Adaptive, capacity, skew);
            println!(
                "{skew:>6.1} {capacity:>9} {:>7.1}% {:>7.1}% {:>8.1}%  {}",
                lru * 100.0,
                lfu * 100.0,
                adaptive * 100.0,
                if lfu > lru { "LFU" } else { "LRU" }
            );
        }
    }

    let mut group = c.benchmark_group("engine_eviction_policy");
    for policy in [
        EvictionPolicy::Lru,
        EvictionPolicy::Lfu,
        EvictionPolicy::Adaptive,
    ] {
        group.bench_function(format!("{policy:?}_sweep"), |b| {
            b.iter(|| black_box(simulate_policy(policy, 32, 1.2)))
        });
    }
    group.finish();
}

/// 64 distinct real programs (every workload at several sizes), ranked so
/// Zipf rank 1 is the hottest.
fn program_corpus() -> Vec<String> {
    let mut corpus = Vec::new();
    for size in 3..=9u32 {
        for workload in Workload::ALL {
            corpus.push(workload.source(size));
            if corpus.len() == 64 {
                return corpus;
            }
        }
    }
    corpus
}

/// Zipf stream config shared by both store layouts, so the comparison is
/// apples to apples: same corpus, same seed, same fixed *total* capacity.
fn zipf_ranks(corpus_len: usize, skew: f64, requests: usize) -> Vec<usize> {
    let zipf = Zipf::new(corpus_len as u64, skew).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    (0..requests)
        .map(|_| zipf.sample(&mut rng) as usize - 1)
        .collect()
}

/// Drive one Zipf-skewed stream of `Analyze` requests through a sharded
/// service whose shards all share **one** store of `total_capacity`;
/// returns the aggregate program hit rate across the shard views.
fn simulate_shared(shards: usize, total_capacity: usize, skew: f64, requests: usize) -> f64 {
    let corpus = program_corpus();
    let config = EngineConfig::default()
        .with_program_cache_capacity(total_capacity)
        .with_eviction(EvictionPolicy::Lru)
        .with_incremental(false);
    let service = ShardedService::new(shards, config);
    for rank in zipf_ranks(corpus.len(), skew, requests) {
        black_box(service.call(Request::analyze(corpus[rank].clone())));
    }
    let stats = service.shard_stats();
    let hits: u64 = stats.iter().map(|s| s.programs.hits).sum();
    let misses: u64 = stats.iter().map(|s| s.programs.misses).sum();
    hits as f64 / (hits + misses) as f64
}

/// The pre-store layout: the same shard count over *private* per-engine
/// stores that split the same total capacity, requests routed by the same
/// fingerprint rule.
fn simulate_private(shards: usize, total_capacity: usize, skew: f64, requests: usize) -> f64 {
    let corpus = program_corpus();
    let config = EngineConfig::default()
        .with_program_cache_capacity((total_capacity / shards).max(1))
        .with_eviction(EvictionPolicy::Lru)
        .with_incremental(false);
    let engines: Vec<Engine> = (0..shards).map(|_| Engine::new(config.clone())).collect();
    let routes: Vec<usize> = corpus
        .iter()
        .map(|src| (route_fingerprint(src) % shards as u64) as usize)
        .collect();
    for rank in zipf_ranks(corpus.len(), skew, requests) {
        black_box(engines[routes[rank]].analyze_source(&corpus[rank]).unwrap());
    }
    let mut hits = 0;
    let mut misses = 0;
    for engine in &engines {
        let stats = engine.stats();
        hits += stats.programs.hits;
        misses += stats.programs.misses;
    }
    hits as f64 / (hits + misses) as f64
}

/// The shared-store experiment behind `sild`: at fixed total capacity,
/// shards over one shared store keep the single-engine hit rate at any
/// shard count (shared content is stored once), while private per-shard
/// stores fragment the capacity.  The table quantifies both layouts under
/// Zipf-skewed request streams of *real programs*; the 1-shard private row
/// doubles as the single-engine baseline.
fn shared_vs_private_hit_rates(c: &mut Criterion) {
    let requests = if std::env::var_os("CRITERION_SMOKE").is_some() {
        60
    } else {
        240
    };
    println!(
        "shared-vs-private store hit rates ({requests} Zipf requests over 64 real \
         programs, total program capacity 16):"
    );
    println!(
        "{:>6} {:>7} {:>9} {:>9}",
        "skew", "shards", "private", "shared"
    );
    for &skew in &[0.9, 1.2] {
        let baseline = simulate_private(1, 16, skew, requests);
        for &shards in &[1usize, 2, 4, 8] {
            let private = simulate_private(shards, 16, skew, requests);
            let shared = simulate_shared(shards, 16, skew, requests);
            println!(
                "{skew:>6.1} {shards:>7} {:>8.1}% {:>8.1}%{}",
                private * 100.0,
                shared * 100.0,
                if shared + 1e-9 >= baseline {
                    ""
                } else {
                    "  << below single-engine baseline!"
                }
            );
        }
    }

    let mut group = c.benchmark_group("engine_shared_store_zipf");
    for shards in [1usize, 4] {
        group.bench_function(format!("shared_{shards}"), |b| {
            b.iter(|| black_box(simulate_shared(shards, 16, 1.2, requests / 4)))
        });
    }
    group.finish();
}

fn batch_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_batch_all_workloads");
    let sources: Vec<String> = Workload::ALL
        .iter()
        .map(|w| w.source(w.test_size()))
        .collect();
    for parallel in [false, true] {
        let label = if parallel { "rayon" } else { "sequential" };
        group.bench_function(label, |b| {
            b.iter(|| {
                let engine = Engine::new(EngineConfig {
                    parallel,
                    ..EngineConfig::default()
                });
                black_box(engine.analyze_batch(&sources))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = engine_cache;
    config = bench_config();
    targets =
    cold_vs_warm,
    incremental_edit,
    summary_reuse_across_variants,
    batch_throughput,
    eviction_policy_hit_rates,
    shared_vs_private_hit_rates
}
criterion_main!(engine_cache);
