//! # sil-bench
//!
//! The benchmark harness and figure-reproduction library.
//!
//! Every figure of the paper and every experiment listed in `DESIGN.md` has
//! a function here that regenerates its artifact as a printable string; the
//! `repro` binary prints them and the Criterion benches measure the code
//! paths behind them.  Keeping the artifact generation in a library makes the
//! reproduction itself testable.

pub mod figures;
pub mod speedups;

pub use figures::{
    figure_10_relative_sets, figure_2_handle_assignments, figure_3_while_loop,
    figure_4_statement_packing, figure_5_read_write_sets, figure_6_interference_examples,
    figure_7_path_matrices, figure_8_parallel_program, figure_9_sequence_interference,
};
pub use speedups::{
    analysis_scaling_rows, bisort_rows, cost_model_report, debug_experiment, speedup_rows,
    SpeedupRow,
};
