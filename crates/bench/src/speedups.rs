//! The quantitative experiments (E1–E4 in DESIGN.md): cost-model speedups of
//! the parallelized programs, wall-clock speedups of the native kernels,
//! analysis scalability, and the parallel-debugging experiment.

use sil_analysis::analyze_program;
use sil_lang::frontend;
use sil_lang::pretty::pretty_program;
use sil_parallelizer::{parallelize_program, verify_parallel_program};
use sil_runtime::interp::{Interpreter, RunConfig};
use sil_workloads::generator::{GeneratorConfig, ProgramGenerator};
use sil_workloads::native;
use sil_workloads::programs::Workload;
use std::fmt::Write as _;
use std::time::Instant;

/// One row of a speedup table.
#[derive(Debug, Clone)]
pub struct SpeedupRow {
    pub label: String,
    pub size: u64,
    pub work: u64,
    pub span: u64,
    pub parallelism: f64,
    pub speedup_p: Vec<(u64, f64)>,
}

impl SpeedupRow {
    pub fn render(&self) -> String {
        let mut out = format!(
            "{:<18} n={:<8} work={:<10} span={:<10} parallelism={:<8.2}",
            self.label, self.size, self.work, self.span, self.parallelism
        );
        for (p, s) in &self.speedup_p {
            out.push_str(&format!(" p{p}={s:.2}"));
        }
        out
    }
}

fn store_capacity_for(size: u32) -> usize {
    ((1usize << size.min(26)) + 1024).max(1 << 12)
}

/// Cost-model comparison of a workload: analyze + parallelize the SIL
/// program, execute both versions on the deterministic interpreter, and
/// report work/span and projected Brent speedups (experiment E2, and E1 for
/// `bisort`).
pub fn cost_model_report(workload: Workload, size: u32) -> (SpeedupRow, SpeedupRow) {
    let src = workload.source(size);
    let (program, types) = frontend(&src).expect("workload parses");
    let (parallel, _) = parallelize_program(&program, &types);
    let printed = pretty_program(&parallel);
    let (par_program, par_types) = frontend(&printed).expect("parallel output parses");

    let config = RunConfig {
        store_capacity: store_capacity_for(size),
        ..RunConfig::default()
    };
    let mut seq_interp = Interpreter::with_config(&program, &types, config.clone());
    let seq = seq_interp.run().expect("sequential run");
    let mut par_interp = Interpreter::with_config(&par_program, &par_types, config);
    let par = par_interp.run().expect("parallel run");

    let processors = [1u64, 2, 4, 8, 16];
    let row = |label: &str, cost: sil_runtime::Cost, nodes: usize| SpeedupRow {
        label: format!("{}/{}", workload.name(), label),
        size: nodes as u64,
        work: cost.work,
        span: cost.span,
        parallelism: cost.parallelism(),
        speedup_p: processors.iter().map(|&p| (p, cost.speedup(p))).collect(),
    };
    (
        row("seq", seq.cost, seq.allocated_nodes),
        row("par", par.cost, par.allocated_nodes),
    )
}

/// The E2 sweep: `add_and_reverse` over a range of tree depths.
pub fn speedup_rows(depths: &[u32]) -> Vec<SpeedupRow> {
    let mut rows = Vec::new();
    for &d in depths {
        let (seq, par) = cost_model_report(Workload::AddAndReverse, d);
        rows.push(seq);
        rows.push(par);
    }
    rows
}

/// The E1 sweep: `bisort` over a range of tree depths, plus native wall-clock
/// numbers for the same kernel.
pub fn bisort_rows(depths: &[u32]) -> Vec<String> {
    let mut out = Vec::new();
    for &d in depths {
        let (seq, par) = cost_model_report(Workload::Bisort, d);
        out.push(seq.render());
        out.push(par.render());
        // Native wall clock at a host-scale size (rayon's task overhead only
        // pays off on trees far larger than the interpreter-level sweep).
        let native_depth = d + 8;
        let mut tree_seq = native::Tree::perfect_keyed(native_depth, 1);
        let t0 = Instant::now();
        let _ = native::bisort_seq(&mut tree_seq, i64::MAX, true);
        let seq_time = t0.elapsed();
        let mut tree_par = native::Tree::perfect_keyed(native_depth, 1);
        let t1 = Instant::now();
        let _ = native::bisort_par(&mut tree_par, i64::MAX, true);
        let par_time = t1.elapsed();
        out.push(format!(
            "bisort/native     n={:<8} seq={:?} par={:?} wallclock-speedup={:.2}",
            (1u64 << native_depth) - 1,
            seq_time,
            par_time,
            seq_time.as_secs_f64() / par_time.as_secs_f64().max(1e-9)
        ));
    }
    out
}

/// The E3 sweep: whole-program analysis time versus program size.
pub fn analysis_scaling_rows(sizes: &[usize]) -> Vec<String> {
    let mut out = Vec::new();
    for &n in sizes {
        let mut generator = ProgramGenerator::new(GeneratorConfig {
            statements: n,
            handle_vars: 10,
            int_vars: 4,
            seed: 7,
        });
        let program = sil_lang::normalize_program(&generator.generate());
        let types = sil_lang::check_program(&program).expect("generated program type checks");
        let start = Instant::now();
        let analysis = analyze_program(&program, &types);
        let elapsed = start.elapsed();
        out.push(format!(
            "statements={:<6} analysis_time={:?} rounds={} warnings={}",
            program.statement_count(),
            elapsed,
            analysis.rounds,
            analysis.warnings.len()
        ));
    }
    out
}

/// The E4 experiment: hand-parallelize a program *incorrectly*, show that
/// (a) the static verifier flags it and (b) the dynamic race detector
/// confirms an actual race, while the correctly parallelized program passes
/// both.
pub fn debug_experiment() -> String {
    let broken_src = r#"
program broken
procedure bump(h: handle; n: int)
  l, r: handle
begin
  if h <> nil then
  begin
    h.value := h.value + n;
    l := h.left;
    r := h.left;
    bump(l, n) || bump(r, n)
  end
end
procedure main()
  root: handle
begin
  root := build(4);
  bump(root, 1)
end
function build(depth: int) handle
  t, l, r: handle; d: int
begin
  t := nil;
  if depth > 0 then
  begin
    t := new();
    t.value := depth;
    d := depth - 1;
    l := build(d);
    r := build(d);
    t.left := l;
    t.right := r
  end
end
return (t)
"#;
    let mut out = String::new();

    // The correct program (Figure 8) passes both checks.
    let (good, good_types) = frontend(sil_lang::testsrc::ADD_AND_REVERSE_PARALLEL).unwrap();
    let good_violations = verify_parallel_program(&good, &good_types);
    let mut interp = Interpreter::with_config(
        &good,
        &good_types,
        RunConfig {
            detect_races: true,
            ..RunConfig::default()
        },
    );
    let good_races = interp.run().expect("runs").races;
    writeln!(
        out,
        "figure-8 program: static violations = {}, dynamic races = {}",
        good_violations.len(),
        good_races.len()
    )
    .unwrap();

    // The broken program is flagged by both.
    let (bad, bad_types) = frontend(broken_src).unwrap();
    let bad_violations = verify_parallel_program(&bad, &bad_types);
    let mut interp = Interpreter::with_config(
        &bad,
        &bad_types,
        RunConfig {
            detect_races: true,
            ..RunConfig::default()
        },
    );
    let bad_races = interp.run().expect("runs").races;
    writeln!(
        out,
        "broken program:   static violations = {}, dynamic races = {}",
        bad_violations.len(),
        bad_races.len()
    )
    .unwrap();
    for v in &bad_violations {
        writeln!(out, "  static:  {v}").unwrap();
    }
    for r in bad_races.iter().take(3) {
        writeln!(out, "  dynamic: {r}").unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_model_shows_parallelism_for_add_and_reverse() {
        let (seq, par) = cost_model_report(Workload::AddAndReverse, 6);
        assert_eq!(seq.work, par.work, "parallelization preserves work");
        assert!(par.span < seq.span, "parallelization shortens the span");
        assert!(par.parallelism > 2.0, "{par:?}");
        // speedup grows with processors
        assert!(par.speedup_p[3].1 > par.speedup_p[1].1);
        assert!(!seq.render().is_empty());
    }

    #[test]
    fn cost_model_shows_parallelism_for_bisort() {
        let (seq, par) = cost_model_report(Workload::Bisort, 5);
        assert_eq!(seq.work, par.work);
        assert!(
            par.parallelism > 1.2,
            "bisort should expose parallelism: {par:?}"
        );
    }

    #[test]
    fn read_only_kernels_parallelize_too() {
        let (seq, par) = cost_model_report(Workload::TreeSum, 6);
        assert_eq!(seq.work, par.work);
        assert!(par.span < seq.span);
    }

    #[test]
    fn analysis_scaling_rows_produce_output() {
        let rows = analysis_scaling_rows(&[20, 60]);
        assert_eq!(rows.len(), 2);
        assert!(rows[0].contains("analysis_time"));
    }

    #[test]
    fn debug_experiment_flags_only_the_broken_program() {
        let out = debug_experiment();
        assert!(
            out.contains("figure-8 program: static violations = 0, dynamic races = 0"),
            "{out}"
        );
        assert!(out.contains("broken program:"), "{out}");
        // the broken program has at least one static violation and at least
        // one dynamic race
        let broken_line = out
            .lines()
            .find(|l| l.starts_with("broken program:"))
            .unwrap();
        assert!(!broken_line.contains("violations = 0"), "{out}");
        assert!(!broken_line.contains("races = 0"), "{out}");
    }
}
