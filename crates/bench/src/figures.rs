//! Regeneration of the paper's figures (F2–F10 in DESIGN.md).
//!
//! Each function returns a human-readable rendering of the corresponding
//! artifact; the `repro` binary prints them and `EXPERIMENTS.md` records the
//! comparison against the figures in the paper.

use sil_analysis::interference::{interference_set, read_set, write_set};
use sil_analysis::sequences::relative_interference;
use sil_analysis::state::AbstractState;
use sil_analysis::transfer::{transfer_stmt, Analyzer};
use sil_analysis::{analyze_program, sequences_independent};
use sil_lang::ast::Stmt;
use sil_lang::parser::parse_stmt;
use sil_lang::pretty::{pretty_program, pretty_stmt};
use sil_lang::types::{ProcSignature, Type};
use sil_lang::{frontend, testsrc};
use sil_parallelizer::{parallelize_program, verify_parallel_program};
use sil_pathmatrix::{at_least, exact, Certainty, Dir, Link, Path, PathSet};
use std::collections::HashMap;
use std::fmt::Write as _;

fn demo_signature(handles: &[&str], ints: &[&str]) -> ProcSignature {
    let mut vars = HashMap::new();
    for h in handles {
        vars.insert(h.to_string(), Type::Handle);
    }
    for i in ints {
        vars.insert(i.to_string(), Type::Int);
    }
    ProcSignature {
        name: "figure".into(),
        params: vec![],
        return_type: None,
        vars,
    }
}

/// The initial path matrix of Figure 2(a).
pub fn figure_2_initial_state() -> AbstractState {
    let mut state = AbstractState::with_handles(["a", "b", "c"]);
    state.matrix.set(
        "a",
        "b",
        PathSet::singleton(Path::from_links(
            vec![
                Link::exact(Dir::Left, 1),
                Link::at_least(Dir::Left, 1),
                Link::exact(Dir::Left, 1),
            ],
            Certainty::Definite,
        )),
    );
    state.matrix.set(
        "a",
        "c",
        PathSet::singleton(Path::from_links(
            vec![Link::exact(Dir::Right, 1), Link::at_least(Dir::Down, 1)],
            Certainty::Definite,
        )),
    );
    state
}

/// Figure 2: the effect of `d := a.right` and `e := d.left` on the path
/// matrix of Figure 2(a).
pub fn figure_2_handle_assignments() -> String {
    let sig = demo_signature(&["a", "b", "c", "d", "e"], &[]);
    let mut out = String::new();
    let mut warnings = Vec::new();
    let state_a = figure_2_initial_state();
    writeln!(out, "(a) initial path matrix").unwrap();
    writeln!(out, "{}", state_a.matrix.render()).unwrap();

    let stmt_b = parse_stmt("d := a.right").unwrap();
    let state_b = transfer_stmt(&state_a, &stmt_b, &sig, &mut warnings);
    writeln!(out, "(b) after statement: d := a.right").unwrap();
    writeln!(out, "{}", state_b.matrix.render()).unwrap();

    let stmt_c = parse_stmt("e := d.left").unwrap();
    let state_c = transfer_stmt(&state_b, &stmt_c, &sig, &mut warnings);
    writeln!(out, "(c) after statement: e := d.left").unwrap();
    writeln!(out, "{}", state_c.matrix.render()).unwrap();
    out
}

/// Figure 3: the iterative approximation for the leftmost-node loop, showing
/// each iterate `p0, p1, ...` until the fixpoint.
pub fn figure_3_while_loop() -> String {
    let sig = demo_signature(&["h", "l"], &[]);
    let mut out = String::new();
    let mut warnings = Vec::new();

    // p0: after `l := h`
    let entry = AbstractState::with_handles(["h", "l"]);
    let assign = parse_stmt("l := h").unwrap();
    let p0 = transfer_stmt(&entry, &assign, &sig, &mut warnings);
    writeln!(out, "p0 (zero iterations, after l := h)").unwrap();
    writeln!(out, "{}", p0.matrix.render()).unwrap();

    // iterate the loop body, joining as the analysis does
    let body = parse_stmt("l := l.left").unwrap();
    let mut current = p0.clone();
    for i in 1..=6 {
        let after = transfer_stmt(&current, &body, &sig, &mut warnings);
        let next = current.join(&after);
        writeln!(out, "p{i} (join after {i} more iteration(s))").unwrap();
        writeln!(out, "{}", next.matrix.render()).unwrap();
        if next.same_as(&current) {
            writeln!(out, "fixpoint reached: p{i} = p+\n").unwrap();
            break;
        }
        current = next;
    }
    out
}

/// Figure 4: transforming a run of sequential statements into one parallel
/// statement.
pub fn figure_4_statement_packing() -> String {
    let (program, types) = frontend(testsrc::STRAIGHT_LINE).unwrap();
    let (parallel, report) = parallelize_program(&program, &types);
    let mut out = String::new();
    writeln!(out, "--- sequential input ---").unwrap();
    writeln!(out, "{}", pretty_program(&program)).unwrap();
    writeln!(out, "--- packed output ---").unwrap();
    writeln!(out, "{}", pretty_program(&parallel)).unwrap();
    writeln!(out, "--- transformations ---").unwrap();
    writeln!(out, "{report}").unwrap();
    out
}

/// Figure 5: the read and write sets of every basic statement form, computed
/// against a small matrix where `a` and `b` are aliases.
pub fn figure_5_read_write_sets() -> String {
    let sig = demo_signature(&["a", "b"], &["x"]);
    let mut state = AbstractState::with_handles(["a", "b"]);
    state
        .matrix
        .set("a", "b", PathSet::singleton(sil_pathmatrix::same()));
    state
        .matrix
        .set("b", "a", PathSet::singleton(sil_pathmatrix::same()));
    let statements = [
        "a := nil",
        "a := new()",
        "a := b",
        "a := b.left",
        "a.left := b",
        "x := a.value",
        "a.value := x",
    ];
    let mut out = String::new();
    writeln!(out, "{:<18} {:<38} write set", "statement", "read set").unwrap();
    for src in statements {
        let stmt = parse_stmt(src).unwrap();
        let r: Vec<String> = read_set(&stmt, &sig, &state.matrix)
            .iter()
            .map(|l| l.to_string())
            .collect();
        let w: Vec<String> = write_set(&stmt, &sig, &state.matrix)
            .iter()
            .map(|l| l.to_string())
            .collect();
        writeln!(
            out,
            "{:<18} {{{:<36}}} {{{}}}",
            src,
            r.join(", "),
            w.join(", ")
        )
        .unwrap();
    }
    out
}

/// Figure 6: the three worked interference examples.
pub fn figure_6_interference_examples() -> String {
    let sig = demo_signature(&["a", "b", "c", "d"], &["x", "y", "n"]);
    // the matrix drawn at the top of Figure 6
    let mut state = AbstractState::with_handles(["a", "b", "c", "d"]);
    state
        .matrix
        .set("a", "b", PathSet::singleton(sil_pathmatrix::same()));
    state
        .matrix
        .set("b", "a", PathSet::singleton(sil_pathmatrix::same()));
    state
        .matrix
        .set("a", "d", PathSet::singleton(at_least(Dir::Down, 1)));
    state
        .matrix
        .set("b", "d", PathSet::singleton(at_least(Dir::Down, 1)));
    state.matrix.set(
        "c",
        "d",
        PathSet::from_paths(vec![
            sil_pathmatrix::same().weakened(),
            at_least(Dir::Right, 1).weakened(),
        ]),
    );
    state.matrix.set(
        "d",
        "c",
        PathSet::singleton(sil_pathmatrix::same().weakened()),
    );

    let examples = [
        ("Example 1", "x := a.left", "y := x"),
        ("Example 2", "x := a.left", "b.left := nil"),
        ("Example 3", "n := d.value", "c.value := 0"),
    ];
    let mut out = String::new();
    writeln!(out, "path matrix:").unwrap();
    writeln!(out, "{}", state.matrix.render()).unwrap();
    for (label, s1, s2) in examples {
        let st1 = parse_stmt(s1).unwrap();
        let st2 = parse_stmt(s2).unwrap();
        let interference = interference_set(&st1, &st2, &sig, &state.matrix);
        let locs: Vec<String> = interference.iter().map(|l| l.to_string()).collect();
        writeln!(
            out,
            "{label}: s1 = `{s1}`, s2 = `{s2}`  =>  I(s1,s2,p) = {{{}}}",
            locs.join(", ")
        )
        .unwrap();
    }
    out
}

/// Figure 7: the path matrices pA (program point A in `main`) and pB
/// (program point B in `add_n`) for the `add_and_reverse` program, as
/// computed by the full interprocedural analysis.
pub fn figure_7_path_matrices() -> String {
    let (program, types) = frontend(testsrc::ADD_AND_REVERSE).unwrap();
    let analysis = analyze_program(&program, &types);
    let mut out = String::new();

    let main = analysis.procedure("main").expect("main analyzed");
    let point_a = main.state_before_call("add_n", 0).expect("point A exists");
    writeln!(
        out,
        "pA — program point A in main (before add_n(lside, 1)):"
    )
    .unwrap();
    writeln!(out, "{}", point_a.matrix.render()).unwrap();
    writeln!(
        out,
        "lside and rside unrelated: {}\n",
        point_a.matrix.unrelated("lside", "rside")
    )
    .unwrap();

    let add_n = analysis.procedure("add_n").expect("add_n analyzed");
    let point_b = add_n.state_before_call("add_n", 0).expect("point B exists");
    writeln!(
        out,
        "pB — program point B in add_n (before the recursive calls):"
    )
    .unwrap();
    writeln!(out, "{}", point_b.matrix.render()).unwrap();
    writeln!(
        out,
        "l and r unrelated: {}\n",
        point_b.matrix.unrelated("l", "r")
    )
    .unwrap();

    let reverse = analysis.procedure("reverse").expect("reverse analyzed");
    let point_c = reverse
        .state_before_call("reverse", 0)
        .expect("point C exists");
    writeln!(
        out,
        "pC — program point C in reverse (before the recursive calls):"
    )
    .unwrap();
    writeln!(out, "{}", point_c.matrix.render()).unwrap();
    writeln!(
        out,
        "l and r unrelated: {}",
        point_c.matrix.unrelated("l", "r")
    )
    .unwrap();
    out
}

/// Figure 8: the automatically parallelized `add_and_reverse` program plus
/// the transformation report and the verification result.
pub fn figure_8_parallel_program() -> String {
    let (program, types) = frontend(testsrc::ADD_AND_REVERSE).unwrap();
    let (parallel, report) = parallelize_program(&program, &types);
    let printed = pretty_program(&parallel);
    let (reparsed, retypes) = frontend(&printed).expect("output reparses");
    let violations = verify_parallel_program(&reparsed, &retypes);
    let mut out = String::new();
    writeln!(out, "{printed}").unwrap();
    writeln!(out, "--- transformations ---").unwrap();
    writeln!(out, "{report}").unwrap();
    writeln!(
        out,
        "--- re-verification: {} violation(s) ---",
        violations.len()
    )
    .unwrap();
    out
}

/// Figure 9 / §5.3: interference between two statement sequences operating
/// on the two subtrees of the same tree.
pub fn figure_9_sequence_interference() -> String {
    let sig = demo_signature(&["t", "a", "b"], &["x", "y"]);
    let entry = AbstractState::with_handles(["t"]);
    let parse_seq =
        |srcs: &[&str]| -> Vec<Stmt> { srcs.iter().map(|s| parse_stmt(s).unwrap()).collect() };
    let independent_u = parse_seq(&["a := t.left", "x := a.value", "a.value := x + 1"]);
    let independent_v = parse_seq(&["b := t.right", "y := b.value", "b.value := y + 1"]);
    let conflicting_v = parse_seq(&["b := t.left", "y := b.value", "b.value := y + 1"]);

    let mut out = String::new();
    writeln!(
        out,
        "U = {}",
        independent_u
            .iter()
            .map(pretty_stmt)
            .collect::<Vec<_>>()
            .join("; ")
    )
    .unwrap();
    writeln!(
        out,
        "V = {}",
        independent_v
            .iter()
            .map(pretty_stmt)
            .collect::<Vec<_>>()
            .join("; ")
    )
    .unwrap();
    writeln!(
        out,
        "U || V safe (disjoint subtrees): {}",
        sequences_independent(&independent_u, &independent_v, &entry, &sig)
    )
    .unwrap();
    writeln!(out).unwrap();
    writeln!(
        out,
        "V' = {}",
        conflicting_v
            .iter()
            .map(pretty_stmt)
            .collect::<Vec<_>>()
            .join("; ")
    )
    .unwrap();
    let conflicts = relative_interference(&independent_u, &conflicting_v, &entry, &sig);
    writeln!(
        out,
        "U || V' safe: {}",
        sequences_independent(&independent_u, &conflicting_v, &entry, &sig)
    )
    .unwrap();
    for c in conflicts {
        writeln!(out, "  conflict: {c}").unwrap();
    }
    out
}

/// Figure 10: the relative read/write sets of the basic statement forms.
pub fn figure_10_relative_sets() -> String {
    use sil_analysis::sequences::{relative_read_set, relative_write_set};
    let sig = demo_signature(&["t", "a", "b"], &["x"]);
    let mut state = AbstractState::with_handles(["t", "a", "b"]);
    state
        .matrix
        .set("t", "a", PathSet::singleton(exact(Dir::Left, 1)));
    state
        .matrix
        .set("t", "b", PathSet::singleton(exact(Dir::Right, 1)));
    let live: std::collections::BTreeSet<String> = ["t".to_string()].into_iter().collect();
    let statements = [
        "a := nil",
        "a := new()",
        "a := b",
        "a := b.left",
        "a.left := b",
        "x := a.value",
        "a.value := x",
    ];
    let mut out = String::new();
    writeln!(out, "L = {{t}}   (t -> a = L1, t -> b = R1)").unwrap();
    for src in statements {
        let stmt = parse_stmt(src).unwrap();
        let r: Vec<String> = relative_read_set(&stmt, &sig, &state.matrix, &live)
            .iter()
            .map(|l| l.to_string())
            .collect();
        let w: Vec<String> = relative_write_set(&stmt, &sig, &state.matrix, &live)
            .iter()
            .map(|l| l.to_string())
            .collect();
        writeln!(out, "{src:<14} R^r = {{{}}}", r.join(", ")).unwrap();
        writeln!(out, "{:<14} W^r = {{{}}}", "", w.join(", ")).unwrap();
    }
    out
}

/// Convenience: the whole-program analysis of Figure 7, exposed for the
/// benchmarks.
pub fn analyze_add_and_reverse() -> sil_analysis::AnalysisResult {
    let (program, types) = frontend(testsrc::ADD_AND_REVERSE).unwrap();
    analyze_program(&program, &types)
}

/// Convenience used by the benches: the analyzer-level transfer of the
/// Figure 2 statements.
pub fn run_figure_2_transfers() -> AbstractState {
    let sig = demo_signature(&["a", "b", "c", "d", "e"], &[]);
    let mut warnings = Vec::new();
    let state = figure_2_initial_state();
    let s1 = parse_stmt("d := a.right").unwrap();
    let s2 = parse_stmt("e := d.left").unwrap();
    let state = transfer_stmt(&state, &s1, &sig, &mut warnings);
    transfer_stmt(&state, &s2, &sig, &mut warnings)
}

/// Convenience used by the benches: a full while-loop fixpoint.
pub fn run_figure_3_fixpoint() -> AbstractState {
    let (program, types) = frontend(testsrc::LEFTMOST_LOOP).unwrap();
    let analyzer = Analyzer::new(&program, &types);
    let sig = types.proc("main").unwrap();
    let mut warnings = Vec::new();
    let state = AbstractState::with_handles(["h", "l"]);
    let body = parse_stmt("begin l := h; while l.left <> nil do l := l.left end").unwrap();
    analyzer.transfer(&state, &body, sig, &mut warnings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_2_output_matches_paper_entries() {
        let out = figure_2_handle_assignments();
        assert!(out.contains("R1"), "{out}");
        assert!(out.contains("D+"), "{out}");
        assert!(out.contains("S?,D+?"), "{out}");
        assert!(out.contains("L3+"), "{out}");
    }

    #[test]
    fn figure_3_reaches_fixpoint() {
        let out = figure_3_while_loop();
        assert!(out.contains("fixpoint reached"), "{out}");
        assert!(out.contains("L+?"), "{out}");
    }

    #[test]
    fn figure_4_packs_something() {
        let out = figure_4_statement_packing();
        assert!(out.contains("||"), "{out}");
    }

    #[test]
    fn figure_5_lists_all_statement_forms() {
        let out = figure_5_read_write_sets();
        assert!(out.contains("a := new()"));
        assert!(out.contains("(a,left)"), "{out}");
        assert!(out.contains("(b,left)"), "aliasing must show up: {out}");
    }

    #[test]
    fn figure_6_reports_expected_interference() {
        let out = figure_6_interference_examples();
        assert!(out.contains("Example 1"));
        assert!(out.contains("(x,var)"), "{out}");
        assert!(out.contains("(c,value)"), "{out}");
    }

    #[test]
    fn figure_7_shows_unrelated_subtrees() {
        let out = figure_7_path_matrices();
        assert!(out.contains("pA"));
        assert!(out.contains("pB"));
        assert!(out.matches("unrelated: true").count() >= 3, "{out}");
    }

    #[test]
    fn figure_8_matches_paper_output() {
        let out = figure_8_parallel_program();
        assert!(out.contains("add_n(l, n) || add_n(r, n)"), "{out}");
        assert!(out.contains("h.left := r || h.right := l"), "{out}");
        assert!(out.contains("0 violation(s)"), "{out}");
    }

    #[test]
    fn figure_9_distinguishes_safe_and_unsafe() {
        let out = figure_9_sequence_interference();
        assert!(out.contains("safe (disjoint subtrees): true"), "{out}");
        assert!(out.contains("U || V' safe: false"), "{out}");
        assert!(out.contains("conflict:"), "{out}");
    }

    #[test]
    fn figure_10_shows_relative_locations() {
        let out = figure_10_relative_sets();
        assert!(
            out.contains("(t,left,L1)") || out.contains("(t,left,S)"),
            "{out}"
        );
        assert!(out.contains("W^r"), "{out}");
    }
}
