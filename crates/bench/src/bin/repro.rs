//! `repro` — regenerate every figure and experiment of the paper.
//!
//! ```text
//! repro                    print everything
//! repro --figure 7         print one figure (2..=10)
//! repro --experiment E2    print one experiment (E1..E4)
//! repro --list             list available artifacts
//! ```

use sil_bench::figures;
use sil_bench::speedups;

fn print_figure(n: u32) {
    let (title, body) = match n {
        2 => (
            "Figure 2 — path matrices for a chain of handle assignments",
            figures::figure_2_handle_assignments(),
        ),
        3 => (
            "Figure 3 — iterative approximation for the leftmost-node loop",
            figures::figure_3_while_loop(),
        ),
        4 => (
            "Figure 4 — packing sequential statements into a parallel statement",
            figures::figure_4_statement_packing(),
        ),
        5 => (
            "Figure 5 — read and write sets of the basic statements",
            figures::figure_5_read_write_sets(),
        ),
        6 => (
            "Figure 6 — worked interference examples",
            figures::figure_6_interference_examples(),
        ),
        7 => (
            "Figure 7 — path matrices pA, pB, pC of add_and_reverse",
            figures::figure_7_path_matrices(),
        ),
        8 => (
            "Figure 8 — automatically parallelized add_and_reverse",
            figures::figure_8_parallel_program(),
        ),
        9 => (
            "Figure 9 / §5.3 — statement-sequence interference",
            figures::figure_9_sequence_interference(),
        ),
        10 => (
            "Figure 10 — relative read/write sets",
            figures::figure_10_relative_sets(),
        ),
        other => {
            eprintln!("unknown figure {other}; the paper's figures are 2..=10");
            std::process::exit(1);
        }
    };
    println!("==================================================================");
    println!("{title}");
    println!("==================================================================");
    println!("{body}");
}

fn print_experiment(id: &str) {
    println!("==================================================================");
    match id.to_ascii_uppercase().as_str() {
        "E1" | "BISORT" => {
            println!("E1 — adaptive bitonic sort (bisort): detected parallelism");
            println!("==================================================================");
            for row in speedups::bisort_rows(&[6, 8, 10, 12]) {
                println!("{row}");
            }
        }
        "E2" | "SPEEDUP" => {
            println!("E2 — add_and_reverse: cost-model work/span and Brent speedups");
            println!("==================================================================");
            for row in speedups::speedup_rows(&[6, 8, 10, 12, 14]) {
                println!("{}", row.render());
            }
        }
        "E3" | "ANALYSIS" => {
            println!("E3 — analysis scalability on generated programs");
            println!("==================================================================");
            for row in speedups::analysis_scaling_rows(&[50, 100, 200, 400, 800]) {
                println!("{row}");
            }
        }
        "E4" | "DEBUG" => {
            println!("E4 — debugging parallel programs (static + dynamic checks)");
            println!("==================================================================");
            println!("{}", speedups::debug_experiment());
        }
        other => {
            eprintln!("unknown experiment `{other}`; known: E1, E2, E3, E4");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [] => {
            for n in 2..=10 {
                print_figure(n);
            }
            for e in ["E1", "E2", "E3", "E4"] {
                print_experiment(e);
            }
        }
        [flag] if flag == "--list" => {
            println!("figures:     2 3 4 5 6 7 8 9 10");
            println!("experiments: E1 (bisort) E2 (speedup) E3 (analysis) E4 (debug)");
        }
        [flag, n] if flag == "--figure" => match n.parse::<u32>() {
            Ok(n) => print_figure(n),
            Err(_) => {
                eprintln!("--figure expects a number between 2 and 10");
                std::process::exit(1);
            }
        },
        [flag, id] if flag == "--experiment" => print_experiment(id),
        _ => {
            eprintln!("usage: repro [--list | --figure N | --experiment ID]");
            std::process::exit(1);
        }
    }
}
