//! `silbench` — an open-loop load generator for the `sild` daemon.
//!
//! The criterion bench (`benches/engine_service.rs`) is closed-loop: each
//! client waits for its response before sending again, so a saturated
//! server throttles its own offered load and queueing collapse is
//! invisible.  `silbench` decouples arrivals from completions: every
//! connection sends requests on a Poisson schedule (exponential gaps)
//! regardless of what has come back, which is how latency actually behaves
//! when demand exceeds capacity.
//!
//! ```text
//! silbench                 full sweep, writes BENCH_engine_service.json
//! silbench --smoke         short sweep (CI): ~2s per daemon
//! silbench --out <path>    write the JSON artifact elsewhere
//! ```
//!
//! Per (server kind × offered load) point: N connections each run one
//! writer thread (Poisson arrivals, Zipf-ranked program selection over the
//! 64-program corpus) and one reader thread (pairs responses FIFO — the
//! protocol answers in order per connection — and records client-observed
//! latency into a silobs histogram).  The artifact carries throughput vs
//! offered load and p50/p90/p99/p999 per point, machine-readable via the
//! engine's own JSON module; the binary re-parses what it wrote and fails
//! if the quantiles are missing or zero, so a green run certifies the
//! artifact.
//!
//! Each point also measures *schedule slip* — how late every request left
//! relative to its Poisson-scheduled arrival.  Validation fails when the
//! p99 slip exceeds one mean inter-arrival gap: past that point the
//! writers are effectively closed-loop and the offered load is a fiction.
//!
//! The corpus is primed before measuring (warm-cache regime: the server,
//! not the analysis, is under test), matching the closed-loop bench.

use rand::distributions::{Distribution, Zipf};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sil_engine::service::{
    Json, RemoteService, Request, Response, Server, ServerKind, ServerOptions, Service,
    ShardedService,
};
use sil_engine::{Addr, EngineConfig};
use sil_workloads::programs::Workload;
use silobs::{Histogram, HistogramSummary};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

const USAGE: &str = "\
usage: silbench [--smoke] [--out <path>]

Open-loop offered-load sweep against both sild serving strategies
(threaded and async), emitting a machine-readable artifact with
throughput-vs-load and latency quantiles per point.

options:
  --smoke       short sweep for CI (~2s of measurement per daemon)
  --out <path>  artifact path (default: BENCH_engine_service.json)
  -h, --help    this message
";

/// One sweep configuration: the offered loads (requests/sec across all
/// connections), how long each point runs, and the connection fan-out.
struct Sweep {
    connections: usize,
    point_duration: Duration,
    offered_loads: Vec<f64>,
}

impl Sweep {
    fn full() -> Sweep {
        Sweep {
            connections: 32,
            point_duration: Duration::from_secs(5),
            offered_loads: vec![500.0, 2000.0, 8000.0],
        }
    }

    fn smoke() -> Sweep {
        Sweep {
            connections: 4,
            point_duration: Duration::from_secs(1),
            offered_loads: vec![200.0, 800.0],
        }
    }
}

/// 64 distinct real programs (every workload at several sizes), ranked so
/// Zipf rank 1 is the hottest — the same corpus as the closed-loop bench.
fn program_corpus() -> Vec<String> {
    let mut corpus = Vec::new();
    for size in 3..=9u32 {
        for workload in Workload::ALL {
            corpus.push(workload.source(size));
            if corpus.len() == 64 {
                return corpus;
            }
        }
    }
    corpus
}

fn temp_socket(name: &str) -> Addr {
    let path = std::env::temp_dir().join(format!("silbench-{}-{name}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    Addr::Unix(path)
}

/// An exponential inter-arrival gap with the given mean, in seconds (the
/// Poisson process driving each connection's writer).
fn exp_gap(rng: &mut StdRng, mean_secs: f64) -> f64 {
    // 53 uniform bits offset off zero so ln() stays finite.
    let uniform = ((rng.gen_u64() >> 11) as f64 + 0.5) / (1u64 << 53) as f64;
    -uniform.ln() * mean_secs
}

/// What one (kind × offered load) point measured.
struct Point {
    offered_rps: f64,
    sent: u64,
    completed: u64,
    wall_secs: f64,
    latency_us: HistogramSummary,
    /// Per-request schedule slip: how late each write left relative to
    /// its Poisson-scheduled arrival time.  When slip approaches the mean
    /// inter-arrival gap the writers have silently degraded to
    /// closed-loop and "achieved" throughput stops meaning offered load.
    slip_us: HistogramSummary,
    /// One mean inter-arrival gap per connection, in µs — the budget the
    /// slip is judged against.
    mean_gap_us: f64,
    /// The daemon's own view of this point: the worst per-interval
    /// `server.serve_us` p99 the flight recorder sampled while the point
    /// ran.  Client latency minus this is time spent on the wire and in
    /// socket queues.
    server_p99_us: u64,
}

impl Point {
    fn achieved_rps(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.completed as f64 / self.wall_secs
        } else {
            0.0
        }
    }
}

/// Drive one offered-load point against a running daemon: `connections`
/// writer/reader thread pairs over their own sockets, Poisson arrivals,
/// Zipf program selection, latencies into one shared histogram.
fn run_point(socket: &Path, lines: &Arc<Vec<String>>, sweep: &Sweep, offered_rps: f64) -> Point {
    let hist = Histogram::new();
    let slip_hist = Histogram::new();
    let per_conn_mean_gap = sweep.connections as f64 / offered_rps;
    let started = Instant::now();
    let deadline = started + sweep.point_duration;

    let (sent, completed) = std::thread::scope(|scope| {
        let mut writers = Vec::new();
        let mut readers = Vec::new();
        for conn in 0..sweep.connections {
            let stream = UnixStream::connect(socket).expect("silbench: connect failed");
            let reader_stream = stream.try_clone().expect("silbench: clone failed");
            let (tx, rx) = mpsc::channel::<u64>();
            let lines = lines.clone();
            let hist = &hist;
            let slip_hist = &slip_hist;

            writers.push(scope.spawn(move || {
                let mut stream = stream;
                // Seed off the load level and connection so every run of
                // the same sweep offers the same arrival process.
                let seed = 1989 ^ ((offered_rps as u64) << 8) ^ conn as u64;
                let mut rng = StdRng::seed_from_u64(seed);
                let zipf = Zipf::new(lines.len() as u64, 1.2).unwrap();
                let mut offset = 0.0f64;
                let mut sent = 0u64;
                loop {
                    offset += exp_gap(&mut rng, per_conn_mean_gap);
                    let target = started + Duration::from_secs_f64(offset);
                    if target > deadline {
                        break;
                    }
                    let now = Instant::now();
                    if target > now {
                        std::thread::sleep(target - now);
                    }
                    let rank = zipf.sample(&mut rng) as usize - 1;
                    // Timestamp the arrival before writing: if the send
                    // blocks on backpressure, that wait is part of the
                    // latency an open-loop client experiences.
                    if tx.send(silobs::ticks()).is_err() {
                        break;
                    }
                    if stream.write_all(lines[rank].as_bytes()).is_err() {
                        break;
                    }
                    // Schedule slip: how far behind its Poisson arrival
                    // this request actually left the socket.  A writer
                    // that keeps falling behind is closed-loop in
                    // disguise, and the artifact validation rejects it.
                    let slip = Instant::now().saturating_duration_since(target);
                    slip_hist.record(slip.as_micros() as u64);
                    sent += 1;
                }
                sent
            }));

            readers.push(scope.spawn(move || {
                let mut reader = BufReader::new(reader_stream);
                let mut line = String::new();
                let mut completed = 0u64;
                // Responses come back in send order on each connection, so
                // pairing is FIFO against the writer's timestamps.
                while let Ok(sent_at) = rx.recv() {
                    line.clear();
                    match reader.read_line(&mut line) {
                        Ok(0) | Err(_) => break,
                        Ok(_) => {}
                    }
                    assert!(
                        !line.contains("\"type\":\"error\""),
                        "silbench: daemon answered an error: {line}"
                    );
                    hist.record(silobs::ticks().saturating_sub(sent_at));
                    completed += 1;
                }
                completed
            }));
        }
        let sent: u64 = writers.into_iter().map(|w| w.join().unwrap()).sum();
        let completed: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
        (sent, completed)
    });

    Point {
        offered_rps,
        sent,
        completed,
        wall_secs: started.elapsed().as_secs_f64(),
        latency_us: HistogramSummary::of(&hist.snapshot()),
        slip_us: HistogramSummary::of(&slip_hist.snapshot()),
        mean_gap_us: per_conn_mean_gap * 1e6,
        server_p99_us: 0,
    }
}

/// The daemon's recorder samples every [`RECORDER_INTERVAL_MS`] while a
/// point runs; tight enough that a smoke point (1s) still spans several
/// intervals.
const RECORDER_INTERVAL_MS: u64 = 250;

/// The worst per-interval `server.serve_us` p99 the daemon recorded since
/// tick `since` — daemon and benchmark share a process, so recorder
/// timestamps and `silobs::ticks()` are the same clock.
fn server_p99_since(addr: &str, since: u64) -> u64 {
    let conn = match RemoteService::connect(addr) {
        Ok(conn) => conn,
        Err(_) => return 0,
    };
    let samples = match conn.service_metrics_history() {
        Ok(samples) => samples,
        Err(_) => return 0,
    };
    samples
        .iter()
        .filter(|sample| sample.at_us >= since)
        .filter_map(|sample| sample.metrics.histogram("server.serve_us"))
        .filter(|serve| serve.count > 0)
        .map(|serve| serve.p99)
        .max()
        .unwrap_or(0)
}

/// Run the whole sweep against one serving strategy: fresh daemon, primed
/// corpus, ascending offered loads over the same warm caches.
fn run_server(kind: ServerKind, sweep: &Sweep, corpus: &[String]) -> (String, Vec<Point>) {
    let service = Arc::new(ShardedService::new(4, EngineConfig::default()));
    let server = Server::bind_with(
        &temp_socket(kind.name()),
        service,
        ServerOptions {
            kind,
            workers: 0,
            recorder_interval_ms: RECORDER_INTERVAL_MS,
            ..ServerOptions::default()
        },
    )
    .expect("silbench: bind failed");
    // On platforms without silio support the async request falls back to
    // threaded; the artifact records what actually served.
    let actual = server.kind().name().to_string();
    let handle = server.spawn();
    let socket = match handle.addr() {
        Addr::Unix(path) => path.clone(),
        Addr::Tcp(_) => unreachable!("silbench binds unix sockets"),
    };

    let primer = RemoteService::connect(&handle.addr().to_string()).unwrap();
    for src in corpus {
        match primer.call(Request::analyze(src.clone())) {
            Response::Analyzed { .. } => {}
            other => panic!("silbench: prime failed: {other:?}"),
        }
    }
    drop(primer);

    // Requests are pre-encoded once; the writer hot loop does no JSON work.
    let lines: Arc<Vec<String>> = Arc::new(
        corpus
            .iter()
            .map(|src| {
                let mut line = Request::analyze(src.clone()).encode();
                line.push('\n');
                line
            })
            .collect(),
    );

    let addr = handle.addr().to_string();
    let points: Vec<Point> = sweep
        .offered_loads
        .iter()
        .map(|&offered| {
            let since = silobs::ticks();
            let mut point = run_point(&socket, &lines, sweep, offered);
            // Give the recorder one more tick so the point's final
            // interval is sampled before we read the history.
            std::thread::sleep(Duration::from_millis(RECORDER_INTERVAL_MS * 2));
            point.server_p99_us = server_p99_since(&addr, since);
            point
        })
        .collect();
    handle.shutdown();
    (actual, points)
}

fn summary_json(summary: &HistogramSummary) -> Json {
    Json::obj(vec![
        ("count", Json::Int(summary.count as i64)),
        ("min", Json::Int(summary.min as i64)),
        ("max", Json::Int(summary.max as i64)),
        ("mean", Json::Float(summary.mean())),
        ("p50", Json::Int(summary.p50 as i64)),
        ("p90", Json::Int(summary.p90 as i64)),
        ("p99", Json::Int(summary.p99 as i64)),
        ("p999", Json::Int(summary.p999 as i64)),
    ])
}

fn artifact_json(sweep: &Sweep, corpus_len: usize, servers: &[(String, Vec<Point>)]) -> Json {
    Json::obj(vec![
        ("bench", Json::Str("engine_service".to_string())),
        ("mode", Json::Str("open-loop".to_string())),
        ("connections", Json::Int(sweep.connections as i64)),
        (
            "point_duration_secs",
            Json::Float(sweep.point_duration.as_secs_f64()),
        ),
        ("corpus", Json::Int(corpus_len as i64)),
        ("zipf_s", Json::Float(1.2)),
        (
            "servers",
            Json::Arr(
                servers
                    .iter()
                    .map(|(kind, points)| {
                        Json::obj(vec![
                            ("kind", Json::Str(kind.clone())),
                            (
                                "points",
                                Json::Arr(
                                    points
                                        .iter()
                                        .map(|p| {
                                            Json::obj(vec![
                                                ("offered_rps", Json::Float(p.offered_rps)),
                                                ("achieved_rps", Json::Float(p.achieved_rps())),
                                                ("sent", Json::Int(p.sent as i64)),
                                                ("completed", Json::Int(p.completed as i64)),
                                                ("wall_secs", Json::Float(p.wall_secs)),
                                                ("latency_us", summary_json(&p.latency_us)),
                                                ("slip_us", summary_json(&p.slip_us)),
                                                ("mean_gap_us", Json::Float(p.mean_gap_us)),
                                                (
                                                    "server_p99_us",
                                                    Json::Int(p.server_p99_us as i64),
                                                ),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn field<'a>(value: &'a Json, key: &str) -> Result<&'a Json, String> {
    value
        .as_obj()
        .ok_or_else(|| format!("expected an object around {key:?}"))?
        .iter()
        .find(|(name, _)| name == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing {key:?}"))
}

/// Re-parse the artifact with the engine's own JSON module and check the
/// quantiles are present and nonzero — the property CI asserts.
fn validate_artifact(path: &Path) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read artifact: {e}"))?;
    let json = Json::parse(&text).map_err(|e| format!("artifact does not parse: {e}"))?;
    let servers = field(&json, "servers")?
        .as_arr()
        .ok_or("\"servers\" must be an array")?;
    if servers.is_empty() {
        return Err("no servers measured".to_string());
    }
    for server in servers {
        let kind = field(server, "kind")?
            .as_str()
            .ok_or("\"kind\" must be a string")?
            .to_string();
        let points = field(server, "points")?
            .as_arr()
            .ok_or("\"points\" must be an array")?;
        if points.is_empty() {
            return Err(format!("{kind}: no load points"));
        }
        for point in points {
            let latency = field(point, "latency_us")?;
            for quantile in ["p50", "p99", "p999"] {
                let value = field(latency, quantile)?
                    .as_u64()
                    .ok_or_else(|| format!("{kind}: {quantile} must be a count"))?;
                if value == 0 {
                    return Err(format!("{kind}: {quantile} is zero"));
                }
            }
            let completed = field(point, "completed")?
                .as_u64()
                .ok_or("\"completed\" must be a count")?;
            if completed == 0 {
                return Err(format!("{kind}: a load point completed nothing"));
            }
            // Open-loop integrity: if the p99 schedule slip exceeds one
            // mean inter-arrival gap, the writers were sending late more
            // often than on time — the run was closed-loop in practice
            // and its latency numbers do not mean what the artifact says.
            let slip_p99 = field(field(point, "slip_us")?, "p99")?
                .as_u64()
                .ok_or_else(|| format!("{kind}: slip p99 must be a count"))?;
            let mean_gap_us = match field(point, "mean_gap_us")? {
                Json::Float(gap) => *gap,
                Json::Int(gap) => *gap as f64,
                _ => return Err(format!("{kind}: mean_gap_us must be a number")),
            };
            if slip_p99 as f64 > mean_gap_us {
                return Err(format!(
                    "{kind}: schedule slip p99 ({slip_p99} µs) exceeds the mean \
                     inter-arrival gap ({mean_gap_us:.0} µs) — the sweep was not open-loop"
                ));
            }
            // The daemon-side view must exist: a zero means the flight
            // recorder never sampled a serving interval during the point,
            // and the client/server latency split the artifact promises
            // is fiction.
            let server_p99 = field(point, "server_p99_us")?
                .as_u64()
                .ok_or_else(|| format!("{kind}: server_p99_us must be a count"))?;
            if server_p99 == 0 {
                return Err(format!(
                    "{kind}: server_p99_us is zero — the daemon's flight recorder \
                     saw no serving interval during the point"
                ));
            }
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out = PathBuf::from("BENCH_engine_service.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(path) => out = PathBuf::from(path),
                    None => {
                        eprintln!("silbench: --out needs a path\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("silbench: unknown option {other}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    let sweep = if smoke { Sweep::smoke() } else { Sweep::full() };
    let corpus = program_corpus();
    println!(
        "silbench: open-loop sweep — {} connections, {:?} per point, loads {:?} req/s, \
         {}-program Zipf corpus",
        sweep.connections,
        sweep.point_duration,
        sweep.offered_loads,
        corpus.len(),
    );

    let mut servers = Vec::new();
    for kind in [ServerKind::Threaded, ServerKind::Async] {
        let (actual, points) = run_server(kind, &sweep, &corpus);
        println!("server: {actual}");
        println!(
            "  {:>12} {:>12} {:>8} {:>10} {:>9} {:>9} {:>9} {:>11} {:>12} {:>12}",
            "offered r/s",
            "achieved r/s",
            "sent",
            "p50 µs",
            "p90 µs",
            "p99 µs",
            "p999 µs",
            "srv p99 µs",
            "slip p99 µs",
            "slip max µs"
        );
        for p in &points {
            println!(
                "  {:>12.0} {:>12.0} {:>8} {:>10} {:>9} {:>9} {:>9} {:>11} {:>12} {:>12}",
                p.offered_rps,
                p.achieved_rps(),
                p.sent,
                p.latency_us.p50,
                p.latency_us.p90,
                p.latency_us.p99,
                p.latency_us.p999,
                p.server_p99_us,
                p.slip_us.p99,
                p.slip_us.max,
            );
        }
        servers.push((actual, points));
    }

    let artifact = artifact_json(&sweep, corpus.len(), &servers);
    if let Err(e) = std::fs::write(&out, artifact.encode() + "\n") {
        eprintln!("silbench: cannot write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    match validate_artifact(&out) {
        Ok(()) => {
            println!("silbench: wrote {} (validated)", out.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("silbench: artifact validation failed: {e}");
            ExitCode::FAILURE
        }
    }
}
