//! The SIL interpreter.
//!
//! One interpreter executes both sequential and parallel SIL.  In
//! [`ExecMode::Sequential`] the arms of a parallel statement run one after
//! another (each starting from the statement's entry frame, as the parallel
//! semantics prescribe) — this mode is deterministic, can log accesses for
//! the [`crate::race`] detector, and accounts work and span.  In
//! [`ExecMode::Rayon`] the arms really run concurrently on the host's cores
//! via rayon's work-stealing scheduler (see [`crate::parallel`]).

use crate::costmodel::Cost;
use crate::error::RuntimeError;
use crate::race::{Access, AccessLog, RaceDetector, RaceReport, Target};
use crate::store::{NodeId, Store};
use crate::value::{Frame, Value};
use parking_lot::Mutex;
use rayon::prelude::*;
use sil_lang::ast::*;
use sil_lang::pretty::pretty_stmt;
use sil_lang::types::ProgramTypes;

/// How parallel statements are executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Deterministic in-order execution of parallel arms.
    Sequential,
    /// Real threads via rayon.
    Rayon,
}

/// Interpreter configuration.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Capacity of the node store.
    pub store_capacity: usize,
    /// Maximum call-stack depth.
    pub recursion_limit: usize,
    /// Log accesses inside parallel statements and detect races
    /// (sequential mode only).
    pub detect_races: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            store_capacity: crate::store::DEFAULT_CAPACITY,
            recursion_limit: 100_000,
            detect_races: false,
        }
    }
}

/// The result of running a program.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Work/span cost of the whole run.
    pub cost: Cost,
    /// The final frame of `main` (handles in it can be snapshotted through
    /// the interpreter's store).
    pub main_frame: Frame,
    /// Races detected (only when `detect_races` was enabled).
    pub races: Vec<RaceReport>,
    /// Number of nodes allocated.
    pub allocated_nodes: usize,
}

/// The SIL interpreter.
pub struct Interpreter<'a> {
    program: &'a Program,
    types: &'a ProgramTypes,
    pub config: RunConfig,
    mode: ExecMode,
    store: Store,
    races: Mutex<Vec<RaceReport>>,
}

impl<'a> Interpreter<'a> {
    /// A sequential interpreter with the default configuration.
    pub fn new(program: &'a Program, types: &'a ProgramTypes) -> Interpreter<'a> {
        Interpreter::with_config(program, types, RunConfig::default())
    }

    /// A sequential interpreter with a custom configuration.
    pub fn with_config(
        program: &'a Program,
        types: &'a ProgramTypes,
        config: RunConfig,
    ) -> Interpreter<'a> {
        Interpreter::with_mode(program, types, config, ExecMode::Sequential)
    }

    /// An interpreter with an explicit execution mode (used by
    /// [`crate::parallel::ParallelExecutor`]).
    pub fn with_mode(
        program: &'a Program,
        types: &'a ProgramTypes,
        config: RunConfig,
        mode: ExecMode,
    ) -> Interpreter<'a> {
        let store = Store::with_capacity(config.store_capacity);
        Interpreter {
            program,
            types,
            config,
            mode,
            store,
            races: Mutex::new(Vec::new()),
        }
    }

    /// The node store (for snapshots after a run).
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Run the program from `main`.
    pub fn run(&mut self) -> Result<Outcome, RuntimeError> {
        // start from a fresh store and race log on every run
        self.store = Store::with_capacity(self.config.store_capacity);
        self.races.lock().clear();
        let main = self.program.main().ok_or(RuntimeError::NoMain)?;
        let mut frame = Frame::new();
        let mut log = None;
        let cost = self.exec_stmt(&main.body, &mut frame, 0, &mut log)?;
        Ok(Outcome {
            cost,
            main_frame: frame,
            races: self.races.lock().clone(),
            allocated_nodes: self.store.len(),
        })
    }

    // ---- statements -------------------------------------------------------

    fn exec_stmt(
        &self,
        stmt: &Stmt,
        frame: &mut Frame,
        depth: usize,
        log: &mut Option<AccessLog>,
    ) -> Result<Cost, RuntimeError> {
        match stmt {
            Stmt::Block { stmts, .. } => {
                let mut cost = Cost::ZERO;
                for s in stmts {
                    cost = cost.then(self.exec_stmt(s, frame, depth, log)?);
                }
                Ok(cost)
            }
            Stmt::Assign { lhs, rhs, .. } => self.exec_assign(lhs, rhs, frame, depth, log),
            Stmt::Call { proc, args, .. } => {
                let arg_values = self.eval_args(args, frame, log)?;
                let (_, cost) = self.call(proc, arg_values, depth, log)?;
                Ok(Cost::UNIT.then(cost))
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                let taken = self.eval_bool(cond, frame, log)?;
                let branch_cost = if taken {
                    self.exec_stmt(then_branch, frame, depth, log)?
                } else if let Some(e) = else_branch {
                    self.exec_stmt(e, frame, depth, log)?
                } else {
                    Cost::ZERO
                };
                Ok(Cost::UNIT.then(branch_cost))
            }
            Stmt::While { cond, body, .. } => {
                let mut cost = Cost::ZERO;
                loop {
                    cost = cost.then(Cost::UNIT);
                    if !self.eval_bool(cond, frame, log)? {
                        break;
                    }
                    cost = cost.then(self.exec_stmt(body, frame, depth, log)?);
                }
                Ok(cost)
            }
            Stmt::Par { arms, .. } => self.exec_par(stmt, arms, frame, depth, log),
        }
    }

    fn exec_par(
        &self,
        whole: &Stmt,
        arms: &[Stmt],
        frame: &mut Frame,
        depth: usize,
        log: &mut Option<AccessLog>,
    ) -> Result<Cost, RuntimeError> {
        let base = frame.clone();
        let results: Vec<Result<(Frame, Cost, AccessLog), RuntimeError>> = match self.mode {
            ExecMode::Rayon => arms
                .par_iter()
                .map(|arm| {
                    let mut arm_frame = base.clone();
                    let mut arm_log = None;
                    let cost = self.exec_stmt(arm, &mut arm_frame, depth, &mut arm_log)?;
                    Ok((arm_frame, cost, AccessLog::new()))
                })
                .collect(),
            ExecMode::Sequential => arms
                .iter()
                .map(|arm| {
                    let mut arm_frame = base.clone();
                    let mut arm_log = if self.config.detect_races {
                        Some(AccessLog::new())
                    } else {
                        None
                    };
                    let cost = self.exec_stmt(arm, &mut arm_frame, depth, &mut arm_log)?;
                    Ok((arm_frame, cost, arm_log.unwrap_or_default()))
                })
                .collect(),
        };

        let mut frames = Vec::with_capacity(arms.len());
        let mut logs = Vec::with_capacity(arms.len());
        let mut cost = Cost::ZERO;
        for r in results {
            let (f, c, l) = r?;
            frames.push(f);
            logs.push(l);
            cost = cost.alongside(c);
        }
        if self.config.detect_races && self.mode == ExecMode::Sequential {
            let races = RaceDetector::check(&logs, &pretty_stmt(whole));
            if !races.is_empty() {
                self.races.lock().extend(races);
            }
            if let Some(parent) = log.as_mut() {
                for l in logs {
                    parent.extend(l);
                }
            }
        }
        frame.merge_parallel(&base, &frames);
        // The parallel statement itself is free: its work is its arms' work
        // and its span is the longest arm, so a parallelized program has
        // exactly the same work as its sequential original.
        Ok(cost)
    }

    fn exec_assign(
        &self,
        lhs: &LValue,
        rhs: &Rhs,
        frame: &mut Frame,
        depth: usize,
        log: &mut Option<AccessLog>,
    ) -> Result<Cost, RuntimeError> {
        let (value, rhs_cost) = match rhs {
            Rhs::New => (Value::Handle(Some(self.store.alloc()?)), Cost::ZERO),
            Rhs::Expr(e) => (self.eval_expr(e, frame, log)?, Cost::ZERO),
            Rhs::Call(func, args) => {
                let arg_values = self.eval_args(args, frame, log)?;
                let (result, cost) = self.call(func, arg_values, depth, log)?;
                let value = result.ok_or_else(|| RuntimeError::TypeMismatch {
                    context: format!("{func} returned no value"),
                })?;
                (value, cost)
            }
        };
        match lhs {
            LValue::Var(name) => {
                self.log_access(log, Access::write(Target::Var(name.clone())));
                frame.set(name, value);
            }
            LValue::Field(path, field) => {
                let id = self.eval_path_to_node(path, frame, log)?;
                let child = value
                    .as_handle()
                    .ok_or_else(|| RuntimeError::TypeMismatch {
                        context: format!("{path}.{field} := <int>"),
                    })?;
                self.log_access(log, Access::write(Target::NodeField(id, *field)));
                self.store.set_child(id, *field, child);
            }
            LValue::Value(path) => {
                let id = self.eval_path_to_node(path, frame, log)?;
                let int = value.as_int().ok_or_else(|| RuntimeError::TypeMismatch {
                    context: format!("{path}.value := <handle>"),
                })?;
                self.log_access(log, Access::write(Target::NodeValue(id)));
                self.store.set_value(id, int);
            }
        }
        Ok(Cost::UNIT.then(rhs_cost))
    }

    // ---- calls ------------------------------------------------------------

    fn eval_args(
        &self,
        args: &[Expr],
        frame: &mut Frame,
        log: &mut Option<AccessLog>,
    ) -> Result<Vec<Value>, RuntimeError> {
        args.iter().map(|a| self.eval_expr(a, frame, log)).collect()
    }

    /// Call a procedure or function.  Returns the returned value (for
    /// functions) and the cost of the body.
    fn call(
        &self,
        name: &str,
        args: Vec<Value>,
        depth: usize,
        log: &mut Option<AccessLog>,
    ) -> Result<(Option<Value>, Cost), RuntimeError> {
        if depth + 1 > self.config.recursion_limit {
            return Err(RuntimeError::RecursionLimit {
                limit: self.config.recursion_limit,
            });
        }
        let proc = self
            .program
            .procedure(name)
            .ok_or_else(|| RuntimeError::UnknownProcedure {
                name: name.to_string(),
            })?;
        if proc.params.len() != args.len() {
            return Err(RuntimeError::ArityMismatch {
                name: name.to_string(),
                expected: proc.params.len(),
                actual: args.len(),
            });
        }
        let mut frame = Frame::new();
        for (decl, value) in proc.params.iter().zip(args) {
            frame.set(&decl.name, value);
        }
        // When the caller is being access-logged (race detection inside a
        // parallel arm), the callee's *heap* accesses matter too — but its
        // variable accesses are private to this invocation's frame and can
        // never race, so they are filtered out before merging the logs.
        let mut callee_log = if log.is_some() {
            Some(AccessLog::new())
        } else {
            None
        };
        let cost = self.exec_stmt(&proc.body, &mut frame, depth + 1, &mut callee_log)?;
        if let (Some(parent), Some(inner)) = (log.as_mut(), callee_log) {
            for access in inner.accesses {
                if !matches!(access.target, Target::Var(_)) {
                    parent.record(access);
                }
            }
        }
        let result = match (&proc.return_type, &proc.return_var) {
            (Some(_), Some(var)) => Some(
                frame
                    .get(var)
                    .ok_or_else(|| RuntimeError::UninitializedVariable { name: var.clone() })?,
            ),
            _ => None,
        };
        Ok((result, cost))
    }

    // ---- expressions ------------------------------------------------------

    fn eval_bool(
        &self,
        expr: &Expr,
        frame: &mut Frame,
        log: &mut Option<AccessLog>,
    ) -> Result<bool, RuntimeError> {
        match self.eval_expr(expr, frame, log)? {
            Value::Int(n) => Ok(n != 0),
            Value::Handle(_) => Err(RuntimeError::TypeMismatch {
                context: "handle used as a condition".to_string(),
            }),
        }
    }

    fn eval_expr(
        &self,
        expr: &Expr,
        frame: &mut Frame,
        log: &mut Option<AccessLog>,
    ) -> Result<Value, RuntimeError> {
        match expr {
            Expr::Int(n) => Ok(Value::Int(*n)),
            Expr::Nil => Ok(Value::nil()),
            Expr::Path(path) => self.eval_path(path, frame, log),
            Expr::Value(path) => {
                let id = self.eval_path_to_node(path, frame, log)?;
                self.log_access(log, Access::read(Target::NodeValue(id)));
                Ok(Value::Int(self.store.value(id)))
            }
            Expr::Unary(op, inner) => {
                let v = self.eval_expr(inner, frame, log)?;
                match op {
                    UnOp::Neg => Ok(Value::Int(-self.expect_int(&v, "unary -")?)),
                    UnOp::Not => Ok(Value::Int(if self.expect_int(&v, "not")? == 0 {
                        1
                    } else {
                        0
                    })),
                }
            }
            Expr::Binary(op, lhs, rhs) => {
                let l = self.eval_expr(lhs, frame, log)?;
                let r = self.eval_expr(rhs, frame, log)?;
                self.eval_binop(*op, l, r)
            }
        }
    }

    fn eval_binop(&self, op: BinOp, l: Value, r: Value) -> Result<Value, RuntimeError> {
        use BinOp::*;
        match op {
            Eq | Ne => {
                let equal = match (l, r) {
                    (Value::Int(a), Value::Int(b)) => a == b,
                    (Value::Handle(a), Value::Handle(b)) => a == b,
                    _ => {
                        return Err(RuntimeError::TypeMismatch {
                            context: "comparison of int with handle".to_string(),
                        })
                    }
                };
                let result = if op == Eq { equal } else { !equal };
                Ok(Value::Int(result as i64))
            }
            Lt | Le | Gt | Ge => {
                let a = self.expect_int(&l, "ordering")?;
                let b = self.expect_int(&r, "ordering")?;
                let result = match op {
                    Lt => a < b,
                    Le => a <= b,
                    Gt => a > b,
                    Ge => a >= b,
                    _ => unreachable!(),
                };
                Ok(Value::Int(result as i64))
            }
            And | Or => {
                let a = self.expect_int(&l, "logical")? != 0;
                let b = self.expect_int(&r, "logical")? != 0;
                let result = if op == And { a && b } else { a || b };
                Ok(Value::Int(result as i64))
            }
            Add | Sub | Mul | Div => {
                let a = self.expect_int(&l, "arithmetic")?;
                let b = self.expect_int(&r, "arithmetic")?;
                let result = match op {
                    Add => a.wrapping_add(b),
                    Sub => a.wrapping_sub(b),
                    Mul => a.wrapping_mul(b),
                    Div => {
                        if b == 0 {
                            return Err(RuntimeError::DivisionByZero);
                        }
                        a.wrapping_div(b)
                    }
                    _ => unreachable!(),
                };
                Ok(Value::Int(result))
            }
        }
    }

    fn expect_int(&self, v: &Value, context: &str) -> Result<i64, RuntimeError> {
        v.as_int().ok_or_else(|| RuntimeError::TypeMismatch {
            context: context.to_string(),
        })
    }

    /// Evaluate a handle path to a value (following zero or more field
    /// loads).
    fn eval_path(
        &self,
        path: &HandlePath,
        frame: &mut Frame,
        log: &mut Option<AccessLog>,
    ) -> Result<Value, RuntimeError> {
        self.log_access(log, Access::read(Target::Var(path.base.clone())));
        let mut current =
            frame
                .get(&path.base)
                .ok_or_else(|| RuntimeError::UninitializedVariable {
                    name: path.base.clone(),
                })?;
        for field in &path.fields {
            let id = current
                .as_handle()
                .ok_or_else(|| RuntimeError::TypeMismatch {
                    context: path.to_string(),
                })?
                .ok_or_else(|| RuntimeError::NilDereference {
                    context: path.to_string(),
                })?;
            self.log_access(log, Access::read(Target::NodeField(id, *field)));
            current = Value::Handle(self.store.child(id, *field));
        }
        Ok(current)
    }

    /// Evaluate a handle path and require it to name an actual node.
    fn eval_path_to_node(
        &self,
        path: &HandlePath,
        frame: &mut Frame,
        log: &mut Option<AccessLog>,
    ) -> Result<NodeId, RuntimeError> {
        match self.eval_path(path, frame, log)? {
            Value::Handle(Some(id)) => Ok(id),
            Value::Handle(None) => Err(RuntimeError::NilDereference {
                context: path.to_string(),
            }),
            Value::Int(_) => Err(RuntimeError::TypeMismatch {
                context: path.to_string(),
            }),
        }
    }

    fn log_access(&self, log: &mut Option<AccessLog>, access: Access) {
        if let Some(log) = log.as_mut() {
            log.record(access);
        }
    }

    /// Snapshot the structure reachable from a handle variable of the final
    /// `main` frame.
    pub fn snapshot_of(&self, outcome: &Outcome, var: &str) -> Option<crate::store::NodeSnapshot> {
        match outcome.main_frame.get(var) {
            Some(Value::Handle(h)) => Some(self.store.snapshot(h)),
            _ => None,
        }
    }

    /// The types table this interpreter was built with (exposed for
    /// completeness; execution itself is untyped).
    pub fn types(&self) -> &ProgramTypes {
        self.types
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sil_lang::frontend;

    fn run_src(src: &str) -> (Outcome, Store) {
        let (program, types) = frontend(src).unwrap();
        let mut interp = Interpreter::new(&program, &types);
        let outcome = interp.run().unwrap();
        let store = std::mem::take(&mut interp.store);
        (outcome, store)
    }

    #[test]
    fn runs_add_and_reverse() {
        let (program, types) = frontend(sil_lang::testsrc::ADD_AND_REVERSE).unwrap();
        let mut interp = Interpreter::new(&program, &types);
        let outcome = interp.run().unwrap();
        // build(4) allocates 2^4 - 1 = 15 nodes
        assert_eq!(outcome.allocated_nodes, 15);
        assert!(outcome.cost.work > 15);
        assert_eq!(outcome.cost.span, outcome.cost.work, "sequential program");
        let snap = interp.snapshot_of(&outcome, "root").unwrap();
        assert_eq!(snap.size(), 15);
        assert_eq!(snap.height(), 4);
    }

    #[test]
    fn add_and_reverse_semantics() {
        // After add_n(lside,1), add_n(rside,-1) and reverse(root):
        // the whole tree is mirrored and the left/right subtrees got +1/-1.
        let (program, types) = frontend(sil_lang::testsrc::ADD_AND_REVERSE).unwrap();
        let mut interp = Interpreter::new(&program, &types);
        let outcome = interp.run().unwrap();
        let snap = interp.snapshot_of(&outcome, "root").unwrap();
        // root value is `depth` = 4 (untouched by add_n on the subtrees)
        match &snap {
            crate::store::NodeSnapshot::Node { value, left, right } => {
                assert_eq!(*value, 4);
                // after reverse, the original left subtree (values +1) is on
                // the right and vice versa
                let left_sum: i64 = left.in_order().iter().sum();
                let right_sum: i64 = right.in_order().iter().sum();
                // subtree of depth 3 has values 3,2,2,1,1,1,1 summing to 11;
                // +1 per node (7 nodes) = 18, -1 per node = 4
                assert_eq!(right_sum, 18, "original left subtree, bumped by +1");
                assert_eq!(left_sum, 4, "original right subtree, bumped by -1");
            }
            other => panic!("expected a node, got {other:?}"),
        }
    }

    #[test]
    fn parallel_version_produces_identical_heap() {
        let (seq_prog, seq_types) = frontend(sil_lang::testsrc::ADD_AND_REVERSE).unwrap();
        let (par_prog, par_types) = frontend(sil_lang::testsrc::ADD_AND_REVERSE_PARALLEL).unwrap();
        let mut seq = Interpreter::new(&seq_prog, &seq_types);
        let seq_out = seq.run().unwrap();
        let mut par = Interpreter::new(&par_prog, &par_types);
        let par_out = par.run().unwrap();
        let seq_snap = seq.snapshot_of(&seq_out, "root").unwrap();
        let par_snap = par.snapshot_of(&par_out, "root").unwrap();
        assert_eq!(seq_snap, par_snap);
        // and the parallel version has a strictly shorter critical path
        assert!(par_out.cost.span < seq_out.cost.span);
        assert_eq!(par_out.cost.work, seq_out.cost.work);
    }

    #[test]
    fn leftmost_loop_terminates() {
        let (outcome, _) = run_src(sil_lang::testsrc::LEFTMOST_LOOP);
        assert!(outcome.cost.work > 0);
    }

    #[test]
    fn while_loop_and_arithmetic() {
        let src = r#"
program arith
procedure main()
  x, s: int
begin
  x := 1;
  s := 0;
  while x <= 10 do
  begin
    s := s + x;
    x := x + 1
  end
end
"#;
        let (outcome, _) = run_src(src);
        assert_eq!(outcome.main_frame.get("s"), Some(Value::Int(55)));
        assert_eq!(outcome.main_frame.get("x"), Some(Value::Int(11)));
    }

    #[test]
    fn if_else_and_comparisons() {
        let src = r#"
program cmp
procedure main()
  a, b, mx: int
begin
  a := 3;
  b := 7;
  if a > b then mx := a else mx := b;
  if a = 3 and b <> 3 then a := a * 2;
  if a >= 100 or b < 100 then b := b - 1
end
"#;
        let (outcome, _) = run_src(src);
        assert_eq!(outcome.main_frame.get("mx"), Some(Value::Int(7)));
        assert_eq!(outcome.main_frame.get("a"), Some(Value::Int(6)));
        assert_eq!(outcome.main_frame.get("b"), Some(Value::Int(6)));
    }

    #[test]
    fn nil_dereference_is_reported() {
        let src = r#"
program boom
procedure main()
  a, b: handle
begin
  a := nil;
  b := a.left
end
"#;
        let (program, types) = frontend(src).unwrap();
        let mut interp = Interpreter::new(&program, &types);
        assert!(matches!(
            interp.run(),
            Err(RuntimeError::NilDereference { .. })
        ));
    }

    #[test]
    fn uninitialized_variable_is_reported() {
        let src = r#"
program boom
procedure main()
  a, b: handle
begin
  b := a
end
"#;
        let (program, types) = frontend(src).unwrap();
        let mut interp = Interpreter::new(&program, &types);
        assert!(matches!(
            interp.run(),
            Err(RuntimeError::UninitializedVariable { .. })
        ));
    }

    #[test]
    fn recursion_limit_is_enforced() {
        let src = r#"
program deep
procedure spin(n: int)
begin
  spin(n + 1)
end
procedure main()
begin
  spin(0)
end
"#;
        let (program, types) = frontend(src).unwrap();
        let config = RunConfig {
            recursion_limit: 64,
            ..RunConfig::default()
        };
        let mut interp = Interpreter::with_config(&program, &types, config);
        assert!(matches!(
            interp.run(),
            Err(RuntimeError::RecursionLimit { limit: 64 })
        ));
    }

    #[test]
    fn store_capacity_is_enforced() {
        let src = r#"
program hungry
procedure main()
  a: handle; i: int
begin
  i := 0;
  while i < 100 do
  begin
    a := new();
    i := i + 1
  end
end
"#;
        let (program, types) = frontend(src).unwrap();
        let config = RunConfig {
            store_capacity: 10,
            ..RunConfig::default()
        };
        let mut interp = Interpreter::with_config(&program, &types, config);
        assert!(matches!(
            interp.run(),
            Err(RuntimeError::StoreExhausted { .. })
        ));
    }

    #[test]
    fn division_and_errors() {
        let src = r#"
program div
procedure main()
  x: int
begin
  x := 10 / 3
end
"#;
        let (outcome, _) = run_src(src);
        assert_eq!(outcome.main_frame.get("x"), Some(Value::Int(3)));

        let src = r#"
program div0
procedure main()
  x: int
begin
  x := 10 / 0
end
"#;
        let (program, types) = frontend(src).unwrap();
        let mut interp = Interpreter::new(&program, &types);
        assert!(matches!(interp.run(), Err(RuntimeError::DivisionByZero)));
    }

    #[test]
    fn function_return_values() {
        let src = r#"
program funcs
function double(n: int) int
  r: int
begin
  r := n * 2
end
return (r)
procedure main()
  x: int
begin
  x := double(21)
end
"#;
        let (outcome, _) = run_src(src);
        assert_eq!(outcome.main_frame.get("x"), Some(Value::Int(42)));
    }

    #[test]
    fn parallel_arms_see_the_entry_frame() {
        // Both arms read `x` as it was before the parallel statement.
        let src = r#"
program snapshot_semantics
procedure main()
  x, a, b: int
begin
  x := 5;
  a := x + 1 || b := x + 2
end
"#;
        let (outcome, _) = run_src(src);
        assert_eq!(outcome.main_frame.get("a"), Some(Value::Int(6)));
        assert_eq!(outcome.main_frame.get("b"), Some(Value::Int(7)));
        assert_eq!(outcome.main_frame.get("x"), Some(Value::Int(5)));
    }

    #[test]
    fn parallel_cost_takes_max_span() {
        let src = r#"
program spans
procedure work(t: handle; n: int)
  i: int
begin
  i := 0;
  while i < n do
  begin
    t.value := t.value + 1;
    i := i + 1
  end
end
procedure main()
  a, b: handle
begin
  a := new();
  b := new();
  work(a, 10) || work(b, 20)
end
"#;
        let (outcome, _) = run_src(src);
        // work is the sum of both calls, span is dominated by the longer one
        assert!(outcome.cost.work > outcome.cost.span);
        assert!(outcome.cost.parallelism() > 1.3);
    }

    #[test]
    fn race_detection_flags_value_race() {
        let src = r#"
program racy
procedure main()
  a, b: handle
begin
  a := new();
  b := a;
  a.value := 1 || b.value := 2
end
"#;
        let (program, types) = frontend(src).unwrap();
        let config = RunConfig {
            detect_races: true,
            ..RunConfig::default()
        };
        let mut interp = Interpreter::with_config(&program, &types, config);
        let outcome = interp.run().unwrap();
        assert!(!outcome.races.is_empty());
    }

    #[test]
    fn race_detection_passes_clean_parallel_program() {
        let (program, types) = frontend(sil_lang::testsrc::ADD_AND_REVERSE_PARALLEL).unwrap();
        let config = RunConfig {
            detect_races: true,
            ..RunConfig::default()
        };
        let mut interp = Interpreter::with_config(&program, &types, config);
        let outcome = interp.run().unwrap();
        assert!(
            outcome.races.is_empty(),
            "Figure 8 must be race free: {:?}",
            outcome
                .races
                .iter()
                .map(|r| r.to_string())
                .collect::<Vec<_>>()
        );
    }
}
