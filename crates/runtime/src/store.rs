//! The node store: a concurrent arena of binary-tree nodes.
//!
//! `new()` in SIL allocates a node with an integer `value` and `left`/`right`
//! handles.  The store is a pre-sized slab of `parking_lot::RwLock<Node>`
//! cells with an atomic bump allocator, so that:
//!
//! * allocation from parallel arms is a single `fetch_add`,
//! * disjoint nodes can be read and written concurrently without contention
//!   (one small lock per node, never a global lock on the hot path),
//! * node identity is a stable index that can be shared freely across
//!   threads.
//!
//! SIL has no `free`; nodes live for the whole program run, which matches
//! the paper's semantics and keeps the allocator trivial.

use crate::error::RuntimeError;
use parking_lot::RwLock;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Identity of a node in the store.
pub type NodeId = usize;

/// One binary-tree node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Node {
    pub value: i64,
    pub left: Option<NodeId>,
    pub right: Option<NodeId>,
}

/// The default number of nodes a store can hold.
pub const DEFAULT_CAPACITY: usize = 1 << 20;

/// A concurrent arena of nodes.
pub struct Store {
    cells: Vec<RwLock<Node>>,
    next: AtomicUsize,
}

impl Store {
    /// A store that can hold up to `capacity` nodes.
    pub fn with_capacity(capacity: usize) -> Store {
        let mut cells = Vec::with_capacity(capacity);
        cells.resize_with(capacity, || RwLock::new(Node::default()));
        Store {
            cells,
            next: AtomicUsize::new(0),
        }
    }

    /// A store with the default capacity.
    pub fn new() -> Store {
        Store::with_capacity(DEFAULT_CAPACITY)
    }

    /// Number of nodes allocated so far.
    pub fn len(&self) -> usize {
        self.next.load(Ordering::Relaxed).min(self.cells.len())
    }

    /// Whether no nodes have been allocated.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total capacity.
    pub fn capacity(&self) -> usize {
        self.cells.len()
    }

    /// Allocate a fresh node (all fields nil/zero).
    pub fn alloc(&self) -> Result<NodeId, RuntimeError> {
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        if id >= self.cells.len() {
            return Err(RuntimeError::StoreExhausted {
                capacity: self.cells.len(),
            });
        }
        *self.cells[id].write() = Node::default();
        Ok(id)
    }

    /// Read a whole node.
    pub fn node(&self, id: NodeId) -> Node {
        *self.cells[id].read()
    }

    /// Read the integer value of a node.
    pub fn value(&self, id: NodeId) -> i64 {
        self.cells[id].read().value
    }

    /// Read a structural field.
    pub fn child(&self, id: NodeId, field: sil_lang::Field) -> Option<NodeId> {
        let node = self.cells[id].read();
        match field {
            sil_lang::Field::Left => node.left,
            sil_lang::Field::Right => node.right,
        }
    }

    /// Write the integer value of a node.
    pub fn set_value(&self, id: NodeId, value: i64) {
        self.cells[id].write().value = value;
    }

    /// Write a structural field.
    pub fn set_child(&self, id: NodeId, field: sil_lang::Field, child: Option<NodeId>) {
        let mut node = self.cells[id].write();
        match field {
            sil_lang::Field::Left => node.left = child,
            sil_lang::Field::Right => node.right = child,
        }
    }

    /// A deep snapshot of the structure reachable from `root`, useful for
    /// comparing the results of sequential and parallel executions.  Cycles
    /// are cut off by a depth limit proportional to the store size.
    pub fn snapshot(&self, root: Option<NodeId>) -> NodeSnapshot {
        self.snapshot_depth(root, self.len() + 1)
    }

    fn snapshot_depth(&self, root: Option<NodeId>, budget: usize) -> NodeSnapshot {
        match root {
            None => NodeSnapshot::Nil,
            Some(_) if budget == 0 => NodeSnapshot::Truncated,
            Some(id) => {
                let node = self.node(id);
                NodeSnapshot::Node {
                    value: node.value,
                    left: Box::new(self.snapshot_depth(node.left, budget - 1)),
                    right: Box::new(self.snapshot_depth(node.right, budget - 1)),
                }
            }
        }
    }

    /// Count of nodes reachable from `root` (each shared node counted every
    /// time it is reached; cycles cut by a budget).
    pub fn reachable_count(&self, root: Option<NodeId>) -> usize {
        fn go(store: &Store, root: Option<NodeId>, budget: &mut usize) -> usize {
            match root {
                None => 0,
                Some(id) => {
                    if *budget == 0 {
                        return 0;
                    }
                    *budget -= 1;
                    let node = store.node(id);
                    1 + go(store, node.left, budget) + go(store, node.right, budget)
                }
            }
        }
        let mut budget = self.len().saturating_mul(2) + 1;
        go(self, root, &mut budget)
    }

    /// Sum of values reachable from `root` (same caveats as
    /// [`Store::reachable_count`]).
    pub fn reachable_sum(&self, root: Option<NodeId>) -> i64 {
        fn go(store: &Store, root: Option<NodeId>, budget: &mut usize) -> i64 {
            match root {
                None => 0,
                Some(id) => {
                    if *budget == 0 {
                        return 0;
                    }
                    *budget -= 1;
                    let node = store.node(id);
                    node.value + go(store, node.left, budget) + go(store, node.right, budget)
                }
            }
        }
        let mut budget = self.len().saturating_mul(2) + 1;
        go(self, root, &mut budget)
    }
}

impl Default for Store {
    fn default() -> Self {
        Store::new()
    }
}

/// A deep, store-independent copy of a reachable structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeSnapshot {
    Nil,
    Truncated,
    Node {
        value: i64,
        left: Box<NodeSnapshot>,
        right: Box<NodeSnapshot>,
    },
}

impl NodeSnapshot {
    /// Number of nodes in the snapshot.
    pub fn size(&self) -> usize {
        match self {
            NodeSnapshot::Nil | NodeSnapshot::Truncated => 0,
            NodeSnapshot::Node { left, right, .. } => 1 + left.size() + right.size(),
        }
    }

    /// Height of the snapshot.
    pub fn height(&self) -> usize {
        match self {
            NodeSnapshot::Nil | NodeSnapshot::Truncated => 0,
            NodeSnapshot::Node { left, right, .. } => 1 + left.height().max(right.height()),
        }
    }

    /// In-order traversal of the values.
    pub fn in_order(&self) -> Vec<i64> {
        let mut out = Vec::new();
        self.collect_in_order(&mut out);
        out
    }

    fn collect_in_order(&self, out: &mut Vec<i64>) {
        if let NodeSnapshot::Node { value, left, right } = self {
            left.collect_in_order(out);
            out.push(*value);
            right.collect_in_order(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sil_lang::Field;

    #[test]
    fn alloc_and_access() {
        let store = Store::with_capacity(8);
        let a = store.alloc().unwrap();
        let b = store.alloc().unwrap();
        assert_ne!(a, b);
        assert_eq!(store.len(), 2);
        store.set_value(a, 42);
        store.set_child(a, Field::Left, Some(b));
        assert_eq!(store.value(a), 42);
        assert_eq!(store.child(a, Field::Left), Some(b));
        assert_eq!(store.child(a, Field::Right), None);
        store.set_child(a, Field::Left, None);
        assert_eq!(store.child(a, Field::Left), None);
    }

    #[test]
    fn exhaustion_is_reported() {
        let store = Store::with_capacity(2);
        store.alloc().unwrap();
        store.alloc().unwrap();
        assert_eq!(
            store.alloc(),
            Err(RuntimeError::StoreExhausted { capacity: 2 })
        );
    }

    #[test]
    fn snapshot_and_aggregates() {
        let store = Store::with_capacity(8);
        let root = store.alloc().unwrap();
        let l = store.alloc().unwrap();
        let r = store.alloc().unwrap();
        store.set_value(root, 1);
        store.set_value(l, 2);
        store.set_value(r, 3);
        store.set_child(root, Field::Left, Some(l));
        store.set_child(root, Field::Right, Some(r));
        let snap = store.snapshot(Some(root));
        assert_eq!(snap.size(), 3);
        assert_eq!(snap.height(), 2);
        assert_eq!(snap.in_order(), vec![2, 1, 3]);
        assert_eq!(store.reachable_count(Some(root)), 3);
        assert_eq!(store.reachable_sum(Some(root)), 6);
        assert_eq!(store.snapshot(None), NodeSnapshot::Nil);
        assert_eq!(store.reachable_count(None), 0);
    }

    #[test]
    fn cyclic_structures_do_not_hang() {
        let store = Store::with_capacity(4);
        let a = store.alloc().unwrap();
        let b = store.alloc().unwrap();
        store.set_child(a, Field::Left, Some(b));
        store.set_child(b, Field::Left, Some(a));
        // bounded by the budget rather than looping forever
        let snap = store.snapshot(Some(a));
        assert!(snap.size() <= store.len() + 2);
        let _ = store.reachable_count(Some(a));
        let _ = store.reachable_sum(Some(a));
    }

    #[test]
    fn concurrent_allocation_is_disjoint() {
        use std::sync::Arc;
        let store = Arc::new(Store::with_capacity(4096));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                let mut ids = Vec::new();
                for _ in 0..256 {
                    ids.push(store.alloc().unwrap());
                }
                ids
            }));
        }
        let mut all: Vec<NodeId> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 8 * 256, "every allocation got a unique id");
    }
}
