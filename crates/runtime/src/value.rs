//! Runtime values and variable frames.

use crate::store::NodeId;
use std::collections::HashMap;
use std::fmt;

/// A runtime value: an integer or a handle (possibly nil).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Value {
    Int(i64),
    Handle(Option<NodeId>),
}

impl Value {
    /// The nil handle.
    pub fn nil() -> Value {
        Value::Handle(None)
    }

    /// The integer contained in the value, if it is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            Value::Handle(_) => None,
        }
    }

    /// The handle contained in the value, if it is a handle.
    pub fn as_handle(&self) -> Option<Option<NodeId>> {
        match self {
            Value::Handle(h) => Some(*h),
            Value::Int(_) => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(n) => write!(f, "{n}"),
            Value::Handle(None) => write!(f, "nil"),
            Value::Handle(Some(id)) => write!(f, "#{id}"),
        }
    }
}

/// A variable environment for one procedure invocation (SIL is call-by-value
/// and statically scoped, so a frame is a flat map of the procedure's
/// parameters and locals).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Frame {
    vars: HashMap<String, Value>,
}

impl Frame {
    pub fn new() -> Frame {
        Frame::default()
    }

    /// Read a variable.
    pub fn get(&self, name: &str) -> Option<Value> {
        self.vars.get(name).copied()
    }

    /// Write a variable.
    pub fn set(&mut self, name: &str, value: Value) {
        self.vars.insert(name.to_string(), value);
    }

    /// Whether the variable has been assigned.
    pub fn contains(&self, name: &str) -> bool {
        self.vars.contains_key(name)
    }

    /// Iterate over the bound variables.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.vars.iter()
    }

    /// Merge the effects of parallel arms back into this frame: a variable
    /// binding is taken from an arm if the arm changed it relative to the
    /// `base` frame.  When several arms changed the same variable the last
    /// arm wins (the verifier/race detector flags such programs — this is
    /// only a fallback so execution can proceed deterministically).
    pub fn merge_parallel(&mut self, base: &Frame, arms: &[Frame]) {
        for arm in arms {
            for (name, value) in arm.iter() {
                if base.get(name) != Some(*value) {
                    self.set(name, *value);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Int(3).as_handle(), None);
        assert_eq!(Value::Handle(Some(7)).as_handle(), Some(Some(7)));
        assert_eq!(Value::nil().as_handle(), Some(None));
        assert_eq!(Value::nil().to_string(), "nil");
        assert_eq!(Value::Handle(Some(4)).to_string(), "#4");
        assert_eq!(Value::Int(-2).to_string(), "-2");
    }

    #[test]
    fn frame_get_set() {
        let mut f = Frame::new();
        assert!(!f.contains("x"));
        f.set("x", Value::Int(1));
        assert_eq!(f.get("x"), Some(Value::Int(1)));
        f.set("x", Value::Int(2));
        assert_eq!(f.get("x"), Some(Value::Int(2)));
    }

    #[test]
    fn merge_parallel_takes_changed_bindings() {
        let mut base = Frame::new();
        base.set("a", Value::Int(0));
        base.set("b", Value::Int(0));
        let mut arm1 = base.clone();
        arm1.set("a", Value::Int(10));
        let mut arm2 = base.clone();
        arm2.set("b", Value::Int(20));
        let mut merged = base.clone();
        merged.merge_parallel(&base, &[arm1, arm2]);
        assert_eq!(merged.get("a"), Some(Value::Int(10)));
        assert_eq!(merged.get("b"), Some(Value::Int(20)));
    }

    #[test]
    fn merge_parallel_new_bindings() {
        let base = Frame::new();
        let mut arm = Frame::new();
        arm.set("fresh", Value::Int(5));
        let mut merged = base.clone();
        merged.merge_parallel(&base, &[arm]);
        assert_eq!(merged.get("fresh"), Some(Value::Int(5)));
    }
}
