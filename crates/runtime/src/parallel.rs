//! Real parallel execution of `||` statements on the host machine.
//!
//! [`ParallelExecutor`] runs a SIL program with the arms of every parallel
//! statement dispatched through rayon's work-stealing scheduler
//! (`par_iter` over the arms — nested parallel statements nest naturally in
//! rayon's join model).  The node store is shared between the arms; the
//! static analysis guarantees the arms touch disjoint locations, and the
//! per-node locks in [`crate::store::Store`] make even unverified programs
//! memory-safe (they may still be non-deterministic, which is exactly what
//! the verifier and the race detector are for).

use crate::error::RuntimeError;
use crate::interp::{ExecMode, Interpreter, Outcome, RunConfig};
use crate::store::NodeSnapshot;
use sil_lang::ast::Program;
use sil_lang::types::ProgramTypes;

/// A rayon-backed executor for (parallelized) SIL programs.
pub struct ParallelExecutor<'a> {
    interp: Interpreter<'a>,
}

impl<'a> ParallelExecutor<'a> {
    /// An executor with the default configuration.
    pub fn new(program: &'a Program, types: &'a ProgramTypes) -> ParallelExecutor<'a> {
        Self::with_config(program, types, RunConfig::default())
    }

    /// An executor with a custom configuration.  `detect_races` is ignored in
    /// this mode (races are checked by the deterministic interpreter).
    pub fn with_config(
        program: &'a Program,
        types: &'a ProgramTypes,
        mut config: RunConfig,
    ) -> ParallelExecutor<'a> {
        config.detect_races = false;
        ParallelExecutor {
            interp: Interpreter::with_mode(program, types, config, ExecMode::Rayon),
        }
    }

    /// Run the program from `main` with parallel arms on real threads.
    pub fn run(&mut self) -> Result<Outcome, RuntimeError> {
        self.interp.run()
    }

    /// Snapshot a handle variable of the final `main` frame.
    pub fn snapshot_of(&self, outcome: &Outcome, var: &str) -> Option<NodeSnapshot> {
        self.interp.snapshot_of(outcome, var)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interpreter;
    use sil_lang::frontend;

    #[test]
    fn parallel_execution_matches_sequential_results() {
        let (program, types) = frontend(sil_lang::testsrc::ADD_AND_REVERSE_PARALLEL).unwrap();
        let mut seq = Interpreter::new(&program, &types);
        let seq_out = seq.run().unwrap();
        let seq_snap = seq.snapshot_of(&seq_out, "root").unwrap();

        let mut par = ParallelExecutor::new(&program, &types);
        let par_out = par.run().unwrap();
        let par_snap = par.snapshot_of(&par_out, "root").unwrap();

        assert_eq!(seq_snap, par_snap);
        assert_eq!(seq_out.allocated_nodes, par_out.allocated_nodes);
        assert_eq!(seq_out.cost.work, par_out.cost.work);
    }

    #[test]
    fn sequential_program_runs_under_parallel_executor() {
        let (program, types) = frontend(sil_lang::testsrc::ADD_AND_REVERSE).unwrap();
        let mut par = ParallelExecutor::new(&program, &types);
        let out = par.run().unwrap();
        assert_eq!(out.allocated_nodes, 15);
        assert!(out.races.is_empty());
    }

    #[test]
    fn errors_propagate_from_parallel_arms() {
        let src = r#"
program boom
procedure main()
  a, b, c: handle
begin
  a := new();
  b := a.left || c := nil
end
"#;
        // a.left is nil, dereferencing it is fine (load of nil child is just
        // nil) — instead make an arm that really fails:
        let src_fail = r#"
program boom
procedure main()
  a, b, c: handle; x: int
begin
  a := nil;
  x := a.value || c := nil
end
"#;
        let (program, types) = frontend(src).unwrap();
        let mut par = ParallelExecutor::new(&program, &types);
        assert!(par.run().is_ok());

        let (program, types) = frontend(src_fail).unwrap();
        let mut par = ParallelExecutor::new(&program, &types);
        assert!(matches!(
            par.run(),
            Err(RuntimeError::NilDereference { .. })
        ));
    }

    #[test]
    fn deep_parallel_recursion_completes() {
        // a deeper tree than the default example to actually exercise
        // work-stealing across many tasks
        let src = r#"
program deep
procedure add_n(h: handle; n: int)
  l, r: handle
begin
  if h <> nil then
  begin
    h.value := h.value + n || l := h.left || r := h.right;
    add_n(l, n) || add_n(r, n)
  end
end
function build(depth: int) handle
  t, l, r: handle; d: int
begin
  t := nil;
  if depth > 0 then
  begin
    t := new();
    t.value := depth;
    d := depth - 1;
    l := build(d) || r := build(d);
    t.left := l || t.right := r
  end
end
return (t)
procedure main()
  root: handle; d: int
begin
  d := 12;
  root := build(d);
  add_n(root, 5)
end
"#;
        let (program, types) = frontend(src).unwrap();
        let mut par = ParallelExecutor::new(&program, &types);
        let out = par.run().unwrap();
        assert_eq!(out.allocated_nodes, (1 << 12) - 1);
        let snap = par.snapshot_of(&out, "root").unwrap();
        assert_eq!(snap.size(), (1 << 12) - 1);
        // every node got +5: the root had value 12, now 17
        match snap {
            NodeSnapshot::Node { value, .. } => assert_eq!(value, 17),
            other => panic!("unexpected {other:?}"),
        }
        // the available parallelism of the tree recursion is substantial
        assert!(out.cost.parallelism() > 4.0);
    }
}
