//! # sil-runtime
//!
//! The execution substrate for SIL programs: this is the "parallel machine"
//! the 1989 paper targets but never names.  It provides four things:
//!
//! * [`store`] — a concurrent node arena (the heap of binary-tree nodes that
//!   `new()` allocates from),
//! * [`interp`] — a reference interpreter that executes sequential *and*
//!   parallel SIL deterministically (parallel arms run in program order) and
//!   accounts **work** (statements executed) and **span** (critical path,
//!   where a parallel statement costs the maximum of its arms),
//! * [`parallel`] — a rayon-backed executor that really runs `||` arms on
//!   the host's cores (work-stealing join/scope, per the hpc-parallel
//!   guides),
//! * [`race`] — a dynamic race detector that logs every memory access per
//!   parallel arm and reports conflicts; it is used to validate the static
//!   interference analysis (programs the analysis approves must be
//!   race-free; deliberately broken ones must not be),
//! * [`costmodel`] — work/span/parallelism reports and Brent-style speedup
//!   projections for `p` processors.
//!
//! ## Quick example
//!
//! ```
//! use sil_lang::frontend;
//! use sil_runtime::interp::Interpreter;
//!
//! let (program, types) = frontend(sil_lang::testsrc::ADD_AND_REVERSE).unwrap();
//! let mut interp = Interpreter::new(&program, &types);
//! let outcome = interp.run().unwrap();
//! assert!(outcome.cost.work > 0);
//! assert!(outcome.cost.span <= outcome.cost.work);
//! ```

pub mod costmodel;
pub mod error;
pub mod interp;
pub mod parallel;
pub mod race;
pub mod store;
pub mod value;

pub use costmodel::{Cost, CostReport};
pub use error::RuntimeError;
pub use interp::{Interpreter, Outcome, RunConfig};
pub use parallel::ParallelExecutor;
pub use race::{AccessKind, RaceDetector, RaceReport};
pub use store::{NodeId, NodeSnapshot, Store};
pub use value::{Frame, Value};
