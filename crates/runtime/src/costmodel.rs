//! The PRAM-style cost model: work, span and projected speedups.
//!
//! The paper's evaluation is qualitative — it shows *which* statements and
//! calls can run in parallel.  To turn that into numbers without the
//! authors' (unspecified, 1989) parallel machine we charge one unit per
//! executed basic statement and combine costs the standard work/span way:
//! sequential composition adds both, parallel composition adds work but
//! takes the maximum span.  `work / span` is the available parallelism; the
//! projected running time on `p` processors uses Brent's bound
//! `T_p ≈ work/p + span`.

use std::fmt;

/// The cost of an executed program fragment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Cost {
    /// Total number of unit operations executed.
    pub work: u64,
    /// Length of the critical path.
    pub span: u64,
}

impl Cost {
    /// Zero cost.
    pub const ZERO: Cost = Cost { work: 0, span: 0 };

    /// The cost of one unit operation.
    pub const UNIT: Cost = Cost { work: 1, span: 1 };

    /// A cost with the given work and span.
    pub fn new(work: u64, span: u64) -> Cost {
        debug_assert!(span <= work || work == 0, "span cannot exceed work");
        Cost { work, span }
    }

    /// Sequential composition.
    pub fn then(self, other: Cost) -> Cost {
        Cost {
            work: self.work + other.work,
            span: self.span + other.span,
        }
    }

    /// Parallel composition of two costs.
    pub fn alongside(self, other: Cost) -> Cost {
        Cost {
            work: self.work + other.work,
            span: self.span.max(other.span),
        }
    }

    /// Parallel composition of many costs.
    pub fn par_all(costs: impl IntoIterator<Item = Cost>) -> Cost {
        costs
            .into_iter()
            .fold(Cost::ZERO, |acc, c| acc.alongside(c))
    }

    /// Available parallelism (`work / span`).
    pub fn parallelism(&self) -> f64 {
        if self.span == 0 {
            1.0
        } else {
            self.work as f64 / self.span as f64
        }
    }

    /// Brent's upper bound on the running time with `p` processors
    /// (`work/p + span`).
    pub fn brent_time(&self, processors: u64) -> f64 {
        let p = processors.max(1) as f64;
        self.work as f64 / p + self.span as f64
    }

    /// The projected running time with `p` processors used for speedup
    /// reporting: a greedy scheduler needs at least `max(work/p, span)`
    /// steps, and that lower bound is within a factor of two of Brent's
    /// upper bound, so it is the conventional basis for "projected speedup"
    /// tables.
    pub fn projected_time(&self, processors: u64) -> f64 {
        let p = processors.max(1) as f64;
        (self.work as f64 / p).max(self.span as f64)
    }

    /// Projected speedup on `p` processors relative to sequential execution
    /// (`work / max(work/p, span)`); saturates at the available parallelism.
    pub fn speedup(&self, processors: u64) -> f64 {
        if self.work == 0 {
            return 1.0;
        }
        self.work as f64 / self.projected_time(processors)
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "work={} span={} parallelism={:.2}",
            self.work,
            self.span,
            self.parallelism()
        )
    }
}

/// A small table of projected speedups for a range of processor counts —
/// the rows reported in EXPERIMENTS.md.
#[derive(Debug, Clone)]
pub struct CostReport {
    pub label: String,
    pub cost: Cost,
    pub processor_counts: Vec<u64>,
}

impl CostReport {
    /// A report for the usual 1/2/4/8/16 processor sweep.
    pub fn new(label: impl Into<String>, cost: Cost) -> CostReport {
        CostReport {
            label: label.into(),
            cost,
            processor_counts: vec![1, 2, 4, 8, 16],
        }
    }

    /// The speedup rows: `(processors, projected speedup)`.
    pub fn rows(&self) -> Vec<(u64, f64)> {
        self.processor_counts
            .iter()
            .map(|&p| (p, self.cost.speedup(p)))
            .collect()
    }
}

impl fmt::Display for CostReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}: {}", self.label, self.cost)?;
        for (p, s) in self.rows() {
            writeln!(f, "  p={p:<3} speedup={s:.2}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_composition_adds() {
        let c = Cost::UNIT.then(Cost::UNIT).then(Cost::new(3, 3));
        assert_eq!(c, Cost::new(5, 5));
    }

    #[test]
    fn parallel_composition_takes_max_span() {
        let a = Cost::new(10, 10);
        let b = Cost::new(6, 6);
        let c = a.alongside(b);
        assert_eq!(c.work, 16);
        assert_eq!(c.span, 10);
        let all = Cost::par_all([a, b, Cost::new(2, 2)]);
        assert_eq!(all.work, 18);
        assert_eq!(all.span, 10);
    }

    #[test]
    fn parallelism_and_speedup() {
        let c = Cost::new(1000, 10);
        assert!((c.parallelism() - 100.0).abs() < 1e-9);
        // with unlimited processors the speedup saturates at work/span
        assert!((c.speedup(1_000_000) - 100.0).abs() < 1e-9);
        // with one processor there is no speedup
        assert!((c.speedup(1) - 1.0).abs() < 1e-9);
        // monotone in p until saturation
        assert!(c.speedup(4) > c.speedup(2));
        assert!(c.speedup(2) > c.speedup(1));
        // Brent's upper bound is still available
        assert!((c.brent_time(10) - 110.0).abs() < 1e-9);
    }

    #[test]
    fn zero_cost_is_harmless() {
        assert_eq!(Cost::ZERO.speedup(8), 1.0);
        assert_eq!(Cost::ZERO.parallelism(), 1.0);
        assert_eq!(Cost::ZERO.then(Cost::UNIT), Cost::UNIT);
        assert_eq!(Cost::ZERO.alongside(Cost::UNIT), Cost::UNIT);
    }

    #[test]
    fn report_rows() {
        let report = CostReport::new("add_n", Cost::new(100, 20));
        let rows = report.rows();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0].0, 1);
        assert!(rows.windows(2).all(|w| w[0].1 <= w[1].1));
        let printed = report.to_string();
        assert!(printed.contains("add_n"));
        assert!(printed.contains("p=8"));
    }
}
