//! A dynamic race detector for parallel SIL programs.
//!
//! During a *sequential* (deterministic) execution of a parallel program the
//! interpreter can log every memory access made by each arm of a parallel
//! statement.  Two arms race when one writes a location the other reads or
//! writes.  The detector is used to validate the static analysis: programs
//! the interference analysis approves must execute without races, and the
//! deliberately broken programs used in the "debugging" experiments must
//! produce reports.

use crate::store::NodeId;
use sil_lang::Field;
use std::collections::BTreeSet;
use std::fmt;

/// What was accessed.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Target {
    /// A variable of the current frame.
    Var(String),
    /// The `left`/`right` field of a node.
    NodeField(NodeId, Field),
    /// The `value` field of a node.
    NodeValue(NodeId),
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Target::Var(name) => write!(f, "variable `{name}`"),
            Target::NodeField(id, field) => write!(f, "node #{id}.{field}"),
            Target::NodeValue(id) => write!(f, "node #{id}.value"),
        }
    }
}

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AccessKind {
    Read,
    Write,
}

/// One logged access.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Access {
    pub kind: AccessKind,
    pub target: Target,
}

impl Access {
    pub fn read(target: Target) -> Access {
        Access {
            kind: AccessKind::Read,
            target,
        }
    }

    pub fn write(target: Target) -> Access {
        Access {
            kind: AccessKind::Write,
            target,
        }
    }
}

/// The access log of one parallel arm.
#[derive(Debug, Clone, Default)]
pub struct AccessLog {
    pub accesses: Vec<Access>,
}

impl AccessLog {
    pub fn new() -> AccessLog {
        AccessLog::default()
    }

    pub fn record(&mut self, access: Access) {
        self.accesses.push(access);
    }

    pub fn extend(&mut self, other: AccessLog) {
        self.accesses.extend(other.accesses);
    }

    fn writes(&self) -> BTreeSet<&Target> {
        self.accesses
            .iter()
            .filter(|a| a.kind == AccessKind::Write)
            .map(|a| &a.target)
            .collect()
    }

    fn touched(&self) -> BTreeSet<&Target> {
        self.accesses.iter().map(|a| &a.target).collect()
    }
}

/// A detected race between two arms of a parallel statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceReport {
    /// Indices of the two conflicting arms.
    pub arms: (usize, usize),
    /// The conflicting location.
    pub target: Target,
    /// Pretty rendering of the parallel statement.
    pub statement: String,
}

impl fmt::Display for RaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "race between arms {} and {} of `{}` on {}",
            self.arms.0 + 1,
            self.arms.1 + 1,
            self.statement,
            self.target
        )
    }
}

/// Pairwise race detection over the arms of one parallel statement.
#[derive(Debug, Default)]
pub struct RaceDetector;

impl RaceDetector {
    /// Check the logs of all arms of a parallel statement.
    pub fn check(arm_logs: &[AccessLog], statement: &str) -> Vec<RaceReport> {
        let mut reports = Vec::new();
        for i in 0..arm_logs.len() {
            for j in (i + 1)..arm_logs.len() {
                let writes_i = arm_logs[i].writes();
                let writes_j = arm_logs[j].writes();
                let touched_i = arm_logs[i].touched();
                let touched_j = arm_logs[j].touched();
                let mut conflicting: BTreeSet<&Target> = BTreeSet::new();
                for w in &writes_i {
                    if touched_j.contains(*w) {
                        conflicting.insert(w);
                    }
                }
                for w in &writes_j {
                    if touched_i.contains(*w) {
                        conflicting.insert(w);
                    }
                }
                for target in conflicting {
                    reports.push(RaceReport {
                        arms: (i, j),
                        target: target.clone(),
                        statement: statement.to_string(),
                    });
                }
            }
        }
        reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log(accesses: Vec<Access>) -> AccessLog {
        AccessLog { accesses }
    }

    #[test]
    fn disjoint_arms_do_not_race() {
        let a = log(vec![
            Access::read(Target::NodeValue(1)),
            Access::write(Target::NodeValue(1)),
            Access::write(Target::Var("x".into())),
        ]);
        let b = log(vec![
            Access::read(Target::NodeValue(2)),
            Access::write(Target::NodeValue(2)),
            Access::write(Target::Var("y".into())),
        ]);
        assert!(RaceDetector::check(&[a, b], "s1 || s2").is_empty());
    }

    #[test]
    fn write_write_race() {
        let a = log(vec![Access::write(Target::NodeValue(7))]);
        let b = log(vec![Access::write(Target::NodeValue(7))]);
        let races = RaceDetector::check(&[a, b], "s1 || s2");
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].target, Target::NodeValue(7));
        assert_eq!(races[0].arms, (0, 1));
    }

    #[test]
    fn read_write_race() {
        let a = log(vec![Access::read(Target::Var("x".into()))]);
        let b = log(vec![Access::write(Target::Var("x".into()))]);
        assert_eq!(RaceDetector::check(&[a, b], "s").len(), 1);
        // read-read is fine
        let a = log(vec![Access::read(Target::Var("x".into()))]);
        let b = log(vec![Access::read(Target::Var("x".into()))]);
        assert!(RaceDetector::check(&[a, b], "s").is_empty());
    }

    #[test]
    fn field_and_value_of_same_node_do_not_conflict() {
        let a = log(vec![Access::write(Target::NodeValue(3))]);
        let b = log(vec![Access::write(Target::NodeField(3, Field::Left))]);
        assert!(RaceDetector::check(&[a, b], "s").is_empty());
    }

    #[test]
    fn three_way_races_report_each_pair() {
        let mk = || log(vec![Access::write(Target::Var("x".into()))]);
        let races = RaceDetector::check(&[mk(), mk(), mk()], "s");
        assert_eq!(races.len(), 3);
    }

    #[test]
    fn display_is_informative() {
        let races = RaceDetector::check(
            &[
                log(vec![Access::write(Target::NodeValue(9))]),
                log(vec![Access::read(Target::NodeValue(9))]),
            ],
            "a.value := 1 || x := b.value",
        );
        let s = races[0].to_string();
        assert!(s.contains("node #9.value"));
        assert!(s.contains("arms 1 and 2"));
    }
}
