//! Runtime errors.

use std::fmt;

/// Errors raised while executing a SIL program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// A `.left`, `.right` or `.value` access through a nil handle.
    NilDereference { context: String },
    /// A call to a procedure or function that does not exist.
    UnknownProcedure { name: String },
    /// Wrong number of arguments at a call site.
    ArityMismatch {
        name: String,
        expected: usize,
        actual: usize,
    },
    /// Use of a variable that has no value yet.
    UninitializedVariable { name: String },
    /// The node arena ran out of capacity.
    StoreExhausted { capacity: usize },
    /// The call stack exceeded the configured recursion limit.
    RecursionLimit { limit: usize },
    /// Division by zero.
    DivisionByZero,
    /// A value had the wrong type at runtime (indicates a type-checker gap).
    TypeMismatch { context: String },
    /// The program has no `main` procedure.
    NoMain,
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::NilDereference { context } => {
                write!(f, "nil handle dereferenced in `{context}`")
            }
            RuntimeError::UnknownProcedure { name } => {
                write!(f, "call to unknown procedure `{name}`")
            }
            RuntimeError::ArityMismatch {
                name,
                expected,
                actual,
            } => write!(f, "`{name}` expects {expected} argument(s), got {actual}"),
            RuntimeError::UninitializedVariable { name } => {
                write!(f, "variable `{name}` used before it was assigned")
            }
            RuntimeError::StoreExhausted { capacity } => {
                write!(f, "node store exhausted (capacity {capacity})")
            }
            RuntimeError::RecursionLimit { limit } => {
                write!(f, "recursion limit of {limit} frames exceeded")
            }
            RuntimeError::DivisionByZero => write!(f, "division by zero"),
            RuntimeError::TypeMismatch { context } => {
                write!(f, "runtime type mismatch in `{context}`")
            }
            RuntimeError::NoMain => write!(f, "program has no `main` procedure"),
        }
    }
}

impl std::error::Error for RuntimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(RuntimeError::NilDereference {
            context: "l := h.left".into()
        }
        .to_string()
        .contains("nil handle"));
        assert!(RuntimeError::StoreExhausted { capacity: 10 }
            .to_string()
            .contains("10"));
        assert!(RuntimeError::RecursionLimit { limit: 64 }
            .to_string()
            .contains("64"));
        assert!(RuntimeError::DivisionByZero.to_string().contains("zero"));
    }
}
