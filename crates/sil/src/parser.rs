//! A recursive-descent parser for SIL.
//!
//! The concrete grammar follows Figure 1 of the paper:
//!
//! ```text
//! Program    ::= "program" id ProcOrFunc*
//! Procedure  ::= "procedure" id "(" Params ")" Locals Block
//! Function   ::= "function" id "(" Params ")" Type Locals Block "return" "(" id ")"
//! Params     ::= [ DeclGroup ( ";" DeclGroup )* ]
//! Locals     ::= [ DeclGroup ( ";" DeclGroup )* ]
//! DeclGroup  ::= id ( "," id )* ":" ( "int" | "handle" )
//! Block      ::= "begin" [ Stmt ( ";" Stmt )* [";"] ] "end"
//! Stmt       ::= Simple ( "||" Simple )*              -- "||" builds a parallel statement
//! Simple     ::= Block
//!              | "if" Expr "then" Stmt [ "else" Stmt ]
//!              | "while" Expr "do" Stmt
//!              | id "(" Args ")"                      -- procedure call
//!              | LValue ":=" Rhs                      -- assignment
//! LValue     ::= id ( "." ( "left" | "right" | "value" ) )*
//! Rhs        ::= "new" "(" ")" | id "(" Args ")" | Expr
//! ```
//!
//! Expressions use the usual precedence: `or` < `and` < comparisons < `+ -`
//! < `* /` < unary.

use crate::ast::*;
use crate::error::SilError;
use crate::lexer::tokenize;
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Parse a complete SIL program.
pub fn parse_program(src: &str) -> Result<Program, SilError> {
    let tokens = tokenize(src)?;
    let mut parser = Parser::new(tokens);
    let program = parser.program()?;
    parser.expect_eof()?;
    Ok(program)
}

/// Parse a single statement (useful in tests and the REPL-style examples).
pub fn parse_stmt(src: &str) -> Result<Stmt, SilError> {
    let tokens = tokenize(src)?;
    let mut parser = Parser::new(tokens);
    let stmt = parser.stmt()?;
    parser.expect_eof()?;
    Ok(stmt)
}

/// Parse a single expression.
pub fn parse_expr(src: &str) -> Result<Expr, SilError> {
    let tokens = tokenize(src)?;
    let mut parser = Parser::new(tokens);
    let expr = parser.expr()?;
    parser.expect_eof()?;
    Ok(expr)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, pos: 0 }
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_at(&self, offset: usize) -> &TokenKind {
        let idx = (self.pos + offset).min(self.tokens.len() - 1);
        &self.tokens[idx].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1)].span
    }

    fn bump(&mut self) -> TokenKind {
        let kind = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        kind
    }

    fn at(&self, kind: &TokenKind) -> bool {
        self.peek() == kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), SilError> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(SilError::parse(
                format!(
                    "expected {}, found {}",
                    kind.describe(),
                    self.peek().describe()
                ),
                self.span(),
            ))
        }
    }

    fn expect_eof(&mut self) -> Result<(), SilError> {
        if self.at(&TokenKind::Eof) {
            Ok(())
        } else {
            Err(SilError::parse(
                format!("expected end of input, found {}", self.peek().describe()),
                self.span(),
            ))
        }
    }

    fn ident(&mut self) -> Result<Ident, SilError> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok(name)
            }
            other => Err(SilError::parse(
                format!("expected identifier, found {}", other.describe()),
                self.span(),
            )),
        }
    }

    // ---- program structure -------------------------------------------------

    fn program(&mut self) -> Result<Program, SilError> {
        let start = self.span();
        self.expect(&TokenKind::Program)?;
        let name = self.ident()?;
        let mut procedures = Vec::new();
        loop {
            match self.peek() {
                TokenKind::Procedure => procedures.push(self.procedure(false)?),
                TokenKind::Function => procedures.push(self.procedure(true)?),
                TokenKind::Semicolon => {
                    self.bump();
                }
                TokenKind::Eof => break,
                other => {
                    return Err(SilError::parse(
                        format!(
                            "expected `procedure`, `function` or end of input, found {}",
                            other.describe()
                        ),
                        self.span(),
                    ))
                }
            }
        }
        Ok(Program {
            name,
            procedures,
            span: start.to(self.prev_span()),
        })
    }

    fn procedure(&mut self, is_function: bool) -> Result<Procedure, SilError> {
        let start = self.span();
        self.bump(); // `procedure` or `function`
        let name = self.ident()?;
        self.expect(&TokenKind::LParen)?;
        let params = self.decl_groups(&TokenKind::RParen)?;
        self.expect(&TokenKind::RParen)?;

        let return_type = if is_function {
            Some(self.type_name()?)
        } else {
            None
        };

        let locals = self.decl_groups(&TokenKind::Begin)?;
        let body = self.block()?;

        let return_var = if is_function {
            self.expect(&TokenKind::Return)?;
            self.expect(&TokenKind::LParen)?;
            let v = self.ident()?;
            self.expect(&TokenKind::RParen)?;
            Some(v)
        } else {
            None
        };

        Ok(Procedure {
            name,
            params,
            locals,
            body,
            return_type,
            return_var,
            span: start.to(self.prev_span()),
        })
    }

    fn type_name(&mut self) -> Result<TypeName, SilError> {
        match self.peek() {
            TokenKind::IntType => {
                self.bump();
                Ok(TypeName::Int)
            }
            TokenKind::HandleType => {
                self.bump();
                Ok(TypeName::Handle)
            }
            other => Err(SilError::parse(
                format!("expected `int` or `handle`, found {}", other.describe()),
                self.span(),
            )),
        }
    }

    /// Parse declaration groups `a, b: handle; n: int` until `terminator`.
    fn decl_groups(&mut self, terminator: &TokenKind) -> Result<Vec<Decl>, SilError> {
        let mut decls = Vec::new();
        loop {
            while self.eat(&TokenKind::Semicolon) {}
            if self.at(terminator) || self.at(&TokenKind::Eof) {
                break;
            }
            let mut names = Vec::new();
            let start = self.span();
            names.push(self.ident()?);
            while self.eat(&TokenKind::Comma) {
                names.push(self.ident()?);
            }
            self.expect(&TokenKind::Colon)?;
            let ty = self.type_name()?;
            let span = start.to(self.prev_span());
            for name in names {
                decls.push(Decl { name, ty, span });
            }
        }
        Ok(decls)
    }

    // ---- statements ---------------------------------------------------------

    fn block(&mut self) -> Result<Stmt, SilError> {
        let start = self.span();
        self.expect(&TokenKind::Begin)?;
        let mut stmts = Vec::new();
        loop {
            while self.eat(&TokenKind::Semicolon) {}
            if self.at(&TokenKind::End) || self.at(&TokenKind::Eof) {
                break;
            }
            stmts.push(self.stmt()?);
            if !self.at(&TokenKind::End) {
                // statements are `;`-separated; the final `;` is optional
                if !self.eat(&TokenKind::Semicolon) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::End)?;
        Ok(Stmt::Block {
            stmts,
            span: start.to(self.prev_span()),
        })
    }

    /// A statement, possibly a `||` parallel composition of simple statements.
    fn stmt(&mut self) -> Result<Stmt, SilError> {
        let start = self.span();
        let first = self.simple_stmt()?;
        if !self.at(&TokenKind::Par) {
            return Ok(first);
        }
        let mut arms = vec![first];
        while self.eat(&TokenKind::Par) {
            arms.push(self.simple_stmt()?);
        }
        Ok(Stmt::Par {
            arms,
            span: start.to(self.prev_span()),
        })
    }

    fn simple_stmt(&mut self) -> Result<Stmt, SilError> {
        match self.peek().clone() {
            TokenKind::Begin => self.block(),
            TokenKind::If => self.if_stmt(),
            TokenKind::While => self.while_stmt(),
            TokenKind::Ident(_) => self.assign_or_call(),
            other => Err(SilError::parse(
                format!("expected a statement, found {}", other.describe()),
                self.span(),
            )),
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt, SilError> {
        let start = self.span();
        self.expect(&TokenKind::If)?;
        let cond = self.expr()?;
        self.expect(&TokenKind::Then)?;
        let then_branch = Box::new(self.stmt()?);
        let else_branch = if self.eat(&TokenKind::Else) {
            Some(Box::new(self.stmt()?))
        } else {
            None
        };
        Ok(Stmt::If {
            cond,
            then_branch,
            else_branch,
            span: start.to(self.prev_span()),
        })
    }

    fn while_stmt(&mut self) -> Result<Stmt, SilError> {
        let start = self.span();
        self.expect(&TokenKind::While)?;
        let cond = self.expr()?;
        self.expect(&TokenKind::Do)?;
        let body = Box::new(self.stmt()?);
        Ok(Stmt::While {
            cond,
            body,
            span: start.to(self.prev_span()),
        })
    }

    /// Either a procedure call `p(args)` or an assignment `lvalue := rhs`.
    fn assign_or_call(&mut self) -> Result<Stmt, SilError> {
        let start = self.span();
        let name = self.ident()?;

        // Procedure call: identifier immediately followed by `(`.
        if self.at(&TokenKind::LParen) {
            self.bump();
            let args = self.args()?;
            self.expect(&TokenKind::RParen)?;
            return Ok(Stmt::Call {
                proc: name,
                args,
                span: start.to(self.prev_span()),
            });
        }

        // Otherwise an assignment.  Parse the selector chain on the left.
        let lhs = self.lvalue_from(name)?;
        self.expect(&TokenKind::Assign)?;
        let rhs = self.rhs()?;
        Ok(Stmt::Assign {
            lhs,
            rhs,
            span: start.to(self.prev_span()),
        })
    }

    fn lvalue_from(&mut self, base: Ident) -> Result<LValue, SilError> {
        let mut fields = Vec::new();
        let mut value = false;
        while self.eat(&TokenKind::Dot) {
            match self.peek().clone() {
                TokenKind::Left => {
                    self.bump();
                    fields.push(Field::Left);
                }
                TokenKind::Right => {
                    self.bump();
                    fields.push(Field::Right);
                }
                TokenKind::Value => {
                    self.bump();
                    value = true;
                    break;
                }
                other => {
                    return Err(SilError::parse(
                        format!(
                            "expected `left`, `right` or `value` after `.`, found {}",
                            other.describe()
                        ),
                        self.span(),
                    ))
                }
            }
        }
        let path = HandlePath { base, fields };
        if value {
            Ok(LValue::Value(path))
        } else if let Some(last) = path.fields.last().copied() {
            let mut prefix = path;
            prefix.fields.pop();
            Ok(LValue::Field(prefix, last))
        } else {
            Ok(LValue::Var(path.base))
        }
    }

    fn rhs(&mut self) -> Result<Rhs, SilError> {
        match self.peek().clone() {
            TokenKind::New => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                self.expect(&TokenKind::RParen)?;
                Ok(Rhs::New)
            }
            // A function call: identifier followed immediately by `(`.
            TokenKind::Ident(name) if *self.peek_at(1) == TokenKind::LParen => {
                self.bump();
                self.bump();
                let args = self.args()?;
                self.expect(&TokenKind::RParen)?;
                Ok(Rhs::Call(name, args))
            }
            _ => Ok(Rhs::Expr(self.expr()?)),
        }
    }

    fn args(&mut self) -> Result<Vec<Expr>, SilError> {
        let mut args = Vec::new();
        if self.at(&TokenKind::RParen) {
            return Ok(args);
        }
        args.push(self.expr()?);
        while self.eat(&TokenKind::Comma) {
            args.push(self.expr()?);
        }
        Ok(args)
    }

    // ---- expressions --------------------------------------------------------

    fn expr(&mut self) -> Result<Expr, SilError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, SilError> {
        let mut lhs = self.and_expr()?;
        while self.eat(&TokenKind::Or) {
            let rhs = self.and_expr()?;
            lhs = Expr::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, SilError> {
        let mut lhs = self.cmp_expr()?;
        while self.eat(&TokenKind::And) {
            let rhs = self.cmp_expr()?;
            lhs = Expr::Binary(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, SilError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            TokenKind::Eq => BinOp::Eq,
            TokenKind::Ne => BinOp::Ne,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        Ok(Expr::Binary(op, Box::new(lhs), Box::new(rhs)))
    }

    fn add_expr(&mut self) -> Result<Expr, SilError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, SilError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, SilError> {
        match self.peek() {
            TokenKind::Minus => {
                self.bump();
                let inner = self.unary_expr()?;
                // Fold negative literals so `-1` is a literal, matching the
                // paper's `add_n(rside, -1)` call.
                if let Expr::Int(n) = inner {
                    Ok(Expr::Int(-n))
                } else {
                    Ok(Expr::Unary(UnOp::Neg, Box::new(inner)))
                }
            }
            TokenKind::Not => {
                self.bump();
                let inner = self.unary_expr()?;
                Ok(Expr::Unary(UnOp::Not, Box::new(inner)))
            }
            _ => self.primary_expr(),
        }
    }

    fn primary_expr(&mut self) -> Result<Expr, SilError> {
        match self.peek().clone() {
            TokenKind::Int(n) => {
                self.bump();
                Ok(Expr::Int(n))
            }
            TokenKind::Nil => {
                self.bump();
                Ok(Expr::Nil)
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                self.bump();
                let mut fields = Vec::new();
                let mut value = false;
                while self.at(&TokenKind::Dot) {
                    self.bump();
                    match self.peek().clone() {
                        TokenKind::Left => {
                            self.bump();
                            fields.push(Field::Left);
                        }
                        TokenKind::Right => {
                            self.bump();
                            fields.push(Field::Right);
                        }
                        TokenKind::Value => {
                            self.bump();
                            value = true;
                            break;
                        }
                        other => {
                            return Err(SilError::parse(
                                format!(
                                    "expected `left`, `right` or `value` after `.`, found {}",
                                    other.describe()
                                ),
                                self.span(),
                            ))
                        }
                    }
                }
                let path = HandlePath { base: name, fields };
                if value {
                    Ok(Expr::Value(path))
                } else {
                    Ok(Expr::Path(path))
                }
            }
            other => Err(SilError::parse(
                format!("expected an expression, found {}", other.describe()),
                self.span(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_program() {
        let prog = parse_program("program p procedure main() begin end").unwrap();
        assert_eq!(prog.name, "p");
        assert_eq!(prog.procedures.len(), 1);
        assert_eq!(prog.procedures[0].name, "main");
    }

    #[test]
    fn parses_locals_and_params() {
        let src = r#"
program p
procedure add_n(h: handle; n: int)
  l, r: handle
begin
end
"#;
        let prog = parse_program(src).unwrap();
        let p = &prog.procedures[0];
        assert_eq!(p.params.len(), 2);
        assert_eq!(p.params[0].ty, TypeName::Handle);
        assert_eq!(p.params[1].ty, TypeName::Int);
        assert_eq!(p.locals.len(), 2);
        assert_eq!(p.locals[1].name, "r");
    }

    #[test]
    fn parses_basic_handle_statements() {
        let s = parse_stmt("a := b.left").unwrap();
        match s {
            Stmt::Assign { lhs, rhs, .. } => {
                assert_eq!(lhs, LValue::Var("a".into()));
                assert_eq!(
                    rhs,
                    Rhs::Expr(Expr::Path(HandlePath::var("b").then(Field::Left)))
                );
            }
            other => panic!("expected assignment, got {other:?}"),
        }
    }

    #[test]
    fn parses_field_store() {
        let s = parse_stmt("a.left := b").unwrap();
        match s {
            Stmt::Assign { lhs, .. } => {
                assert_eq!(lhs, LValue::Field(HandlePath::var("a"), Field::Left));
            }
            other => panic!("expected assignment, got {other:?}"),
        }
    }

    #[test]
    fn parses_compound_store() {
        let s = parse_stmt("a.left.right := b.right").unwrap();
        match s {
            Stmt::Assign { lhs, .. } => {
                assert_eq!(
                    lhs,
                    LValue::Field(HandlePath::var("a").then(Field::Left), Field::Right)
                );
            }
            other => panic!("expected assignment, got {other:?}"),
        }
    }

    #[test]
    fn parses_value_statements() {
        let s = parse_stmt("h.value := h.value + n").unwrap();
        match s {
            Stmt::Assign { lhs, rhs, .. } => {
                assert_eq!(lhs, LValue::Value(HandlePath::var("h")));
                match rhs {
                    Rhs::Expr(Expr::Binary(BinOp::Add, a, b)) => {
                        assert_eq!(*a, Expr::Value(HandlePath::var("h")));
                        assert_eq!(*b, Expr::var("n"));
                    }
                    other => panic!("unexpected rhs {other:?}"),
                }
            }
            other => panic!("expected assignment, got {other:?}"),
        }
    }

    #[test]
    fn parses_new_and_nil() {
        assert!(matches!(
            parse_stmt("a := new()").unwrap(),
            Stmt::Assign { rhs: Rhs::New, .. }
        ));
        assert!(matches!(
            parse_stmt("a := nil").unwrap(),
            Stmt::Assign {
                rhs: Rhs::Expr(Expr::Nil),
                ..
            }
        ));
    }

    #[test]
    fn parses_procedure_and_function_calls() {
        let s = parse_stmt("add_n(lside, 1)").unwrap();
        match s {
            Stmt::Call { proc, args, .. } => {
                assert_eq!(proc, "add_n");
                assert_eq!(args.len(), 2);
                assert_eq!(args[1], Expr::Int(1));
            }
            other => panic!("expected call, got {other:?}"),
        }
        let s = parse_stmt("x := height(root)").unwrap();
        match s {
            Stmt::Assign {
                rhs: Rhs::Call(name, args),
                ..
            } => {
                assert_eq!(name, "height");
                assert_eq!(args, vec![Expr::var("root")]);
            }
            other => panic!("expected function-call assignment, got {other:?}"),
        }
    }

    #[test]
    fn parses_negative_literal_argument() {
        let s = parse_stmt("add_n(rside, -1)").unwrap();
        match s {
            Stmt::Call { args, .. } => assert_eq!(args[1], Expr::Int(-1)),
            other => panic!("expected call, got {other:?}"),
        }
    }

    #[test]
    fn parses_if_while() {
        let s = parse_stmt("if h <> nil then begin l := h.left end else l := nil").unwrap();
        match s {
            Stmt::If {
                cond, else_branch, ..
            } => {
                assert!(matches!(cond, Expr::Binary(BinOp::Ne, _, _)));
                assert!(else_branch.is_some());
            }
            other => panic!("expected if, got {other:?}"),
        }
        let s = parse_stmt("while l.left <> nil do l := l.left").unwrap();
        assert!(matches!(s, Stmt::While { .. }));
    }

    #[test]
    fn parses_parallel_statement() {
        let s = parse_stmt("l := h.left || r := h.right").unwrap();
        match s {
            Stmt::Par { arms, .. } => assert_eq!(arms.len(), 2),
            other => panic!("expected par, got {other:?}"),
        }
        let s = parse_stmt("h.value := h.value + n || l := h.left || r := h.right").unwrap();
        match s {
            Stmt::Par { arms, .. } => assert_eq!(arms.len(), 3),
            other => panic!("expected par, got {other:?}"),
        }
    }

    #[test]
    fn parses_parallel_calls() {
        let s = parse_stmt("reverse(l) || reverse(r)").unwrap();
        match s {
            Stmt::Par { arms, .. } => {
                assert_eq!(arms.len(), 2);
                assert!(matches!(arms[0], Stmt::Call { .. }));
            }
            other => panic!("expected par, got {other:?}"),
        }
    }

    #[test]
    fn parses_expression_precedence() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        assert_eq!(
            e,
            Expr::Binary(
                BinOp::Add,
                Box::new(Expr::Int(1)),
                Box::new(Expr::Binary(
                    BinOp::Mul,
                    Box::new(Expr::Int(2)),
                    Box::new(Expr::Int(3))
                ))
            )
        );
        let e = parse_expr("x < 3 and y > 4 or z = 0").unwrap();
        assert!(matches!(e, Expr::Binary(BinOp::Or, _, _)));
    }

    #[test]
    fn parses_parenthesised_expressions() {
        let e = parse_expr("(1 + 2) * 3").unwrap();
        assert!(matches!(e, Expr::Binary(BinOp::Mul, _, _)));
    }

    #[test]
    fn parses_full_add_and_reverse() {
        let src = crate::testsrc::ADD_AND_REVERSE;
        let prog = parse_program(src).unwrap();
        assert_eq!(prog.name, "add_and_reverse");
        assert_eq!(prog.procedures.len(), 4);
        assert_eq!(prog.procedures[0].name, "main");
        assert_eq!(prog.procedures[1].name, "add_n");
        assert_eq!(prog.procedures[2].name, "reverse");
        assert_eq!(prog.procedures[3].name, "build");
        assert!(prog.procedures[3].is_function());
    }

    #[test]
    fn parses_function_definition() {
        let src = r#"
program p
function height(t: handle) int
  hl, hr, h: int
  l, r: handle
begin
  h := 0;
  if t <> nil then
  begin
    l := t.left;
    r := t.right;
    hl := height(l);
    hr := height(r);
    if hl > hr then h := hl + 1 else h := hr + 1
  end
end
return (h)

procedure main()
  root: handle; d: int
begin
  root := new();
  d := height(root)
end
"#;
        let prog = parse_program(src).unwrap();
        let f = prog.procedure("height").unwrap();
        assert!(f.is_function());
        assert_eq!(f.return_type, Some(TypeName::Int));
        assert_eq!(f.return_var.as_deref(), Some("h"));
    }

    #[test]
    fn error_messages_mention_expectation() {
        let err = parse_program("program").unwrap_err();
        assert!(err.to_string().contains("identifier"));
        let err = parse_stmt("a := ").unwrap_err();
        assert!(err.to_string().contains("expression"));
        let err = parse_stmt("a.b := c").unwrap_err();
        assert!(err.to_string().contains("left"));
    }

    #[test]
    fn rejects_trailing_tokens() {
        assert!(parse_stmt("a := b end").is_err());
        assert!(parse_expr("1 + 2 3").is_err());
    }

    #[test]
    fn nested_blocks_and_semicolons() {
        let s = parse_stmt("begin a := nil; begin b := nil; end; c := nil end").unwrap();
        match s {
            Stmt::Block { stmts, .. } => assert_eq!(stmts.len(), 3),
            other => panic!("expected block, got {other:?}"),
        }
    }
}
