//! Stable, content-addressed fingerprints of SIL ASTs.
//!
//! The engine memoizes per-procedure summaries and whole-program analysis
//! results, keyed by the *content* of the (normalized) AST.  The key must be
//! stable across processes and runs — `std::collections::hash_map`'s
//! randomized hasher cannot be used — so this module provides a plain
//! FNV-1a 64-bit hasher and fingerprints computed over the canonical form of
//! the AST.
//!
//! The canonical form is the pretty-printed rendering of [`crate::pretty`]:
//! the workspace already relies on pretty-printing being a total, faithful
//! rendering (the parallelizer's output is pretty-printed and re-parsed by
//! the verification tests), so two ASTs render identically iff they are the
//! same program modulo spans — exactly the equivalence a content-addressed
//! cache wants.  Spans, comments and incidental whitespace of the original
//! source never reach the fingerprint.

use crate::ast::{Procedure, Program};
use crate::pretty::{pretty_procedure, pretty_program};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// FNV-1a over a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// An incremental FNV-1a hasher with length-prefixed field framing, so that
/// `("ab", "c")` and `("a", "bc")` hash differently.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

impl StableHasher {
    pub fn new() -> StableHasher {
        StableHasher { state: FNV_OFFSET }
    }

    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        self.write_u64(bytes.len() as u64);
        for b in bytes {
            self.state ^= u64::from(*b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write_bytes(s.as_bytes())
    }

    pub fn write_u64(&mut self, value: u64) -> &mut Self {
        for b in value.to_le_bytes() {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    pub fn write_usize(&mut self, value: usize) -> &mut Self {
        self.write_u64(value as u64)
    }

    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// The stable fingerprint of one procedure: a pure function of its
/// pretty-printed (canonical) form.
pub fn procedure_fingerprint(proc: &Procedure) -> u64 {
    let mut hasher = StableHasher::new();
    hasher.write_str("sil-procedure-v1");
    hasher.write_str(&pretty_procedure(proc));
    hasher.finish()
}

/// The stable fingerprint of a whole program, covering its name and every
/// procedure in declaration order.
pub fn program_fingerprint(program: &Program) -> u64 {
    let mut hasher = StableHasher::new();
    hasher.write_str("sil-program-v1");
    hasher.write_str(&pretty_program(program));
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    const SRC: &str = r#"
program t
procedure main()
  a, b: handle; x: int
begin
  a := new();
  b := a.left;
  x := 3
end
"#;

    #[test]
    fn fingerprints_are_deterministic() {
        let p1 = parse_program(SRC).unwrap();
        let p2 = parse_program(SRC).unwrap();
        assert_eq!(program_fingerprint(&p1), program_fingerprint(&p2));
        assert_eq!(
            procedure_fingerprint(&p1.procedures[0]),
            procedure_fingerprint(&p2.procedures[0])
        );
    }

    #[test]
    fn fingerprints_ignore_incidental_whitespace() {
        let reformatted = SRC.replace("  a, b: handle", "  a,    b: handle");
        let p1 = parse_program(SRC).unwrap();
        let p2 = parse_program(&reformatted).unwrap();
        assert_eq!(program_fingerprint(&p1), program_fingerprint(&p2));
    }

    #[test]
    fn content_changes_change_the_fingerprint() {
        let changed = SRC.replace("x := 3", "x := 4");
        let p1 = parse_program(SRC).unwrap();
        let p2 = parse_program(&changed).unwrap();
        assert_ne!(program_fingerprint(&p1), program_fingerprint(&p2));
        assert_ne!(
            procedure_fingerprint(&p1.procedures[0]),
            procedure_fingerprint(&p2.procedures[0])
        );
    }

    #[test]
    fn framing_distinguishes_field_boundaries() {
        let mut a = StableHasher::new();
        a.write_str("ab").write_str("c");
        let mut b = StableHasher::new();
        b.write_str("a").write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn fnv1a_known_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }
}
