//! Lowering compound handle accesses to *basic handle statements*.
//!
//! The path-matrix analysis of Section 4 is defined over the basic handle
//! statements `a := nil`, `a := new()`, `a := b`, `a := b.left`,
//! `a := b.right`, `a.left := b`, `a.right := b`, `x := a.value` and
//! `a.value := x`.  The paper notes that "more complex statements such as
//! `a.left.right := b.right` are easily translated into a sequence of basic
//! handle statements (`t1 := a.left; t2 := b.right; t1.right := t2`)" — this
//! module performs exactly that translation.
//!
//! After [`normalize_program`]:
//!
//! * every assignment's left-hand side dereferences a *variable* (never a
//!   compound path),
//! * every handle-valued right-hand side is `nil`, `new()`, a variable, a
//!   single field load `b.left` / `b.right`, or a function call with
//!   variable/integer arguments,
//! * every `p.value` read inside an integer expression dereferences a
//!   variable,
//! * handle arguments of calls are plain variables.
//!
//! Conditions of `if`/`while` are left intact (they may still contain single
//! field loads such as `l.left <> nil`, exactly as in the paper's Figure 3);
//! hoisting them into temporaries would change re-evaluation semantics.
//! Fresh temporaries are named `_t1`, `_t2`, … and added to the procedure's
//! local declarations.

use crate::ast::*;
use crate::span::Span;

/// Normalize every procedure of `program`.  The result is semantically
/// equivalent and contains only basic handle statements.
pub fn normalize_program(program: &Program) -> Program {
    Program {
        name: program.name.clone(),
        procedures: program.procedures.iter().map(normalize_procedure).collect(),
        span: program.span,
    }
}

/// Normalize a single procedure.
pub fn normalize_procedure(proc: &Procedure) -> Procedure {
    let mut ctx = Normalizer::new(proc);
    let body = ctx.stmt(&proc.body);
    let mut locals = proc.locals.clone();
    locals.extend(ctx.new_locals);
    Procedure {
        name: proc.name.clone(),
        params: proc.params.clone(),
        locals,
        body,
        return_type: proc.return_type,
        return_var: proc.return_var.clone(),
        span: proc.span,
    }
}

struct Normalizer {
    /// Names already in scope, to avoid collisions when inventing temps.
    used: Vec<Ident>,
    new_locals: Vec<Decl>,
    counter: usize,
}

impl Normalizer {
    fn new(proc: &Procedure) -> Self {
        let used = proc
            .params
            .iter()
            .chain(proc.locals.iter())
            .map(|d| d.name.clone())
            .collect();
        Normalizer {
            used,
            new_locals: Vec::new(),
            counter: 0,
        }
    }

    fn fresh(&mut self, ty: TypeName) -> Ident {
        loop {
            self.counter += 1;
            let name = format!("_t{}", self.counter);
            if !self.used.contains(&name) {
                self.used.push(name.clone());
                self.new_locals.push(Decl::new(name.clone(), ty));
                return name;
            }
        }
    }

    fn stmt(&mut self, stmt: &Stmt) -> Stmt {
        match stmt {
            Stmt::Assign { lhs, rhs, span } => {
                let mut prelude = Vec::new();
                let lhs = self.lower_lvalue(lhs, *span, &mut prelude);
                let mut rhs = self.lower_rhs(rhs, *span, &mut prelude);
                // The basic store statements `a.f := b` / `a.value := x` take
                // a plain variable / integer expression on the right; a field
                // load on the right of a *store* (`a.left := b.right`) must
                // go through a temporary.
                if !matches!(lhs, LValue::Var(_)) {
                    if let Rhs::Expr(Expr::Path(p)) = &rhs {
                        if !p.is_var() {
                            let v = self.reduce_path_to_var(p, *span, &mut prelude);
                            rhs = Rhs::Expr(Expr::var(v));
                        }
                    }
                }
                let assign = Stmt::Assign {
                    lhs,
                    rhs,
                    span: *span,
                };
                if prelude.is_empty() {
                    assign
                } else {
                    prelude.push(assign);
                    Stmt::Block {
                        stmts: prelude,
                        span: *span,
                    }
                }
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                span,
            } => Stmt::If {
                cond: cond.clone(),
                then_branch: Box::new(self.stmt(then_branch)),
                else_branch: else_branch.as_ref().map(|e| Box::new(self.stmt(e))),
                span: *span,
            },
            Stmt::While { cond, body, span } => Stmt::While {
                cond: cond.clone(),
                body: Box::new(self.stmt(body)),
                span: *span,
            },
            Stmt::Block { stmts, span } => Stmt::Block {
                stmts: stmts.iter().map(|s| self.stmt(s)).collect(),
                span: *span,
            },
            Stmt::Call { proc, args, span } => {
                let mut prelude = Vec::new();
                let args = args
                    .iter()
                    .map(|a| self.lower_arg(a, *span, &mut prelude))
                    .collect();
                let call = Stmt::Call {
                    proc: proc.clone(),
                    args,
                    span: *span,
                };
                if prelude.is_empty() {
                    call
                } else {
                    prelude.push(call);
                    Stmt::Block {
                        stmts: prelude,
                        span: *span,
                    }
                }
            }
            Stmt::Par { arms, span } => Stmt::Par {
                arms: arms.iter().map(|s| self.stmt(s)).collect(),
                span: *span,
            },
        }
    }

    /// Reduce a handle path to a plain variable, emitting loads into `prelude`.
    fn reduce_path_to_var(
        &mut self,
        path: &HandlePath,
        span: Span,
        prelude: &mut Vec<Stmt>,
    ) -> Ident {
        let mut current = path.base.clone();
        for field in &path.fields {
            let tmp = self.fresh(TypeName::Handle);
            prelude.push(Stmt::Assign {
                lhs: LValue::Var(tmp.clone()),
                rhs: Rhs::Expr(Expr::Path(HandlePath::var(current).then(*field))),
                span,
            });
            current = tmp;
        }
        current
    }

    /// Reduce a handle path so at most one trailing field load remains,
    /// returning the simplified path.
    fn reduce_path_to_single_load(
        &mut self,
        path: &HandlePath,
        span: Span,
        prelude: &mut Vec<Stmt>,
    ) -> HandlePath {
        if path.fields.len() <= 1 {
            return path.clone();
        }
        let prefix = HandlePath {
            base: path.base.clone(),
            fields: path.fields[..path.fields.len() - 1].to_vec(),
        };
        let base = self.reduce_path_to_var(&prefix, span, prelude);
        HandlePath {
            base,
            fields: vec![*path.fields.last().expect("non-empty fields")],
        }
    }

    fn lower_lvalue(&mut self, lvalue: &LValue, span: Span, prelude: &mut Vec<Stmt>) -> LValue {
        match lvalue {
            LValue::Var(v) => LValue::Var(v.clone()),
            LValue::Field(path, field) => {
                if path.is_var() {
                    LValue::Field(path.clone(), *field)
                } else {
                    let base = self.reduce_path_to_var(path, span, prelude);
                    LValue::Field(HandlePath::var(base), *field)
                }
            }
            LValue::Value(path) => {
                if path.is_var() {
                    LValue::Value(path.clone())
                } else {
                    let base = self.reduce_path_to_var(path, span, prelude);
                    LValue::Value(HandlePath::var(base))
                }
            }
        }
    }

    fn lower_rhs(&mut self, rhs: &Rhs, span: Span, prelude: &mut Vec<Stmt>) -> Rhs {
        match rhs {
            Rhs::New => Rhs::New,
            Rhs::Call(name, args) => Rhs::Call(
                name.clone(),
                args.iter()
                    .map(|a| self.lower_arg(a, span, prelude))
                    .collect(),
            ),
            Rhs::Expr(e) => Rhs::Expr(self.lower_expr(e, span, prelude)),
        }
    }

    /// Handle arguments must be plain variable names after normalization.
    fn lower_arg(&mut self, arg: &Expr, span: Span, prelude: &mut Vec<Stmt>) -> Expr {
        match arg {
            Expr::Path(path) if !path.is_var() => {
                let v = self.reduce_path_to_var(path, span, prelude);
                Expr::var(v)
            }
            other => self.lower_expr(other, span, prelude),
        }
    }

    fn lower_expr(&mut self, expr: &Expr, span: Span, prelude: &mut Vec<Stmt>) -> Expr {
        match expr {
            Expr::Int(_) | Expr::Nil => expr.clone(),
            Expr::Path(path) => {
                // A handle rhs: at most one field load is basic.
                Expr::Path(self.reduce_path_to_single_load(path, span, prelude))
            }
            Expr::Value(path) => {
                // `p.value` reads: the node must be named by a variable.
                if path.is_var() {
                    Expr::Value(path.clone())
                } else {
                    let base = self.reduce_path_to_var(path, span, prelude);
                    Expr::Value(HandlePath::var(base))
                }
            }
            Expr::Unary(op, inner) => {
                Expr::Unary(*op, Box::new(self.lower_expr(inner, span, prelude)))
            }
            Expr::Binary(op, lhs, rhs) => Expr::Binary(
                *op,
                Box::new(self.lower_expr(lhs, span, prelude)),
                Box::new(self.lower_expr(rhs, span, prelude)),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_program, parse_stmt};
    use crate::pretty::pretty_stmt;

    fn normalize_single(src: &str) -> Stmt {
        let stmt = parse_stmt(src).unwrap();
        let proc = Procedure {
            name: "main".into(),
            params: vec![],
            locals: vec![
                Decl::new("a", TypeName::Handle),
                Decl::new("b", TypeName::Handle),
                Decl::new("x", TypeName::Int),
            ],
            body: stmt,
            return_type: None,
            return_var: None,
            span: Span::DUMMY,
        };
        normalize_procedure(&proc).body
    }

    #[test]
    fn basic_statements_are_unchanged() {
        for src in [
            "a := nil",
            "a := new()",
            "a := b",
            "a := b.left",
            "a.right := b",
            "a.value := x",
            "x := a.value",
            "x := a.value + 1",
        ] {
            let out = normalize_single(src);
            assert!(
                !matches!(out, Stmt::Block { .. }),
                "{src} should not require lowering, got {}",
                pretty_stmt(&out)
            );
        }
    }

    #[test]
    fn paper_example_lowering() {
        // The paper: a.left.right := b.right  ~>  t1 := a.left; t2 := b.right; t1.right := t2
        let out = normalize_single("a.left.right := b.right");
        let Stmt::Block { stmts, .. } = out else {
            panic!("expected lowering to a block");
        };
        assert_eq!(stmts.len(), 3);
        // first: _t1 := a.left
        match &stmts[0] {
            Stmt::Assign { lhs, rhs, .. } => {
                assert_eq!(lhs, &LValue::Var("_t1".into()));
                assert_eq!(
                    rhs,
                    &Rhs::Expr(Expr::Path(HandlePath::var("a").then(Field::Left)))
                );
            }
            other => panic!("unexpected {other:?}"),
        }
        // second: _t2 := b.right
        match &stmts[1] {
            Stmt::Assign { lhs, rhs, .. } => {
                assert_eq!(lhs, &LValue::Var("_t2".into()));
                assert_eq!(
                    rhs,
                    &Rhs::Expr(Expr::Path(HandlePath::var("b").then(Field::Right)))
                );
            }
            other => panic!("unexpected {other:?}"),
        }
        // third: _t1.right := _t2
        match &stmts[2] {
            Stmt::Assign { lhs, rhs, .. } => {
                assert_eq!(lhs, &LValue::Field(HandlePath::var("_t1"), Field::Right));
                assert_eq!(rhs, &Rhs::Expr(Expr::var("_t2")));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn store_of_field_load_goes_through_a_temporary() {
        // `a.left := b.right` is not basic: the right-hand side load must be
        // hoisted so the analysis sees both the load and the store.
        let out = normalize_single("a.left := b.right");
        let Stmt::Block { stmts, .. } = out else {
            panic!("expected lowering to a block");
        };
        assert_eq!(stmts.len(), 2);
        match &stmts[0] {
            Stmt::Assign { lhs, rhs, .. } => {
                assert_eq!(lhs, &LValue::Var("_t1".into()));
                assert_eq!(
                    rhs,
                    &Rhs::Expr(Expr::Path(HandlePath::var("b").then(Field::Right)))
                );
            }
            other => panic!("unexpected {other:?}"),
        }
        match &stmts[1] {
            Stmt::Assign { lhs, rhs, .. } => {
                assert_eq!(lhs, &LValue::Field(HandlePath::var("a"), Field::Left));
                assert_eq!(rhs, &Rhs::Expr(Expr::var("_t1")));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn deep_load_chain() {
        let out = normalize_single("a := b.left.left.right");
        let Stmt::Block { stmts, .. } = out else {
            panic!("expected block");
        };
        // two temporaries then the final single-load assignment
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn value_of_compound_path() {
        let out = normalize_single("x := a.left.value");
        let Stmt::Block { stmts, .. } = out else {
            panic!("expected block");
        };
        assert_eq!(stmts.len(), 2);
        match &stmts[1] {
            Stmt::Assign { rhs, .. } => {
                assert_eq!(rhs, &Rhs::Expr(Expr::Value(HandlePath::var("_t1"))));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn value_store_through_compound_path() {
        let out = normalize_single("a.left.value := x + 1");
        let Stmt::Block { stmts, .. } = out else {
            panic!("expected block");
        };
        assert_eq!(stmts.len(), 2);
        match &stmts[1] {
            Stmt::Assign { lhs, .. } => {
                assert_eq!(lhs, &LValue::Value(HandlePath::var("_t1")));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn call_arguments_become_variables() {
        let stmt = parse_stmt("visit(a.left.right, x + 1)").unwrap();
        let proc = Procedure {
            name: "main".into(),
            params: vec![],
            locals: vec![
                Decl::new("a", TypeName::Handle),
                Decl::new("x", TypeName::Int),
            ],
            body: stmt,
            return_type: None,
            return_var: None,
            span: Span::DUMMY,
        };
        let body = normalize_procedure(&proc).body;
        let Stmt::Block { stmts, .. } = body else {
            panic!("expected block");
        };
        match stmts.last().unwrap() {
            Stmt::Call { args, .. } => {
                assert_eq!(args[0].as_var(), Some("_t2"));
                assert!(matches!(args[1], Expr::Binary(..)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn temporaries_are_declared() {
        let stmt = parse_stmt("a := b.left.right").unwrap();
        let proc = Procedure {
            name: "main".into(),
            params: vec![],
            locals: vec![
                Decl::new("a", TypeName::Handle),
                Decl::new("b", TypeName::Handle),
            ],
            body: stmt,
            return_type: None,
            return_var: None,
            span: Span::DUMMY,
        };
        let normalized = normalize_procedure(&proc);
        assert!(normalized
            .locals
            .iter()
            .any(|d| d.name == "_t1" && d.ty == TypeName::Handle));
    }

    #[test]
    fn fresh_names_avoid_collisions() {
        let stmt = parse_stmt("a := b.left.right").unwrap();
        let proc = Procedure {
            name: "main".into(),
            params: vec![],
            locals: vec![
                Decl::new("a", TypeName::Handle),
                Decl::new("b", TypeName::Handle),
                Decl::new("_t1", TypeName::Int),
            ],
            body: stmt,
            return_type: None,
            return_var: None,
            span: Span::DUMMY,
        };
        let normalized = normalize_procedure(&proc);
        // the invented temp must not clash with the existing `_t1`
        let invented: Vec<_> = normalized
            .locals
            .iter()
            .filter(|d| d.name.starts_with("_t") && d.ty == TypeName::Handle)
            .collect();
        assert_eq!(invented.len(), 1);
        assert_ne!(invented[0].name, "_t1");
    }

    #[test]
    fn whole_program_normalization_preserves_structure() {
        let prog = parse_program(crate::testsrc::ADD_AND_REVERSE).unwrap();
        let normalized = normalize_program(&prog);
        assert_eq!(normalized.procedures.len(), prog.procedures.len());
        // the paper's program is already in basic form, so nothing changes
        assert_eq!(normalized.statement_count(), prog.statement_count());
    }

    #[test]
    fn conditions_are_left_intact() {
        let out = normalize_single("while a.left <> nil do a := a.left");
        match out {
            Stmt::While { cond, .. } => {
                assert!(matches!(cond, Expr::Binary(BinOp::Ne, _, _)));
            }
            other => panic!("expected while, got {other:?}"),
        }
    }
}
