//! # sil-lang
//!
//! The **SIL** language substrate from Hendren & Nicolau, *Parallelizing
//! Programs with Recursive Data Structures* (1989).
//!
//! SIL is a small, statically scoped imperative language with call-by-value
//! semantics and exactly two types: `int` and `handle`.  A handle names a
//! binary-tree node: `type handle = Nil | {value: int; left: handle; right: handle}`.
//!
//! This crate provides everything a downstream analysis or execution engine
//! needs in order to work with SIL programs:
//!
//! * [`lexer`] / [`parser`] — a hand-written lexer and recursive-descent
//!   parser for the concrete syntax of Figure 1 of the paper (extended with
//!   the parallel composition operator `||` that appears in the paper's
//!   *output* programs, Figure 8),
//! * [`ast`] — the abstract syntax tree,
//! * [`types`] — a type checker producing per-procedure symbol tables,
//! * [`normalize`] — lowering of compound handle expressions
//!   (`a.left.right := b.right`) into the *basic handle statements* the
//!   analysis of Section 4 is defined over,
//! * [`basic`] — a classification view of normalized statements,
//! * [`live`] — live-handle analysis ("a handle h is live at a point p if
//!   there is some execution path starting at p that uses h"),
//! * [`pretty`] — a pretty printer for both sequential and parallel programs,
//! * [`builder`] — a programmatic AST construction API used by the workload
//!   generators,
//! * [`visit`] — generic AST visitors,
//! * [`hash`] — stable content-addressed fingerprints of programs and
//!   procedures, used by the analysis engine's memoization caches.
//!
//! ## Quick example
//!
//! ```
//! use sil_lang::parse_program;
//!
//! let src = r#"
//! program tiny
//! procedure main()
//!   t: handle; l: handle
//! begin
//!   t := new();
//!   l := t.left
//! end
//! "#;
//! let program = parse_program(src).expect("parses");
//! assert_eq!(program.name, "tiny");
//! assert_eq!(program.procedures.len(), 1);
//! ```

pub mod ast;
pub mod basic;
pub mod builder;
pub mod error;
pub mod hash;
pub mod lexer;
pub mod live;
pub mod normalize;
pub mod parser;
pub mod pretty;
pub mod span;
pub mod testsrc;
pub mod token;
pub mod types;
pub mod visit;

pub use ast::{
    BinOp, Decl, Expr, Field, HandlePath, Ident, LValue, Procedure, Program, Rhs, Stmt, TypeName,
    UnOp,
};
pub use basic::BasicStmt;
pub use error::{Diagnostic, SilError};
pub use hash::{procedure_fingerprint, program_fingerprint, StableHasher};
pub use normalize::normalize_program;
pub use parser::{parse_expr, parse_program, parse_stmt};
pub use pretty::{pretty_program, pretty_stmt};
pub use span::Span;
pub use types::{check_program, ProcSignature, ProgramTypes, Type};

/// Parse, type check and normalize a SIL source string in one call.
///
/// This is the entry point most downstream crates (analysis, parallelizer,
/// runtime) use: the returned program contains only *basic* handle statements
/// and has passed the type checker.
pub fn frontend(src: &str) -> Result<(Program, ProgramTypes), SilError> {
    let program = parse_program(src)?;
    let normalized = normalize_program(&program);
    let types = check_program(&normalized)?;
    Ok((normalized, types))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontend_roundtrip() {
        let src = r#"
program t
procedure main()
  a: handle; b: handle; x: int
begin
  a := new();
  b := new();
  a.left := b;
  x := a.value
end
"#;
        let (prog, types) = frontend(src).unwrap();
        assert_eq!(prog.procedures.len(), 1);
        let main = &prog.procedures[0];
        assert_eq!(main.name, "main");
        assert!(types.proc("main").is_some());
    }

    #[test]
    fn frontend_rejects_type_errors() {
        let src = r#"
program t
procedure main()
  a: handle; x: int
begin
  x := a
end
"#;
        assert!(frontend(src).is_err());
    }
}
