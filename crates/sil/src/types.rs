//! The SIL type checker.
//!
//! SIL supports two value types, `int` and `handle` (plus booleans that only
//! occur in conditions).  The checker verifies declarations, expression and
//! assignment typing, call signatures and the `main` entry point, and
//! produces a [`ProgramTypes`] table that downstream crates (the analysis,
//! the parallelizer and the runtime) use to distinguish handle variables from
//! integer variables.

use crate::ast::*;
use crate::error::{Diagnostic, SilError};
use crate::span::Span;
use std::collections::HashMap;

/// The type of an expression or variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Type {
    Int,
    Handle,
    Bool,
}

impl Type {
    fn of(name: TypeName) -> Type {
        match name {
            TypeName::Int => Type::Int,
            TypeName::Handle => Type::Handle,
        }
    }
}

impl std::fmt::Display for Type {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Type::Int => write!(f, "int"),
            Type::Handle => write!(f, "handle"),
            Type::Bool => write!(f, "bool"),
        }
    }
}

/// The checked signature and symbol table of a single procedure or function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcSignature {
    pub name: Ident,
    /// Parameter names and types, in declaration order.
    pub params: Vec<(Ident, Type)>,
    /// `Some(..)` for functions.
    pub return_type: Option<Type>,
    /// Every declared variable (parameters and locals) and its type.
    pub vars: HashMap<Ident, Type>,
}

impl ProcSignature {
    /// Type of a declared variable, if any.
    pub fn var_type(&self, name: &str) -> Option<Type> {
        self.vars.get(name).copied()
    }

    /// Whether `name` is a declared handle variable.
    pub fn is_handle(&self, name: &str) -> bool {
        self.var_type(name) == Some(Type::Handle)
    }

    /// The names of the handle-typed parameters, in order.
    pub fn handle_params(&self) -> Vec<&str> {
        self.params
            .iter()
            .filter(|(_, t)| *t == Type::Handle)
            .map(|(n, _)| n.as_str())
            .collect()
    }
}

/// Type information for a whole program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProgramTypes {
    procs: HashMap<Ident, ProcSignature>,
}

impl ProgramTypes {
    /// The signature of a procedure or function.
    pub fn proc(&self, name: &str) -> Option<&ProcSignature> {
        self.procs.get(name)
    }

    /// Whether `var` is a handle variable in procedure `proc`.
    pub fn is_handle(&self, proc: &str, var: &str) -> bool {
        self.proc(proc).is_some_and(|sig| sig.is_handle(var))
    }

    /// Iterate over all procedure signatures.
    pub fn iter(&self) -> impl Iterator<Item = &ProcSignature> {
        self.procs.values()
    }
}

/// Type check `program`, returning the symbol tables on success.
pub fn check_program(program: &Program) -> Result<ProgramTypes, SilError> {
    let mut checker = Checker::new(program);
    checker.check();
    if checker.diagnostics.is_empty() {
        Ok(checker.types)
    } else {
        Err(SilError::Type {
            diagnostics: checker.diagnostics,
        })
    }
}

struct Checker<'a> {
    program: &'a Program,
    types: ProgramTypes,
    diagnostics: Vec<Diagnostic>,
}

impl<'a> Checker<'a> {
    fn new(program: &'a Program) -> Self {
        Checker {
            program,
            types: ProgramTypes::default(),
            diagnostics: Vec::new(),
        }
    }

    fn error(&mut self, message: impl Into<String>, span: Span) {
        self.diagnostics.push(Diagnostic::error(message, span));
    }

    fn check(&mut self) {
        // Pass 1: collect signatures (so calls can be checked in any order).
        for proc in &self.program.procedures {
            self.collect_signature(proc);
        }

        // Entry point.
        match self.program.main() {
            None => self.error("program has no `main` procedure", self.program.span),
            Some(main) => {
                if !main.params.is_empty() {
                    self.error("`main` must be parameterless", main.span);
                }
                if main.is_function() {
                    self.error("`main` must be a procedure, not a function", main.span);
                }
            }
        }

        // Pass 2: check bodies.
        for proc in &self.program.procedures {
            self.check_procedure(proc);
        }
    }

    fn collect_signature(&mut self, proc: &Procedure) {
        if self.types.procs.contains_key(&proc.name) {
            self.error(
                format!("duplicate procedure or function `{}`", proc.name),
                proc.span,
            );
            return;
        }
        let mut vars = HashMap::new();
        let mut params = Vec::new();
        for decl in proc.params.iter().chain(proc.locals.iter()) {
            let ty = Type::of(decl.ty);
            if vars.insert(decl.name.clone(), ty).is_some() {
                self.error(
                    format!(
                        "duplicate declaration of `{}` in `{}`",
                        decl.name, proc.name
                    ),
                    decl.span,
                );
            }
        }
        for decl in &proc.params {
            params.push((decl.name.clone(), Type::of(decl.ty)));
        }
        let return_type = proc.return_type.map(Type::of);
        if let (Some(rt), Some(rv)) = (return_type, proc.return_var.as_ref()) {
            match vars.get(rv) {
                None => self.error(
                    format!("return variable `{rv}` of `{}` is not declared", proc.name),
                    proc.span,
                ),
                Some(&vt) if vt != rt => self.error(
                    format!(
                        "return variable `{rv}` has type {vt} but `{}` returns {rt}",
                        proc.name
                    ),
                    proc.span,
                ),
                _ => {}
            }
        }
        self.types.procs.insert(
            proc.name.clone(),
            ProcSignature {
                name: proc.name.clone(),
                params,
                return_type,
                vars,
            },
        );
    }

    fn check_procedure(&mut self, proc: &Procedure) {
        let Some(sig) = self.types.procs.get(&proc.name).cloned() else {
            return;
        };
        self.check_stmt(&proc.body, &sig);
    }

    fn check_stmt(&mut self, stmt: &Stmt, sig: &ProcSignature) {
        match stmt {
            Stmt::Assign { lhs, rhs, span } => self.check_assign(lhs, rhs, *span, sig),
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                span,
            } => {
                self.expect_type(cond, Type::Bool, *span, sig);
                self.check_stmt(then_branch, sig);
                if let Some(e) = else_branch {
                    self.check_stmt(e, sig);
                }
            }
            Stmt::While { cond, body, span } => {
                self.expect_type(cond, Type::Bool, *span, sig);
                self.check_stmt(body, sig);
            }
            Stmt::Block { stmts, .. } => {
                for s in stmts {
                    self.check_stmt(s, sig);
                }
            }
            Stmt::Call { proc, args, span } => {
                self.check_call(proc, args, None, *span, sig);
            }
            Stmt::Par { arms, .. } => {
                for arm in arms {
                    self.check_stmt(arm, sig);
                }
            }
        }
    }

    fn check_assign(&mut self, lhs: &LValue, rhs: &Rhs, span: Span, sig: &ProcSignature) {
        let lhs_ty = match lhs {
            LValue::Var(name) => match sig.var_type(name) {
                Some(t) => Some(t),
                None => {
                    self.error(format!("undeclared variable `{name}`"), span);
                    None
                }
            },
            LValue::Field(path, _) => {
                self.check_handle_path(path, span, sig);
                Some(Type::Handle)
            }
            LValue::Value(path) => {
                self.check_handle_path(path, span, sig);
                Some(Type::Int)
            }
        };

        let rhs_ty = match rhs {
            Rhs::New => Some(Type::Handle),
            Rhs::Expr(e) => self.type_of_expr(e, span, sig),
            Rhs::Call(name, args) => self.check_call(name, args, Some(span), span, sig),
        };

        if let (Some(l), Some(r)) = (lhs_ty, rhs_ty) {
            if l != r {
                self.error(
                    format!("cannot assign {r} value to {l} location `{lhs}`"),
                    span,
                );
            }
        }
    }

    /// Check a call; returns the result type for function calls.
    fn check_call(
        &mut self,
        name: &str,
        args: &[Expr],
        expects_value: Option<Span>,
        span: Span,
        sig: &ProcSignature,
    ) -> Option<Type> {
        let Some(callee) = self.types.procs.get(name).cloned() else {
            self.error(
                format!("call to undefined procedure or function `{name}`"),
                span,
            );
            return None;
        };
        if expects_value.is_some() && callee.return_type.is_none() {
            self.error(
                format!("`{name}` is a procedure and returns no value"),
                span,
            );
        }
        if expects_value.is_none() && callee.return_type.is_some() {
            self.error(
                format!("`{name}` is a function; its result must be assigned"),
                span,
            );
        }
        if args.len() != callee.params.len() {
            self.error(
                format!(
                    "`{name}` expects {} argument(s) but was given {}",
                    callee.params.len(),
                    args.len()
                ),
                span,
            );
        }
        for (arg, (pname, pty)) in args.iter().zip(callee.params.iter()) {
            if let Some(aty) = self.type_of_expr(arg, span, sig) {
                if aty != *pty {
                    self.error(
                        format!(
                            "argument for parameter `{pname}` of `{name}` has type {aty}, expected {pty}"
                        ),
                        span,
                    );
                }
            }
        }
        callee.return_type
    }

    fn check_handle_path(&mut self, path: &HandlePath, span: Span, sig: &ProcSignature) {
        match sig.var_type(&path.base) {
            None => self.error(format!("undeclared variable `{}`", path.base), span),
            Some(Type::Handle) => {}
            Some(other) => self.error(
                format!(
                    "`{}` has type {other}; only handles may be dereferenced",
                    path.base
                ),
                span,
            ),
        }
    }

    fn expect_type(&mut self, expr: &Expr, expected: Type, span: Span, sig: &ProcSignature) {
        if let Some(actual) = self.type_of_expr(expr, span, sig) {
            if actual != expected {
                self.error(
                    format!("expected {expected} expression, found {actual}"),
                    span,
                );
            }
        }
    }

    fn type_of_expr(&mut self, expr: &Expr, span: Span, sig: &ProcSignature) -> Option<Type> {
        match expr {
            Expr::Int(_) => Some(Type::Int),
            Expr::Nil => Some(Type::Handle),
            Expr::Value(path) => {
                self.check_handle_path(path, span, sig);
                Some(Type::Int)
            }
            Expr::Path(path) => {
                if path.is_var() {
                    match sig.var_type(&path.base) {
                        Some(t) => Some(t),
                        None => {
                            self.error(format!("undeclared variable `{}`", path.base), span);
                            None
                        }
                    }
                } else {
                    self.check_handle_path(path, span, sig);
                    Some(Type::Handle)
                }
            }
            Expr::Unary(op, inner) => {
                let inner_ty = self.type_of_expr(inner, span, sig)?;
                match op {
                    UnOp::Neg => {
                        if inner_ty != Type::Int {
                            self.error(
                                format!("unary `-` requires an int, found {inner_ty}"),
                                span,
                            );
                        }
                        Some(Type::Int)
                    }
                    UnOp::Not => {
                        if inner_ty != Type::Bool {
                            self.error(format!("`not` requires a bool, found {inner_ty}"), span);
                        }
                        Some(Type::Bool)
                    }
                }
            }
            Expr::Binary(op, lhs, rhs) => {
                let lt = self.type_of_expr(lhs, span, sig);
                let rt = self.type_of_expr(rhs, span, sig);
                match op {
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
                        for t in [lt, rt].into_iter().flatten() {
                            if t != Type::Int {
                                self.error(
                                    format!("arithmetic operator `{op}` requires ints, found {t}"),
                                    span,
                                );
                            }
                        }
                        Some(Type::Int)
                    }
                    BinOp::Eq | BinOp::Ne => {
                        if let (Some(l), Some(r)) = (lt, rt) {
                            if l != r {
                                self.error(
                                    format!("cannot compare {l} with {r} using `{op}`"),
                                    span,
                                );
                            } else if l == Type::Bool {
                                self.error("cannot compare boolean expressions", span);
                            }
                        }
                        Some(Type::Bool)
                    }
                    BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                        for t in [lt, rt].into_iter().flatten() {
                            if t != Type::Int {
                                self.error(
                                    format!("ordering operator `{op}` requires ints, found {t}"),
                                    span,
                                );
                            }
                        }
                        Some(Type::Bool)
                    }
                    BinOp::And | BinOp::Or => {
                        for t in [lt, rt].into_iter().flatten() {
                            if t != Type::Bool {
                                self.error(
                                    format!("logical operator `{op}` requires bools, found {t}"),
                                    span,
                                );
                            }
                        }
                        Some(Type::Bool)
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn check(src: &str) -> Result<ProgramTypes, SilError> {
        check_program(&parse_program(src).unwrap())
    }

    fn check_err(src: &str) -> String {
        check(src).unwrap_err().to_string()
    }

    #[test]
    fn accepts_well_typed_program() {
        let types = check(crate::testsrc::ADD_AND_REVERSE).unwrap();
        let add_n = types.proc("add_n").unwrap();
        assert_eq!(add_n.params.len(), 2);
        assert_eq!(add_n.params[0].1, Type::Handle);
        assert_eq!(add_n.params[1].1, Type::Int);
        assert!(add_n.is_handle("l"));
        assert!(!add_n.is_handle("n"));
        assert_eq!(add_n.handle_params(), vec!["h"]);
        let build = types.proc("build").unwrap();
        assert_eq!(build.return_type, Some(Type::Handle));
    }

    #[test]
    fn rejects_missing_main() {
        let err = check_err("program p procedure helper() begin end");
        assert!(err.contains("main"), "{err}");
    }

    #[test]
    fn rejects_main_with_params() {
        let err = check_err("program p procedure main(x: int) begin end");
        assert!(err.contains("parameterless"), "{err}");
    }

    #[test]
    fn rejects_duplicate_declaration() {
        let err = check_err("program p procedure main() x: int; x: handle begin end");
        assert!(err.contains("duplicate declaration"), "{err}");
    }

    #[test]
    fn rejects_duplicate_procedure() {
        let err = check_err(
            "program p procedure main() begin end procedure f() begin end procedure f() begin end",
        );
        assert!(err.contains("duplicate procedure"), "{err}");
    }

    #[test]
    fn rejects_undeclared_variable() {
        let err = check_err("program p procedure main() begin x := 1 end");
        assert!(err.contains("undeclared variable"), "{err}");
    }

    #[test]
    fn rejects_int_handle_mismatch() {
        let err = check_err("program p procedure main() a: handle; x: int begin x := a end");
        assert!(err.contains("cannot assign handle value to int"), "{err}");
        let err = check_err("program p procedure main() a: handle begin a := 3 end");
        assert!(err.contains("cannot assign int value to handle"), "{err}");
    }

    #[test]
    fn rejects_dereference_of_int() {
        let err = check_err("program p procedure main() x: int; a: handle begin a := x.left end");
        assert!(err.contains("only handles may be dereferenced"), "{err}");
    }

    #[test]
    fn rejects_nil_compared_to_int() {
        let err = check_err("program p procedure main() x: int begin if x = nil then x := 1 end");
        assert!(err.contains("cannot compare int with handle"), "{err}");
    }

    #[test]
    fn rejects_integer_condition() {
        let err = check_err("program p procedure main() x: int begin if x then x := 1 end");
        assert!(err.contains("expected bool expression"), "{err}");
    }

    #[test]
    fn rejects_wrong_arity_call() {
        let err = check_err(
            "program p procedure f(a: handle) begin end procedure main() h: handle begin f(h, h) end",
        );
        assert!(err.contains("expects 1 argument"), "{err}");
    }

    #[test]
    fn rejects_wrong_argument_type() {
        let err = check_err(
            "program p procedure f(a: handle) begin end procedure main() x: int begin f(x) end",
        );
        assert!(err.contains("expected handle"), "{err}");
    }

    #[test]
    fn rejects_call_to_unknown() {
        let err = check_err("program p procedure main() begin f() end");
        assert!(err.contains("undefined procedure"), "{err}");
    }

    #[test]
    fn rejects_function_called_as_procedure() {
        let err = check_err(
            "program p function f() int x: int begin x := 1 end return (x) procedure main() begin f() end",
        );
        assert!(err.contains("must be assigned"), "{err}");
    }

    #[test]
    fn rejects_procedure_used_as_function() {
        let err = check_err(
            "program p procedure f() begin end procedure main() x: int begin x := f() end",
        );
        assert!(err.contains("returns no value"), "{err}");
    }

    #[test]
    fn rejects_bad_return_var() {
        let err = check_err(
            "program p function f() int a: handle begin a := nil end return (a) procedure main() x: int begin x := f() end",
        );
        assert!(err.contains("return variable"), "{err}");
    }

    #[test]
    fn accepts_parallel_statements() {
        let types = check(crate::testsrc::ADD_AND_REVERSE_PARALLEL).unwrap();
        assert!(types.proc("reverse").is_some());
    }

    #[test]
    fn value_field_is_int() {
        let err =
            check_err("program p procedure main() a, b: handle begin a := new(); b := a.value end");
        assert!(err.contains("cannot assign int value to handle"), "{err}");
    }
}
