//! Token definitions for the SIL lexer.

use crate::span::Span;
use std::fmt;

/// The kind of a lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    // Literals and identifiers
    Ident(String),
    Int(i64),

    // Keywords
    Program,
    Procedure,
    Function,
    Begin,
    End,
    If,
    Then,
    Else,
    While,
    Do,
    Return,
    Nil,
    New,
    IntType,
    HandleType,

    // Field selectors (keywords after `.`)
    Left,
    Right,
    Value,

    // Punctuation and operators
    Assign,    // :=
    Colon,     // :
    Semicolon, // ;
    Comma,     // ,
    Dot,       // .
    LParen,    // (
    RParen,    // )
    Plus,      // +
    Minus,     // -
    Star,      // *
    Slash,     // /
    Eq,        // =
    Ne,        // <> or !=
    Lt,        // <
    Le,        // <=
    Gt,        // >
    Ge,        // >=
    And,       // and
    Or,        // or
    Not,       // not
    Par,       // ||  (parallel composition, appears in output programs)

    /// End of input.
    Eof,
}

impl TokenKind {
    /// Keyword lookup for an identifier-shaped lexeme.
    pub fn keyword(ident: &str) -> Option<TokenKind> {
        Some(match ident {
            "program" => TokenKind::Program,
            "procedure" => TokenKind::Procedure,
            "function" => TokenKind::Function,
            "begin" => TokenKind::Begin,
            "end" => TokenKind::End,
            "if" => TokenKind::If,
            "then" => TokenKind::Then,
            "else" => TokenKind::Else,
            "while" => TokenKind::While,
            "do" => TokenKind::Do,
            "return" => TokenKind::Return,
            "nil" => TokenKind::Nil,
            "new" => TokenKind::New,
            "int" => TokenKind::IntType,
            "handle" => TokenKind::HandleType,
            "left" => TokenKind::Left,
            "right" => TokenKind::Right,
            "value" => TokenKind::Value,
            "and" => TokenKind::And,
            "or" => TokenKind::Or,
            "not" => TokenKind::Not,
            _ => return None,
        })
    }

    /// A short human-readable description used in parse errors.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Int(n) => format!("integer `{n}`"),
            other => format!("`{}`", other),
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TokenKind::Ident(s) => return write!(f, "{s}"),
            TokenKind::Int(n) => return write!(f, "{n}"),
            TokenKind::Program => "program",
            TokenKind::Procedure => "procedure",
            TokenKind::Function => "function",
            TokenKind::Begin => "begin",
            TokenKind::End => "end",
            TokenKind::If => "if",
            TokenKind::Then => "then",
            TokenKind::Else => "else",
            TokenKind::While => "while",
            TokenKind::Do => "do",
            TokenKind::Return => "return",
            TokenKind::Nil => "nil",
            TokenKind::New => "new",
            TokenKind::IntType => "int",
            TokenKind::HandleType => "handle",
            TokenKind::Left => "left",
            TokenKind::Right => "right",
            TokenKind::Value => "value",
            TokenKind::Assign => ":=",
            TokenKind::Colon => ":",
            TokenKind::Semicolon => ";",
            TokenKind::Comma => ",",
            TokenKind::Dot => ".",
            TokenKind::LParen => "(",
            TokenKind::RParen => ")",
            TokenKind::Plus => "+",
            TokenKind::Minus => "-",
            TokenKind::Star => "*",
            TokenKind::Slash => "/",
            TokenKind::Eq => "=",
            TokenKind::Ne => "<>",
            TokenKind::Lt => "<",
            TokenKind::Le => "<=",
            TokenKind::Gt => ">",
            TokenKind::Ge => ">=",
            TokenKind::And => "and",
            TokenKind::Or => "or",
            TokenKind::Not => "not",
            TokenKind::Par => "||",
            TokenKind::Eof => "<eof>",
        };
        write!(f, "{s}")
    }
}

/// A token: a kind plus the span it occupies in the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub span: Span,
}

impl Token {
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup() {
        assert_eq!(TokenKind::keyword("while"), Some(TokenKind::While));
        assert_eq!(TokenKind::keyword("handle"), Some(TokenKind::HandleType));
        assert_eq!(TokenKind::keyword("lefty"), None);
        assert_eq!(TokenKind::keyword("Left"), None, "keywords are lowercase");
    }

    #[test]
    fn display_round_trips_punctuation() {
        assert_eq!(TokenKind::Assign.to_string(), ":=");
        assert_eq!(TokenKind::Par.to_string(), "||");
        assert_eq!(TokenKind::Ne.to_string(), "<>");
        assert_eq!(TokenKind::Ident("abc".into()).to_string(), "abc");
        assert_eq!(TokenKind::Int(42).to_string(), "42");
    }

    #[test]
    fn describe_quotes_symbols() {
        assert_eq!(TokenKind::Semicolon.describe(), "`;`");
        assert_eq!(TokenKind::Ident("x".into()).describe(), "identifier `x`");
    }
}
