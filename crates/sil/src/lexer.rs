//! A hand-written lexer for SIL.
//!
//! The lexer converts a source string into a vector of [`Token`]s.  Comments
//! are written `{ ... }` (as in the paper's example programs) and are
//! discarded; they may not nest.

use crate::error::SilError;
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Tokenize `src` into a vector of tokens terminated by [`TokenKind::Eof`].
pub fn tokenize(src: &str) -> Result<Vec<Token>, SilError> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    tokens: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            tokens: Vec::new(),
        }
    }

    fn run(mut self) -> Result<Vec<Token>, SilError> {
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let c = self.bytes[self.pos];
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.pos += 1;
                }
                b'{' => self.skip_comment()?,
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.lex_ident(start),
                b'0'..=b'9' => self.lex_number(start)?,
                b':' => {
                    if self.peek(1) == Some(b'=') {
                        self.push(TokenKind::Assign, start, start + 2);
                        self.pos += 2;
                    } else {
                        self.push(TokenKind::Colon, start, start + 1);
                        self.pos += 1;
                    }
                }
                b';' => self.single(TokenKind::Semicolon, start),
                b',' => self.single(TokenKind::Comma, start),
                b'.' => self.single(TokenKind::Dot, start),
                b'(' => self.single(TokenKind::LParen, start),
                b')' => self.single(TokenKind::RParen, start),
                b'+' => self.single(TokenKind::Plus, start),
                b'-' => self.single(TokenKind::Minus, start),
                b'*' => self.single(TokenKind::Star, start),
                b'/' => self.single(TokenKind::Slash, start),
                b'=' => self.single(TokenKind::Eq, start),
                b'!' => {
                    if self.peek(1) == Some(b'=') {
                        self.push(TokenKind::Ne, start, start + 2);
                        self.pos += 2;
                    } else {
                        return Err(SilError::lex(
                            "unexpected character `!` (did you mean `!=`?)",
                            Span::new(start as u32, start as u32 + 1),
                        ));
                    }
                }
                b'<' => match self.peek(1) {
                    Some(b'>') => {
                        self.push(TokenKind::Ne, start, start + 2);
                        self.pos += 2;
                    }
                    Some(b'=') => {
                        self.push(TokenKind::Le, start, start + 2);
                        self.pos += 2;
                    }
                    _ => self.single(TokenKind::Lt, start),
                },
                b'>' => {
                    if self.peek(1) == Some(b'=') {
                        self.push(TokenKind::Ge, start, start + 2);
                        self.pos += 2;
                    } else {
                        self.single(TokenKind::Gt, start);
                    }
                }
                b'|' => {
                    if self.peek(1) == Some(b'|') {
                        self.push(TokenKind::Par, start, start + 2);
                        self.pos += 2;
                    } else {
                        return Err(SilError::lex(
                            "unexpected character `|` (did you mean `||`?)",
                            Span::new(start as u32, start as u32 + 1),
                        ));
                    }
                }
                other => {
                    return Err(SilError::lex(
                        format!("unexpected character `{}`", other as char),
                        Span::new(start as u32, start as u32 + 1),
                    ));
                }
            }
        }
        let end = self.bytes.len() as u32;
        self.tokens
            .push(Token::new(TokenKind::Eof, Span::new(end, end)));
        Ok(self.tokens)
    }

    fn peek(&self, offset: usize) -> Option<u8> {
        self.bytes.get(self.pos + offset).copied()
    }

    fn push(&mut self, kind: TokenKind, lo: usize, hi: usize) {
        self.tokens
            .push(Token::new(kind, Span::new(lo as u32, hi as u32)));
    }

    fn single(&mut self, kind: TokenKind, start: usize) {
        self.push(kind, start, start + 1);
        self.pos += 1;
    }

    fn skip_comment(&mut self) -> Result<(), SilError> {
        let start = self.pos;
        self.pos += 1; // consume `{`
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'}' {
                self.pos += 1;
                return Ok(());
            }
            self.pos += 1;
        }
        Err(SilError::lex(
            "unterminated comment (missing `}`)",
            Span::new(start as u32, self.bytes.len() as u32),
        ))
    }

    fn lex_ident(&mut self, start: usize) {
        while self.pos < self.bytes.len() {
            let c = self.bytes[self.pos];
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = &self.src[start..self.pos];
        let kind = TokenKind::keyword(text).unwrap_or_else(|| TokenKind::Ident(text.to_string()));
        self.push(kind, start, self.pos);
    }

    fn lex_number(&mut self, start: usize) -> Result<(), SilError> {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        let text = &self.src[start..self.pos];
        let value: i64 = text.parse().map_err(|_| {
            SilError::lex(
                format!("integer literal `{text}` out of range"),
                Span::new(start as u32, self.pos as u32),
            )
        })?;
        self.push(TokenKind::Int(value), start, self.pos);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn empty_input_yields_eof() {
        assert_eq!(kinds(""), vec![TokenKind::Eof]);
        assert_eq!(kinds("   \n\t "), vec![TokenKind::Eof]);
    }

    #[test]
    fn keywords_and_identifiers() {
        assert_eq!(
            kinds("program add_n root"),
            vec![
                TokenKind::Program,
                TokenKind::Ident("add_n".into()),
                TokenKind::Ident("root".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn assignment_and_field_access() {
        assert_eq!(
            kinds("a := b.left"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Assign,
                TokenKind::Ident("b".into()),
                TokenKind::Dot,
                TokenKind::Left,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("<> != <= >= < > ="),
            vec![
                TokenKind::Ne,
                TokenKind::Ne,
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::Lt,
                TokenKind::Gt,
                TokenKind::Eq,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn parallel_bars() {
        assert_eq!(
            kinds("a := b || c := d"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Assign,
                TokenKind::Ident("b".into()),
                TokenKind::Par,
                TokenKind::Ident("c".into()),
                TokenKind::Assign,
                TokenKind::Ident("d".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("x := 42 + 0"),
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Assign,
                TokenKind::Int(42),
                TokenKind::Plus,
                TokenKind::Int(0),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a { this is ignored } := { and this } nil"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Assign,
                TokenKind::Nil,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn unterminated_comment_is_error() {
        assert!(tokenize("a { oops").is_err());
    }

    #[test]
    fn stray_bang_is_error() {
        assert!(tokenize("a ! b").is_err());
    }

    #[test]
    fn stray_bar_is_error() {
        assert!(tokenize("a | b").is_err());
    }

    #[test]
    fn unexpected_character_is_error() {
        let err = tokenize("a # b").unwrap_err();
        assert!(err.to_string().contains("unexpected character"));
    }

    #[test]
    fn spans_cover_lexemes() {
        let toks = tokenize("ab := 12").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 2));
        assert_eq!(toks[1].span, Span::new(3, 5));
        assert_eq!(toks[2].span, Span::new(6, 8));
    }

    #[test]
    fn huge_integer_is_error() {
        assert!(tokenize("x := 99999999999999999999999").is_err());
    }

    #[test]
    fn field_keywords() {
        assert_eq!(
            kinds("h.value h.left h.right"),
            vec![
                TokenKind::Ident("h".into()),
                TokenKind::Dot,
                TokenKind::Value,
                TokenKind::Ident("h".into()),
                TokenKind::Dot,
                TokenKind::Left,
                TokenKind::Ident("h".into()),
                TokenKind::Dot,
                TokenKind::Right,
                TokenKind::Eof
            ]
        );
    }
}
