//! Diagnostics and error types shared by the SIL front end.

use crate::span::{SourceMap, Span};
use std::fmt;

/// The severity of a [`Diagnostic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    Error,
    Warning,
    Note,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Warning => write!(f, "warning"),
            Severity::Note => write!(f, "note"),
        }
    }
}

/// A single diagnostic message attached to a source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub severity: Severity,
    pub message: String,
    pub span: Span,
}

impl Diagnostic {
    pub fn error(message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            severity: Severity::Error,
            message: message.into(),
            span,
        }
    }

    pub fn warning(message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            message: message.into(),
            span,
        }
    }

    /// Render with line/column information resolved against `src`.
    pub fn render(&self, src: &str) -> String {
        let sm = SourceMap::new(src);
        let pos = sm.span_start(self.span);
        format!("{}: {} (at {})", self.severity, self.message, pos)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} [{}]", self.severity, self.message, self.span)
    }
}

/// Errors produced anywhere in the SIL front end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SilError {
    /// The lexer encountered a character it cannot tokenize.
    Lex { message: String, span: Span },
    /// The parser rejected the token stream.
    Parse { message: String, span: Span },
    /// The type checker rejected the program.
    Type { diagnostics: Vec<Diagnostic> },
}

impl SilError {
    pub fn lex(message: impl Into<String>, span: Span) -> Self {
        SilError::Lex {
            message: message.into(),
            span,
        }
    }

    pub fn parse(message: impl Into<String>, span: Span) -> Self {
        SilError::Parse {
            message: message.into(),
            span,
        }
    }

    /// The primary span of the error, if it has one.
    pub fn span(&self) -> Option<Span> {
        match self {
            SilError::Lex { span, .. } | SilError::Parse { span, .. } => Some(*span),
            SilError::Type { diagnostics } => diagnostics.first().map(|d| d.span),
        }
    }

    /// Render the error with positions resolved against `src`.
    pub fn render(&self, src: &str) -> String {
        let sm = SourceMap::new(src);
        match self {
            SilError::Lex { message, span } => {
                format!("lex error: {} (at {})", message, sm.span_start(*span))
            }
            SilError::Parse { message, span } => {
                format!("parse error: {} (at {})", message, sm.span_start(*span))
            }
            SilError::Type { diagnostics } => diagnostics
                .iter()
                .map(|d| d.render(src))
                .collect::<Vec<_>>()
                .join("\n"),
        }
    }
}

impl fmt::Display for SilError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SilError::Lex { message, span } => write!(f, "lex error: {} [{}]", message, span),
            SilError::Parse { message, span } => {
                write!(f, "parse error: {} [{}]", message, span)
            }
            SilError::Type { diagnostics } => {
                write!(f, "type error:")?;
                for d in diagnostics {
                    write!(f, "\n  {}", d)?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for SilError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagnostic_render_resolves_position() {
        let src = "ab\ncdef";
        let d = Diagnostic::error("bad thing", Span::new(4, 5));
        let rendered = d.render(src);
        assert!(rendered.contains("error"), "{rendered}");
        assert!(rendered.contains("2:2"), "{rendered}");
    }

    #[test]
    fn error_display_variants() {
        let e = SilError::lex("bad char", Span::new(0, 1));
        assert!(e.to_string().contains("lex error"));
        let e = SilError::parse("expected ident", Span::new(3, 4));
        assert!(e.to_string().contains("parse error"));
        let e = SilError::Type {
            diagnostics: vec![Diagnostic::error("mismatch", Span::new(1, 2))],
        };
        assert!(e.to_string().contains("type error"));
        assert_eq!(e.span(), Some(Span::new(1, 2)));
    }

    #[test]
    fn severity_display() {
        assert_eq!(Severity::Error.to_string(), "error");
        assert_eq!(Severity::Warning.to_string(), "warning");
        assert_eq!(Severity::Note.to_string(), "note");
    }
}
