//! Classification of normalized assignments into the paper's *basic handle
//! statements*.
//!
//! The path-matrix analysis, the interference functions and the interpreter
//! all dispatch on the shape of an assignment.  [`BasicStmt::classify`] gives
//! them a single, exhaustive view: given an [`Stmt::Assign`] (or a call) in a
//! normalized program together with the enclosing procedure's symbol table,
//! it returns which of the paper's statement forms it is.

use crate::ast::*;
use crate::types::{ProcSignature, Type};

/// The basic statement forms of the paper (Section 3.2) plus the scalar and
/// call forms needed to cover every normalized statement.
#[derive(Debug, Clone, PartialEq)]
pub enum BasicStmt<'a> {
    /// `a := nil` where `a` is a handle.
    AssignNil { dst: &'a str },
    /// `a := new()`.
    AssignNew { dst: &'a str },
    /// `a := b` where both are handles.
    AssignCopy { dst: &'a str, src: &'a str },
    /// `a := b.left` / `a := b.right`.
    AssignLoad {
        dst: &'a str,
        src: &'a str,
        field: Field,
    },
    /// `a.left := b` / `a.right := b`.
    StoreField {
        dst: &'a str,
        field: Field,
        src: &'a str,
    },
    /// `a.left := nil` / `a.right := nil`.
    StoreFieldNil { dst: &'a str, field: Field },
    /// `x := a.value` — the value-load form singled out in Figure 5; `expr`
    /// is exactly `a.value`.
    ValueLoad { dst: &'a str, src: &'a str },
    /// `a.value := e` — the value-store form; `e` is an integer expression.
    ValueStore { dst: &'a str, value: &'a Expr },
    /// `x := e` — a scalar (integer) assignment.  `e` may read `.value`
    /// fields of handle variables.
    ScalarAssign { dst: &'a str, value: &'a Expr },
    /// `x := f(args)` / `a := f(args)` — a function-call assignment.
    FuncAssign {
        dst: &'a str,
        func: &'a str,
        args: &'a [Expr],
    },
    /// `p(args)` — a procedure call.
    ProcCall { proc: &'a str, args: &'a [Expr] },
}

impl<'a> BasicStmt<'a> {
    /// Classify a normalized statement.  Returns `None` for compound
    /// statements (`if`, `while`, blocks, `||`) and for assignments that are
    /// not in basic form (i.e. the program was not normalized).
    pub fn classify(stmt: &'a Stmt, sig: &ProcSignature) -> Option<BasicStmt<'a>> {
        match stmt {
            Stmt::Call { proc, args, .. } => Some(BasicStmt::ProcCall { proc, args }),
            Stmt::Assign { lhs, rhs, .. } => Self::classify_assign(lhs, rhs, sig),
            _ => None,
        }
    }

    fn classify_assign(
        lhs: &'a LValue,
        rhs: &'a Rhs,
        sig: &ProcSignature,
    ) -> Option<BasicStmt<'a>> {
        match lhs {
            LValue::Var(dst) => {
                let dst_ty = sig.var_type(dst)?;
                match rhs {
                    Rhs::New => Some(BasicStmt::AssignNew { dst }),
                    Rhs::Call(func, args) => Some(BasicStmt::FuncAssign { dst, func, args }),
                    Rhs::Expr(Expr::Nil) => Some(BasicStmt::AssignNil { dst }),
                    Rhs::Expr(expr) if dst_ty == Type::Handle => match expr {
                        Expr::Path(p) if p.is_var() => {
                            Some(BasicStmt::AssignCopy { dst, src: &p.base })
                        }
                        Expr::Path(p) if p.fields.len() == 1 => Some(BasicStmt::AssignLoad {
                            dst,
                            src: &p.base,
                            field: p.fields[0],
                        }),
                        _ => None,
                    },
                    Rhs::Expr(expr) => match expr {
                        Expr::Value(p) if p.is_var() => {
                            Some(BasicStmt::ValueLoad { dst, src: &p.base })
                        }
                        _ => Some(BasicStmt::ScalarAssign { dst, value: expr }),
                    },
                }
            }
            LValue::Field(path, field) if path.is_var() => match rhs {
                Rhs::Expr(Expr::Nil) => Some(BasicStmt::StoreFieldNil {
                    dst: &path.base,
                    field: *field,
                }),
                Rhs::Expr(Expr::Path(p)) if p.is_var() => Some(BasicStmt::StoreField {
                    dst: &path.base,
                    field: *field,
                    src: &p.base,
                }),
                _ => None,
            },
            LValue::Value(path) if path.is_var() => match rhs {
                Rhs::Expr(expr) => Some(BasicStmt::ValueStore {
                    dst: &path.base,
                    value: expr,
                }),
                _ => None,
            },
            _ => None,
        }
    }

    /// Whether this statement can modify the *structure* of the heap
    /// (as opposed to only scalar values).
    pub fn is_structural_update(&self) -> bool {
        matches!(
            self,
            BasicStmt::StoreField { .. } | BasicStmt::StoreFieldNil { .. }
        )
    }

    /// Whether this statement writes to a node's `value` field.
    pub fn is_value_update(&self) -> bool {
        matches!(self, BasicStmt::ValueStore { .. })
    }

    /// The handle variable written by this statement, if any.
    pub fn defined_handle(&self) -> Option<&'a str> {
        match self {
            BasicStmt::AssignNil { dst }
            | BasicStmt::AssignNew { dst }
            | BasicStmt::AssignCopy { dst, .. }
            | BasicStmt::AssignLoad { dst, .. } => Some(dst),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_stmt;
    use crate::types::{ProcSignature, Type};
    use std::collections::HashMap;

    fn test_sig() -> ProcSignature {
        let mut vars = HashMap::new();
        for h in ["a", "b", "h", "l", "r"] {
            vars.insert(h.to_string(), Type::Handle);
        }
        for i in ["x", "y", "n"] {
            vars.insert(i.to_string(), Type::Int);
        }
        ProcSignature {
            name: "test".into(),
            params: vec![],
            return_type: None,
            vars,
        }
    }

    fn classify_src(src: &str) -> BasicStmt<'static> {
        let stmt = Box::leak(Box::new(parse_stmt(src).unwrap()));
        let sig = Box::leak(Box::new(test_sig()));
        BasicStmt::classify(stmt, sig).unwrap_or_else(|| panic!("{src} did not classify"))
    }

    #[test]
    fn classifies_all_paper_forms() {
        assert_eq!(classify_src("a := nil"), BasicStmt::AssignNil { dst: "a" });
        assert_eq!(
            classify_src("a := new()"),
            BasicStmt::AssignNew { dst: "a" }
        );
        assert_eq!(
            classify_src("a := b"),
            BasicStmt::AssignCopy { dst: "a", src: "b" }
        );
        assert_eq!(
            classify_src("a := b.left"),
            BasicStmt::AssignLoad {
                dst: "a",
                src: "b",
                field: Field::Left
            }
        );
        assert_eq!(
            classify_src("a.right := b"),
            BasicStmt::StoreField {
                dst: "a",
                field: Field::Right,
                src: "b"
            }
        );
        assert_eq!(
            classify_src("a.left := nil"),
            BasicStmt::StoreFieldNil {
                dst: "a",
                field: Field::Left
            }
        );
        assert_eq!(
            classify_src("x := a.value"),
            BasicStmt::ValueLoad { dst: "x", src: "a" }
        );
        assert!(matches!(
            classify_src("a.value := x + 1"),
            BasicStmt::ValueStore { dst: "a", .. }
        ));
        assert!(matches!(
            classify_src("x := y + 1"),
            BasicStmt::ScalarAssign { dst: "x", .. }
        ));
        assert!(matches!(
            classify_src("x := y"),
            BasicStmt::ScalarAssign { dst: "x", .. }
        ));
        assert!(matches!(
            classify_src("visit(a, x)"),
            BasicStmt::ProcCall { proc: "visit", .. }
        ));
        assert!(matches!(
            classify_src("a := copy(b)"),
            BasicStmt::FuncAssign {
                dst: "a",
                func: "copy",
                ..
            }
        ));
    }

    #[test]
    fn copy_between_ints_is_scalar() {
        // `x := y` must not classify as a handle copy
        assert!(matches!(
            classify_src("x := y"),
            BasicStmt::ScalarAssign { .. }
        ));
    }

    #[test]
    fn compound_statements_do_not_classify() {
        let sig = test_sig();
        let stmt = parse_stmt("if a <> nil then a := nil").unwrap();
        assert!(BasicStmt::classify(&stmt, &sig).is_none());
        let stmt = parse_stmt("begin a := nil end").unwrap();
        assert!(BasicStmt::classify(&stmt, &sig).is_none());
        let stmt = parse_stmt("a := nil || b := nil").unwrap();
        assert!(BasicStmt::classify(&stmt, &sig).is_none());
    }

    #[test]
    fn non_basic_assignment_does_not_classify() {
        let sig = test_sig();
        let stmt = parse_stmt("a := b.left.right").unwrap();
        assert!(BasicStmt::classify(&stmt, &sig).is_none());
        let stmt = parse_stmt("a.left.right := b").unwrap();
        assert!(BasicStmt::classify(&stmt, &sig).is_none());
    }

    #[test]
    fn update_kind_predicates() {
        assert!(classify_src("a.left := b").is_structural_update());
        assert!(classify_src("a.left := nil").is_structural_update());
        assert!(!classify_src("a.value := x").is_structural_update());
        assert!(classify_src("a.value := x").is_value_update());
        assert!(!classify_src("a := b.left").is_structural_update());
    }

    #[test]
    fn defined_handle() {
        assert_eq!(classify_src("a := b.left").defined_handle(), Some("a"));
        assert_eq!(classify_src("a.left := b").defined_handle(), None);
        assert_eq!(classify_src("x := a.value").defined_handle(), None);
    }
}
