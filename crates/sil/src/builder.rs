//! A programmatic AST construction API.
//!
//! The workload generators and several benchmarks synthesize SIL programs of
//! parameterised size; building ASTs through this fluent interface is less
//! error-prone than formatting and re-parsing source strings (though both
//! routes are supported and tested to agree).

use crate::ast::*;
use crate::span::Span;

/// Build expressions.
pub mod expr {
    use super::*;

    pub fn int(n: i64) -> Expr {
        Expr::Int(n)
    }

    pub fn nil() -> Expr {
        Expr::Nil
    }

    pub fn var(name: &str) -> Expr {
        Expr::var(name)
    }

    pub fn load(base: &str, field: Field) -> Expr {
        Expr::Path(HandlePath::var(base).then(field))
    }

    pub fn value(base: &str) -> Expr {
        Expr::Value(HandlePath::var(base))
    }

    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary(op, Box::new(lhs), Box::new(rhs))
    }

    pub fn add(lhs: Expr, rhs: Expr) -> Expr {
        bin(BinOp::Add, lhs, rhs)
    }

    pub fn sub(lhs: Expr, rhs: Expr) -> Expr {
        bin(BinOp::Sub, lhs, rhs)
    }

    pub fn ne(lhs: Expr, rhs: Expr) -> Expr {
        bin(BinOp::Ne, lhs, rhs)
    }

    pub fn eq(lhs: Expr, rhs: Expr) -> Expr {
        bin(BinOp::Eq, lhs, rhs)
    }

    pub fn gt(lhs: Expr, rhs: Expr) -> Expr {
        bin(BinOp::Gt, lhs, rhs)
    }

    /// `h <> nil`, the guard of nearly every recursive tree procedure.
    pub fn not_nil(handle: &str) -> Expr {
        ne(var(handle), nil())
    }
}

/// Build statements.
pub mod stmt {
    use super::*;

    pub fn assign_var(dst: &str, rhs: Expr) -> Stmt {
        Stmt::Assign {
            lhs: LValue::Var(dst.to_string()),
            rhs: Rhs::Expr(rhs),
            span: Span::DUMMY,
        }
    }

    /// `dst := nil`
    pub fn assign_nil(dst: &str) -> Stmt {
        assign_var(dst, Expr::Nil)
    }

    /// `dst := new()`
    pub fn assign_new(dst: &str) -> Stmt {
        Stmt::Assign {
            lhs: LValue::Var(dst.to_string()),
            rhs: Rhs::New,
            span: Span::DUMMY,
        }
    }

    /// `dst := src`
    pub fn copy(dst: &str, src: &str) -> Stmt {
        assign_var(dst, Expr::var(src))
    }

    /// `dst := src.field`
    pub fn load(dst: &str, src: &str, field: Field) -> Stmt {
        assign_var(dst, expr::load(src, field))
    }

    /// `dst.field := src`
    pub fn store(dst: &str, field: Field, src: &str) -> Stmt {
        Stmt::Assign {
            lhs: LValue::Field(HandlePath::var(dst), field),
            rhs: Rhs::Expr(Expr::var(src)),
            span: Span::DUMMY,
        }
    }

    /// `dst.field := nil`
    pub fn store_nil(dst: &str, field: Field) -> Stmt {
        Stmt::Assign {
            lhs: LValue::Field(HandlePath::var(dst), field),
            rhs: Rhs::Expr(Expr::Nil),
            span: Span::DUMMY,
        }
    }

    /// `dst.value := e`
    pub fn store_value(dst: &str, e: Expr) -> Stmt {
        Stmt::Assign {
            lhs: LValue::Value(HandlePath::var(dst)),
            rhs: Rhs::Expr(e),
            span: Span::DUMMY,
        }
    }

    /// `dst := src.value`
    pub fn load_value(dst: &str, src: &str) -> Stmt {
        assign_var(dst, expr::value(src))
    }

    /// `dst := func(args)`
    pub fn call_fn(dst: &str, func: &str, args: Vec<Expr>) -> Stmt {
        Stmt::Assign {
            lhs: LValue::Var(dst.to_string()),
            rhs: Rhs::Call(func.to_string(), args),
            span: Span::DUMMY,
        }
    }

    /// `proc(args)`
    pub fn call(proc: &str, args: Vec<Expr>) -> Stmt {
        Stmt::Call {
            proc: proc.to_string(),
            args,
            span: Span::DUMMY,
        }
    }

    pub fn if_then(cond: Expr, then_branch: Stmt) -> Stmt {
        Stmt::If {
            cond,
            then_branch: Box::new(then_branch),
            else_branch: None,
            span: Span::DUMMY,
        }
    }

    pub fn if_then_else(cond: Expr, then_branch: Stmt, else_branch: Stmt) -> Stmt {
        Stmt::If {
            cond,
            then_branch: Box::new(then_branch),
            else_branch: Some(Box::new(else_branch)),
            span: Span::DUMMY,
        }
    }

    pub fn while_do(cond: Expr, body: Stmt) -> Stmt {
        Stmt::While {
            cond,
            body: Box::new(body),
            span: Span::DUMMY,
        }
    }

    pub fn block(stmts: Vec<Stmt>) -> Stmt {
        Stmt::block(stmts)
    }

    pub fn par(arms: Vec<Stmt>) -> Stmt {
        Stmt::par(arms)
    }
}

/// A fluent builder for procedures and functions.
pub struct ProcBuilder {
    name: Ident,
    params: Vec<Decl>,
    locals: Vec<Decl>,
    body: Vec<Stmt>,
    return_type: Option<TypeName>,
    return_var: Option<Ident>,
}

impl ProcBuilder {
    pub fn procedure(name: &str) -> Self {
        ProcBuilder {
            name: name.to_string(),
            params: Vec::new(),
            locals: Vec::new(),
            body: Vec::new(),
            return_type: None,
            return_var: None,
        }
    }

    pub fn function(name: &str, return_type: TypeName, return_var: &str) -> Self {
        let mut b = Self::procedure(name);
        b.return_type = Some(return_type);
        b.return_var = Some(return_var.to_string());
        b
    }

    pub fn param(mut self, name: &str, ty: TypeName) -> Self {
        self.params.push(Decl::new(name, ty));
        self
    }

    pub fn local(mut self, name: &str, ty: TypeName) -> Self {
        self.locals.push(Decl::new(name, ty));
        self
    }

    pub fn handle_locals(mut self, names: &[&str]) -> Self {
        for n in names {
            self.locals.push(Decl::new(*n, TypeName::Handle));
        }
        self
    }

    pub fn int_locals(mut self, names: &[&str]) -> Self {
        for n in names {
            self.locals.push(Decl::new(*n, TypeName::Int));
        }
        self
    }

    pub fn stmt(mut self, s: Stmt) -> Self {
        self.body.push(s);
        self
    }

    pub fn stmts(mut self, s: impl IntoIterator<Item = Stmt>) -> Self {
        self.body.extend(s);
        self
    }

    pub fn build(self) -> Procedure {
        Procedure {
            name: self.name,
            params: self.params,
            locals: self.locals,
            body: Stmt::block(self.body),
            return_type: self.return_type,
            return_var: self.return_var,
            span: Span::DUMMY,
        }
    }
}

/// A fluent builder for programs.
pub struct ProgramBuilder {
    name: Ident,
    procedures: Vec<Procedure>,
}

impl ProgramBuilder {
    pub fn new(name: &str) -> Self {
        ProgramBuilder {
            name: name.to_string(),
            procedures: Vec::new(),
        }
    }

    pub fn procedure(mut self, proc: Procedure) -> Self {
        self.procedures.push(proc);
        self
    }

    pub fn build(self) -> Program {
        Program {
            name: self.name,
            procedures: self.procedures,
            span: Span::DUMMY,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pretty::pretty_program;
    use crate::types::check_program;

    /// Rebuild the skeleton of the paper's `main` procedure via the builder
    /// and check it type checks and matches a parsed equivalent.
    #[test]
    fn builder_constructs_well_typed_program() {
        let main = ProcBuilder::procedure("main")
            .handle_locals(&["root", "lside", "rside"])
            .stmt(stmt::assign_new("root"))
            .stmt(stmt::load("lside", "root", Field::Left))
            .stmt(stmt::load("rside", "root", Field::Right))
            .stmt(stmt::call("add_n", vec![expr::var("lside"), expr::int(1)]))
            .stmt(stmt::call("add_n", vec![expr::var("rside"), expr::int(-1)]))
            .build();
        let add_n = ProcBuilder::procedure("add_n")
            .param("h", TypeName::Handle)
            .param("n", TypeName::Int)
            .handle_locals(&["l", "r"])
            .stmt(stmt::if_then(
                expr::not_nil("h"),
                stmt::block(vec![
                    stmt::store_value("h", expr::add(expr::value("h"), expr::var("n"))),
                    stmt::load("l", "h", Field::Left),
                    stmt::load("r", "h", Field::Right),
                    stmt::call("add_n", vec![expr::var("l"), expr::var("n")]),
                    stmt::call("add_n", vec![expr::var("r"), expr::var("n")]),
                ]),
            ))
            .build();
        let program = ProgramBuilder::new("built")
            .procedure(main)
            .procedure(add_n)
            .build();
        check_program(&program).expect("builder output type checks");
        let printed = pretty_program(&program);
        assert!(printed.contains("procedure add_n(h: handle; n: int)"));
        assert!(printed.contains("h.value := h.value + n"));
    }

    #[test]
    fn function_builder_sets_return() {
        let f = ProcBuilder::function("build", TypeName::Handle, "t")
            .param("depth", TypeName::Int)
            .handle_locals(&["t"])
            .stmt(stmt::assign_nil("t"))
            .build();
        assert!(f.is_function());
        assert_eq!(f.return_var.as_deref(), Some("t"));
    }

    #[test]
    fn parallel_builder() {
        let s = stmt::par(vec![
            stmt::load("l", "h", Field::Left),
            stmt::load("r", "h", Field::Right),
        ]);
        assert!(s.has_par());
        assert_eq!(
            crate::pretty::pretty_stmt(&s),
            "l := h.left || r := h.right"
        );
    }
}
