//! Live-variable analysis over the structured SIL AST.
//!
//! The paper defines: *"A handle `h` is live at a point `p` if there is some
//! execution path starting at `p` that uses `h`."*  Path matrices only need
//! to relate live handles, and the statement-sequence interference method of
//! §5.3 needs the set `L` of handles *used before being defined* in a
//! statement sequence.  This module provides both.
//!
//! The analysis is a standard backward dataflow over the structured AST (SIL
//! has no unstructured control flow), with a fixpoint for `while` loops.

use crate::ast::*;
use std::collections::BTreeSet;

/// The set of variable names (handles and integers) *read* by a statement,
/// not counting reads in nested statements' sub-structure — i.e. reads that
/// occur when the statement itself executes (conditions, right-hand sides,
/// dereferenced bases, call arguments).
pub fn direct_uses(stmt: &Stmt) -> BTreeSet<Ident> {
    let mut out = BTreeSet::new();
    match stmt {
        Stmt::Assign { lhs, rhs, .. } => {
            // Dereferencing the left-hand side reads the base handle.
            match lhs {
                LValue::Var(_) => {}
                LValue::Field(p, _) | LValue::Value(p) => {
                    out.insert(p.base.clone());
                }
            }
            match rhs {
                Rhs::Expr(e) => out.extend(e.variables()),
                Rhs::Call(_, args) => args.iter().for_each(|a| out.extend(a.variables())),
                Rhs::New => {}
            }
        }
        Stmt::Call { args, .. } => args.iter().for_each(|a| out.extend(a.variables())),
        Stmt::If { cond, .. } | Stmt::While { cond, .. } => out.extend(cond.variables()),
        Stmt::Block { .. } | Stmt::Par { .. } => {}
    }
    out
}

/// The variable *defined* (fully overwritten) by a statement, if any.
/// Field and value stores do not define a variable — they mutate the heap.
pub fn direct_def(stmt: &Stmt) -> Option<Ident> {
    match stmt {
        Stmt::Assign {
            lhs: LValue::Var(v),
            ..
        } => Some(v.clone()),
        _ => None,
    }
}

/// Variables used anywhere within `stmt` (including nested statements)
/// *before* being defined on that path — the `L` set of §5.3.
pub fn used_before_defined(stmt: &Stmt) -> BTreeSet<Ident> {
    // live-in with empty live-out gives exactly the upward-exposed uses
    live_in(stmt, &BTreeSet::new())
}

/// The set of variables live immediately before `stmt`, given the set live
/// immediately after it.
pub fn live_in(stmt: &Stmt, live_out: &BTreeSet<Ident>) -> BTreeSet<Ident> {
    match stmt {
        Stmt::Assign { .. } | Stmt::Call { .. } => {
            let mut live = live_out.clone();
            if let Some(def) = direct_def(stmt) {
                live.remove(&def);
            }
            live.extend(direct_uses(stmt));
            live
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
            ..
        } => {
            let mut live = live_in(then_branch, live_out);
            match else_branch {
                Some(e) => live.extend(live_in(e, live_out)),
                None => live.extend(live_out.iter().cloned()),
            }
            live.extend(cond.variables());
            live
        }
        Stmt::While { cond, body, .. } => {
            // Fixpoint: the loop may execute zero or more times.
            let mut live = live_out.clone();
            live.extend(cond.variables());
            loop {
                let mut next = live_in(body, &live);
                next.extend(live_out.iter().cloned());
                next.extend(cond.variables());
                if next == live {
                    return live;
                }
                live = next;
            }
        }
        Stmt::Block { stmts, .. } => {
            let mut live = live_out.clone();
            for s in stmts.iter().rev() {
                live = live_in(s, &live);
            }
            live
        }
        Stmt::Par { arms, .. } => {
            // All arms start from the same point; a variable is live before
            // the parallel statement if it is live into any arm.
            let mut live = BTreeSet::new();
            for arm in arms {
                live.extend(live_in(arm, live_out));
            }
            live
        }
    }
}

/// Live sets *before each statement* of a block body (and after the last),
/// given the variables live at block exit.  Returns `stmts.len() + 1` sets:
/// entry of each statement followed by the exit set.
pub fn live_points(stmts: &[Stmt], live_at_exit: &BTreeSet<Ident>) -> Vec<BTreeSet<Ident>> {
    let mut result = vec![BTreeSet::new(); stmts.len() + 1];
    result[stmts.len()] = live_at_exit.clone();
    for i in (0..stmts.len()).rev() {
        result[i] = live_in(&stmts[i], &result[i + 1]);
    }
    result
}

/// Restrict a set of names to the handle variables of `sig`.
pub fn handles_only(names: &BTreeSet<Ident>, sig: &crate::types::ProcSignature) -> BTreeSet<Ident> {
    names.iter().filter(|n| sig.is_handle(n)).cloned().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_stmt;

    fn set(names: &[&str]) -> BTreeSet<Ident> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn direct_uses_of_assignments() {
        assert_eq!(
            direct_uses(&parse_stmt("a := b.left").unwrap()),
            set(&["b"])
        );
        assert_eq!(
            direct_uses(&parse_stmt("a.left := b").unwrap()),
            set(&["a", "b"])
        );
        assert_eq!(
            direct_uses(&parse_stmt("h.value := h.value + n").unwrap()),
            set(&["h", "n"])
        );
        assert_eq!(direct_uses(&parse_stmt("a := new()").unwrap()), set(&[]));
        assert_eq!(
            direct_uses(&parse_stmt("f(a, x + y)").unwrap()),
            set(&["a", "x", "y"])
        );
    }

    #[test]
    fn direct_def_only_for_variable_targets() {
        assert_eq!(
            direct_def(&parse_stmt("a := b").unwrap()),
            Some("a".to_string())
        );
        assert_eq!(direct_def(&parse_stmt("a.left := b").unwrap()), None);
        assert_eq!(direct_def(&parse_stmt("a.value := 1").unwrap()), None);
    }

    #[test]
    fn straight_line_liveness() {
        let s = parse_stmt("begin a := b; c := a end").unwrap();
        // nothing live after; `b` is needed on entry, `a` is defined before use
        assert_eq!(used_before_defined(&s), set(&["b"]));
        // with `c` live at exit it stays live through nothing (it's defined)
        let live = live_in(&s, &set(&["c", "z"]));
        assert_eq!(live, set(&["b", "z"]));
    }

    #[test]
    fn definition_kills_liveness() {
        let s = parse_stmt("begin a := nil; b := a end").unwrap();
        assert_eq!(used_before_defined(&s), set(&[]));
    }

    #[test]
    fn field_store_does_not_kill() {
        let s = parse_stmt("begin a.left := b; c := a end").unwrap();
        assert_eq!(used_before_defined(&s), set(&["a", "b"]));
    }

    #[test]
    fn if_both_branches() {
        let s = parse_stmt("if x > 0 then a := b else a := c").unwrap();
        assert_eq!(used_before_defined(&s), set(&["b", "c", "x"]));
        // `a` live after: defined in both branches, so not live before
        let live = live_in(&s, &set(&["a"]));
        assert_eq!(live, set(&["b", "c", "x"]));
    }

    #[test]
    fn if_without_else_keeps_live_out() {
        let s = parse_stmt("if x > 0 then a := b").unwrap();
        let live = live_in(&s, &set(&["a"]));
        // `a` may flow around the if
        assert_eq!(live, set(&["a", "b", "x"]));
    }

    #[test]
    fn while_loop_fixpoint() {
        // Figure 3: l := h; while l.left <> nil do l := l.left
        let s = parse_stmt("begin l := h; while l.left <> nil do l := l.left end").unwrap();
        assert_eq!(used_before_defined(&s), set(&["h"]));
        // inside the loop, `l` is both used and defined; from the outside only
        // `h` is needed
        let w = parse_stmt("while l.left <> nil do l := l.left").unwrap();
        assert_eq!(used_before_defined(&w), set(&["l"]));
    }

    #[test]
    fn par_arms_union() {
        let s = parse_stmt("a := b || c := d").unwrap();
        assert_eq!(used_before_defined(&s), set(&["b", "d"]));
    }

    #[test]
    fn live_points_per_statement() {
        let s = parse_stmt("begin a := h; b := a.left; c := a.right end").unwrap();
        let Stmt::Block { stmts, .. } = &s else {
            unreachable!()
        };
        let pts = live_points(stmts, &set(&["b", "c"]));
        assert_eq!(pts.len(), 4);
        assert_eq!(pts[0], set(&["h"]));
        assert_eq!(pts[1], set(&["a"]));
        assert_eq!(pts[2], set(&["a", "b"]));
        assert_eq!(pts[3], set(&["b", "c"]));
    }
}
