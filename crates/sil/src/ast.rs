//! The SIL abstract syntax tree.
//!
//! The shape follows Figure 1 of the paper: a program is a set of procedures
//! and functions (the entry point is the parameterless procedure `main`);
//! statements are scalar assignments, handle statements, `if`, `while`,
//! blocks, procedure calls and function-call assignments.  We additionally
//! represent the *parallel statement* `s1 || s2 || ... || sn` that appears in
//! the paper's transformed output programs (Figure 8) so the parallelizer can
//! produce, and the runtime can execute, parallel SIL.
//!
//! General assignments may use compound access paths such as
//! `a.left.right := b.right`; [`crate::normalize`] lowers these to the *basic
//! handle statements* over which the path-matrix analysis is defined.

use crate::span::Span;
use std::fmt;

/// An identifier (variable, procedure or function name).
pub type Ident = String;

/// The structural fields of a binary-tree node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Field {
    Left,
    Right,
}

impl Field {
    /// The other structural field.
    pub fn opposite(self) -> Field {
        match self {
            Field::Left => Field::Right,
            Field::Right => Field::Left,
        }
    }

    /// All structural fields, in declaration order.
    pub const ALL: [Field; 2] = [Field::Left, Field::Right];
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Field::Left => write!(f, "left"),
            Field::Right => write!(f, "right"),
        }
    }
}

/// A compound handle access path: a base handle variable followed by zero or
/// more structural field selections, e.g. `h`, `h.left`, `h.left.right`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct HandlePath {
    pub base: Ident,
    pub fields: Vec<Field>,
}

impl HandlePath {
    /// A bare handle variable.
    pub fn var(base: impl Into<Ident>) -> Self {
        HandlePath {
            base: base.into(),
            fields: Vec::new(),
        }
    }

    /// Extend the path by one field selection.
    pub fn then(mut self, field: Field) -> Self {
        self.fields.push(field);
        self
    }

    /// Whether this path is just a variable (no field selections).
    pub fn is_var(&self) -> bool {
        self.fields.is_empty()
    }
}

impl fmt::Display for HandlePath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.base)?;
        for field in &self.fields {
            write!(f, ".{}", field)?;
        }
        Ok(())
    }
}

/// Binary operators over integers / booleans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl BinOp {
    /// Whether the operator produces a boolean (comparison / logical).
    pub fn is_boolean(self) -> bool {
        !matches!(self, BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div)
    }

    /// Whether the operator compares its operands (and therefore accepts two
    /// handles, as in `h <> nil`).
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "and",
            BinOp::Or => "or",
        };
        write!(f, "{s}")
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    Neg,
    Not,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnOp::Neg => write!(f, "-"),
            UnOp::Not => write!(f, "not"),
        }
    }
}

/// An expression.  SIL expressions are integer expressions, handle
/// expressions (a handle path or `nil`), or boolean conditions built from
/// comparisons and logical connectives.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// `nil` — the empty handle.
    Nil,
    /// A handle access path used as a value (`h`, `h.left`, ...).  A bare
    /// integer variable is also parsed as `Path` with no fields; the type
    /// checker resolves which it is.
    Path(HandlePath),
    /// `p.value` — the integer stored in the node named by handle path `p`.
    Value(HandlePath),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// A bare variable reference.
    pub fn var(name: impl Into<Ident>) -> Expr {
        Expr::Path(HandlePath::var(name))
    }

    /// If this expression is a bare variable, return its name.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            Expr::Path(p) if p.is_var() => Some(&p.base),
            _ => None,
        }
    }

    /// Collect every variable mentioned in the expression (handles and ints).
    pub fn variables(&self) -> Vec<Ident> {
        let mut out = Vec::new();
        self.collect_variables(&mut out);
        out
    }

    fn collect_variables(&self, out: &mut Vec<Ident>) {
        match self {
            Expr::Int(_) | Expr::Nil => {}
            Expr::Path(p) | Expr::Value(p) => out.push(p.base.clone()),
            Expr::Unary(_, e) => e.collect_variables(out),
            Expr::Binary(_, a, b) => {
                a.collect_variables(out);
                b.collect_variables(out);
            }
        }
    }
}

/// The left-hand side of an assignment.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LValue {
    /// `x := ...` or `a := ...` — a plain variable.
    Var(Ident),
    /// `p.left := ...` / `p.right := ...` — a structural field of the node
    /// named by the handle path `p`.
    Field(HandlePath, Field),
    /// `p.value := ...` — the value field of the node named by `p`.
    Value(HandlePath),
}

impl fmt::Display for LValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LValue::Var(v) => write!(f, "{v}"),
            LValue::Field(p, field) => write!(f, "{p}.{field}"),
            LValue::Value(p) => write!(f, "{p}.value"),
        }
    }
}

/// The right-hand side of an assignment.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Rhs {
    /// An expression (integer, handle path, `nil`, ...).
    Expr(Expr),
    /// `new()` — allocate a fresh node.
    New,
    /// `f(args)` — a function call whose result is assigned.
    Call(Ident, Vec<Expr>),
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `lhs := rhs` — covers scalar assignments, all basic handle statements
    /// and compound forms that [`crate::normalize`] lowers.
    Assign { lhs: LValue, rhs: Rhs, span: Span },
    /// `if cond then s [else s]`.
    If {
        cond: Expr,
        then_branch: Box<Stmt>,
        else_branch: Option<Box<Stmt>>,
        span: Span,
    },
    /// `while cond do s`.
    While {
        cond: Expr,
        body: Box<Stmt>,
        span: Span,
    },
    /// `begin s1; s2; ... end`.
    Block { stmts: Vec<Stmt>, span: Span },
    /// `p(args)` — a procedure call.
    Call {
        proc: Ident,
        args: Vec<Expr>,
        span: Span,
    },
    /// `s1 || s2 || ... || sn` — parallel composition: all arms start from the
    /// same state and execute concurrently; the statement completes when all
    /// arms complete.
    Par { arms: Vec<Stmt>, span: Span },
}

impl Stmt {
    /// The source span of the statement.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Assign { span, .. }
            | Stmt::If { span, .. }
            | Stmt::While { span, .. }
            | Stmt::Block { span, .. }
            | Stmt::Call { span, .. }
            | Stmt::Par { span, .. } => *span,
        }
    }

    /// Build a block from a vector of statements with a dummy span.
    pub fn block(stmts: Vec<Stmt>) -> Stmt {
        Stmt::Block {
            stmts,
            span: Span::DUMMY,
        }
    }

    /// Build a parallel statement from a vector of arms with a dummy span.
    pub fn par(arms: Vec<Stmt>) -> Stmt {
        Stmt::Par {
            arms,
            span: Span::DUMMY,
        }
    }

    /// Count the statements in this subtree (compound statements count as one
    /// plus their children).
    pub fn count(&self) -> usize {
        match self {
            Stmt::Assign { .. } | Stmt::Call { .. } => 1,
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => 1 + then_branch.count() + else_branch.as_ref().map_or(0, |e| e.count()),
            Stmt::While { body, .. } => 1 + body.count(),
            Stmt::Block { stmts, .. } => 1 + stmts.iter().map(Stmt::count).sum::<usize>(),
            Stmt::Par { arms, .. } => 1 + arms.iter().map(Stmt::count).sum::<usize>(),
        }
    }

    /// Whether the subtree contains any parallel composition.
    pub fn has_par(&self) -> bool {
        match self {
            Stmt::Par { .. } => true,
            Stmt::Assign { .. } | Stmt::Call { .. } => false,
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => then_branch.has_par() || else_branch.as_ref().is_some_and(|e| e.has_par()),
            Stmt::While { body, .. } => body.has_par(),
            Stmt::Block { stmts, .. } => stmts.iter().any(Stmt::has_par),
        }
    }
}

/// The declared type of a variable or parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TypeName {
    Int,
    Handle,
}

impl fmt::Display for TypeName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeName::Int => write!(f, "int"),
            TypeName::Handle => write!(f, "handle"),
        }
    }
}

/// A declared parameter or local variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decl {
    pub name: Ident,
    pub ty: TypeName,
    pub span: Span,
}

impl Decl {
    pub fn new(name: impl Into<Ident>, ty: TypeName) -> Self {
        Decl {
            name: name.into(),
            ty,
            span: Span::DUMMY,
        }
    }
}

/// A procedure or function definition.
///
/// Functions have `return_type = Some(..)` and a `return_var` naming the
/// local whose value is returned (`return (x)` in the concrete syntax).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Procedure {
    pub name: Ident,
    pub params: Vec<Decl>,
    pub locals: Vec<Decl>,
    pub body: Stmt,
    pub return_type: Option<TypeName>,
    pub return_var: Option<Ident>,
    pub span: Span,
}

impl Procedure {
    /// Whether this is a function (has a return value) rather than a procedure.
    pub fn is_function(&self) -> bool {
        self.return_type.is_some()
    }

    /// The declared handle-typed parameters, in order.
    pub fn handle_params(&self) -> Vec<&Decl> {
        self.params
            .iter()
            .filter(|d| d.ty == TypeName::Handle)
            .collect()
    }

    /// Look up a parameter or local declaration by name.
    pub fn decl(&self, name: &str) -> Option<&Decl> {
        self.params
            .iter()
            .chain(self.locals.iter())
            .find(|d| d.name == name)
    }
}

/// A whole SIL program: a name plus its procedures and functions.  The entry
/// point is the parameterless procedure `main`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    pub name: Ident,
    pub procedures: Vec<Procedure>,
    pub span: Span,
}

impl Program {
    /// Look up a procedure or function by name.
    pub fn procedure(&self, name: &str) -> Option<&Procedure> {
        self.procedures.iter().find(|p| p.name == name)
    }

    /// The entry procedure `main`, if present.
    pub fn main(&self) -> Option<&Procedure> {
        self.procedure("main")
    }

    /// Total number of statements in the program.
    pub fn statement_count(&self) -> usize {
        self.procedures.iter().map(|p| p.body.count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_opposite() {
        assert_eq!(Field::Left.opposite(), Field::Right);
        assert_eq!(Field::Right.opposite(), Field::Left);
    }

    #[test]
    fn handle_path_display() {
        let p = HandlePath::var("h").then(Field::Left).then(Field::Right);
        assert_eq!(p.to_string(), "h.left.right");
        assert!(!p.is_var());
        assert!(HandlePath::var("x").is_var());
    }

    #[test]
    fn expr_variables() {
        let e = Expr::Binary(
            BinOp::Add,
            Box::new(Expr::Value(HandlePath::var("h"))),
            Box::new(Expr::var("n")),
        );
        assert_eq!(e.variables(), vec!["h".to_string(), "n".to_string()]);
    }

    #[test]
    fn expr_as_var() {
        assert_eq!(Expr::var("x").as_var(), Some("x"));
        assert_eq!(
            Expr::Path(HandlePath::var("x").then(Field::Left)).as_var(),
            None
        );
        assert_eq!(Expr::Int(1).as_var(), None);
    }

    #[test]
    fn binop_classification() {
        assert!(BinOp::Eq.is_boolean());
        assert!(BinOp::And.is_boolean());
        assert!(!BinOp::Add.is_boolean());
        assert!(BinOp::Ne.is_comparison());
        assert!(!BinOp::And.is_comparison());
    }

    #[test]
    fn stmt_count_and_has_par() {
        let a = Stmt::Assign {
            lhs: LValue::Var("x".into()),
            rhs: Rhs::Expr(Expr::Int(1)),
            span: Span::DUMMY,
        };
        let block = Stmt::block(vec![a.clone(), a.clone()]);
        assert_eq!(block.count(), 3);
        assert!(!block.has_par());
        let par = Stmt::par(vec![a.clone(), a]);
        assert_eq!(par.count(), 3);
        assert!(par.has_par());
        let nested = Stmt::block(vec![par]);
        assert!(nested.has_par());
    }

    #[test]
    fn procedure_queries() {
        let p = Procedure {
            name: "add_n".into(),
            params: vec![
                Decl::new("h", TypeName::Handle),
                Decl::new("n", TypeName::Int),
            ],
            locals: vec![Decl::new("l", TypeName::Handle)],
            body: Stmt::block(vec![]),
            return_type: None,
            return_var: None,
            span: Span::DUMMY,
        };
        assert!(!p.is_function());
        assert_eq!(p.handle_params().len(), 1);
        assert_eq!(p.decl("l").unwrap().ty, TypeName::Handle);
        assert!(p.decl("zzz").is_none());
    }

    #[test]
    fn program_queries() {
        let prog = Program {
            name: "t".into(),
            procedures: vec![Procedure {
                name: "main".into(),
                params: vec![],
                locals: vec![],
                body: Stmt::block(vec![]),
                return_type: None,
                return_var: None,
                span: Span::DUMMY,
            }],
            span: Span::DUMMY,
        };
        assert!(prog.main().is_some());
        assert!(prog.procedure("nope").is_none());
        assert_eq!(prog.statement_count(), 1);
    }

    #[test]
    fn lvalue_display() {
        assert_eq!(LValue::Var("x".into()).to_string(), "x");
        assert_eq!(
            LValue::Field(HandlePath::var("h"), Field::Left).to_string(),
            "h.left"
        );
        assert_eq!(LValue::Value(HandlePath::var("h")).to_string(), "h.value");
    }
}
