//! A pretty printer for SIL programs.
//!
//! The output uses the same concrete syntax accepted by [`crate::parser`]
//! (round-tripping is tested), and prints parallel statements in the
//! `s1 || s2 || ... || sn` notation of the paper's Figure 8.

use crate::ast::*;

/// Render a whole program.
pub fn pretty_program(program: &Program) -> String {
    let mut out = String::new();
    out.push_str(&format!("program {}\n", program.name));
    for proc in &program.procedures {
        out.push('\n');
        out.push_str(&pretty_procedure(proc));
    }
    out
}

/// Render a single procedure or function.
pub fn pretty_procedure(proc: &Procedure) -> String {
    let mut out = String::new();
    let keyword = if proc.is_function() {
        "function"
    } else {
        "procedure"
    };
    out.push_str(&format!("{keyword} {}(", proc.name));
    out.push_str(&render_decls(&proc.params));
    out.push(')');
    if let Some(rt) = proc.return_type {
        out.push_str(&format!(" {rt}"));
    }
    out.push('\n');
    if !proc.locals.is_empty() {
        out.push_str(&format!("  {}\n", render_decls(&proc.locals)));
    }
    out.push_str(&render_stmt_at(&proc.body, 0, true));
    out.push('\n');
    if let Some(rv) = &proc.return_var {
        out.push_str(&format!("return ({rv})\n"));
    }
    out
}

/// Render a statement (top-level helper used in tests and reports).
pub fn pretty_stmt(stmt: &Stmt) -> String {
    render_stmt_at(stmt, 0, false)
}

/// Render an expression.
pub fn pretty_expr(expr: &Expr) -> String {
    render_expr(expr, 0)
}

fn render_decls(decls: &[Decl]) -> String {
    // Group consecutive declarations of the same type: `a, b: handle; n: int`.
    let mut groups: Vec<(Vec<&str>, TypeName)> = Vec::new();
    for d in decls {
        match groups.last_mut() {
            Some((names, ty)) if *ty == d.ty => names.push(&d.name),
            _ => groups.push((vec![&d.name], d.ty)),
        }
    }
    groups
        .iter()
        .map(|(names, ty)| format!("{}: {}", names.join(", "), ty))
        .collect::<Vec<_>>()
        .join("; ")
}

fn indent(level: usize) -> String {
    "  ".repeat(level)
}

fn render_stmt_at(stmt: &Stmt, level: usize, _top: bool) -> String {
    let pad = indent(level);
    match stmt {
        Stmt::Assign { lhs, rhs, .. } => format!("{pad}{lhs} := {}", render_rhs(rhs)),
        Stmt::Call { proc, args, .. } => {
            let args = args
                .iter()
                .map(|a| render_expr(a, 0))
                .collect::<Vec<_>>()
                .join(", ");
            format!("{pad}{proc}({args})")
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
            ..
        } => {
            let mut s = format!("{pad}if {} then\n", render_expr(cond, 0));
            s.push_str(&render_stmt_at(then_branch, level + 1, false));
            if let Some(e) = else_branch {
                s.push('\n');
                s.push_str(&format!("{pad}else\n"));
                s.push_str(&render_stmt_at(e, level + 1, false));
            }
            s
        }
        Stmt::While { cond, body, .. } => {
            let mut s = format!("{pad}while {} do\n", render_expr(cond, 0));
            s.push_str(&render_stmt_at(body, level + 1, false));
            s
        }
        Stmt::Block { stmts, .. } => {
            let mut s = format!("{pad}begin\n");
            for (i, st) in stmts.iter().enumerate() {
                s.push_str(&render_stmt_at(st, level + 1, false));
                if i + 1 < stmts.len() {
                    s.push(';');
                }
                s.push('\n');
            }
            s.push_str(&format!("{pad}end"));
            s
        }
        Stmt::Par { arms, .. } => {
            let rendered: Vec<String> = arms.iter().map(|a| render_stmt_at(a, 0, false)).collect();
            format!("{pad}{}", rendered.join(" || "))
        }
    }
}

fn render_rhs(rhs: &Rhs) -> String {
    match rhs {
        Rhs::New => "new()".to_string(),
        Rhs::Expr(e) => render_expr(e, 0),
        Rhs::Call(name, args) => {
            let args = args
                .iter()
                .map(|a| render_expr(a, 0))
                .collect::<Vec<_>>()
                .join(", ");
            format!("{name}({args})")
        }
    }
}

/// Operator precedence used to insert parentheses only where needed.
fn precedence(op: BinOp) -> u8 {
    match op {
        BinOp::Or => 1,
        BinOp::And => 2,
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 3,
        BinOp::Add | BinOp::Sub => 4,
        BinOp::Mul | BinOp::Div => 5,
    }
}

fn render_expr(expr: &Expr, parent_prec: u8) -> String {
    match expr {
        Expr::Int(n) => n.to_string(),
        Expr::Nil => "nil".to_string(),
        Expr::Path(p) => p.to_string(),
        Expr::Value(p) => format!("{p}.value"),
        Expr::Unary(op, inner) => match op {
            UnOp::Neg => format!("-{}", render_expr(inner, 6)),
            UnOp::Not => format!("not {}", render_expr(inner, 6)),
        },
        Expr::Binary(op, lhs, rhs) => {
            let prec = precedence(*op);
            let s = format!(
                "{} {} {}",
                render_expr(lhs, prec),
                op,
                render_expr(rhs, prec + 1)
            );
            if prec < parent_prec {
                format!("({s})")
            } else {
                s
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_program, parse_stmt};

    #[test]
    fn renders_basic_statements() {
        for src in [
            "a := nil",
            "a := new()",
            "a := b.left",
            "a.right := b",
            "a.value := x + 1",
            "x := a.value",
        ] {
            let stmt = parse_stmt(src).unwrap();
            assert_eq!(pretty_stmt(&stmt), src);
        }
    }

    #[test]
    fn renders_parallel_statement_with_bars() {
        let stmt = parse_stmt("l := h.left || r := h.right").unwrap();
        assert_eq!(pretty_stmt(&stmt), "l := h.left || r := h.right");
    }

    #[test]
    fn renders_negative_argument() {
        let stmt = parse_stmt("add_n(rside, -1)").unwrap();
        assert_eq!(pretty_stmt(&stmt), "add_n(rside, -1)");
    }

    #[test]
    fn expression_parenthesisation_is_minimal() {
        let e = parse_expr("(1 + 2) * 3").unwrap();
        assert_eq!(pretty_expr(&e), "(1 + 2) * 3");
        let e = parse_expr("1 + 2 * 3").unwrap();
        assert_eq!(pretty_expr(&e), "1 + 2 * 3");
        let e = parse_expr("1 - (2 - 3)").unwrap();
        assert_eq!(pretty_expr(&e), "1 - (2 - 3)");
    }

    #[test]
    fn program_round_trips_through_parser() {
        for src in [
            crate::testsrc::ADD_AND_REVERSE,
            crate::testsrc::ADD_AND_REVERSE_PARALLEL,
            crate::testsrc::LEFTMOST_LOOP,
            crate::testsrc::STRAIGHT_LINE,
        ] {
            let prog = parse_program(src).unwrap();
            let printed = pretty_program(&prog);
            let reparsed = parse_program(&printed)
                .unwrap_or_else(|e| panic!("pretty output failed to reparse: {e}\n{printed}"));
            // Compare while ignoring spans by re-printing.
            assert_eq!(printed, pretty_program(&reparsed));
            assert_eq!(prog.procedures.len(), reparsed.procedures.len());
            assert_eq!(prog.statement_count(), reparsed.statement_count());
        }
    }

    #[test]
    fn declaration_groups_are_compacted() {
        let src = r#"
program p
procedure main()
  a, b: handle; n: int; c: handle
begin
end
"#;
        let prog = parse_program(src).unwrap();
        let printed = pretty_program(&prog);
        assert!(
            printed.contains("a, b: handle; n: int; c: handle"),
            "{printed}"
        );
    }

    #[test]
    fn if_else_renders_and_reparses() {
        let stmt = parse_stmt("if h <> nil then begin l := h.left end else l := nil").unwrap();
        let printed = pretty_stmt(&stmt);
        let reparsed = parse_stmt(&printed).unwrap();
        assert_eq!(pretty_stmt(&reparsed), printed);
    }
}
