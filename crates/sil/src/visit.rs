//! Generic AST visitors and walkers.
//!
//! Downstream crates use these to enumerate statements, collect variable
//! uses, and rewrite statement trees without re-implementing the recursion.

use crate::ast::*;

/// A read-only statement visitor.  Implement the hooks you need; the default
/// implementations recurse into children via [`walk_stmt`].
pub trait Visitor {
    /// Called for every statement, before recursing into children.
    fn visit_stmt(&mut self, stmt: &Stmt) {
        walk_stmt(self, stmt);
    }

    /// Called for every expression occurring in a statement (assignments,
    /// conditions, call arguments).
    fn visit_expr(&mut self, _expr: &Expr) {}
}

/// Recurse into the children of `stmt`, invoking the visitor's hooks.
pub fn walk_stmt<V: Visitor + ?Sized>(visitor: &mut V, stmt: &Stmt) {
    match stmt {
        Stmt::Assign { rhs, .. } => match rhs {
            Rhs::Expr(e) => visitor.visit_expr(e),
            Rhs::Call(_, args) => {
                for a in args {
                    visitor.visit_expr(a);
                }
            }
            Rhs::New => {}
        },
        Stmt::Call { args, .. } => {
            for a in args {
                visitor.visit_expr(a);
            }
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
            ..
        } => {
            visitor.visit_expr(cond);
            visitor.visit_stmt(then_branch);
            if let Some(e) = else_branch {
                visitor.visit_stmt(e);
            }
        }
        Stmt::While { cond, body, .. } => {
            visitor.visit_expr(cond);
            visitor.visit_stmt(body);
        }
        Stmt::Block { stmts, .. } => {
            for s in stmts {
                visitor.visit_stmt(s);
            }
        }
        Stmt::Par { arms, .. } => {
            for a in arms {
                visitor.visit_stmt(a);
            }
        }
    }
}

/// Collect every simple (non-compound) statement in evaluation order.
pub fn collect_simple_stmts(stmt: &Stmt) -> Vec<&Stmt> {
    struct Collector<'a> {
        out: Vec<&'a Stmt>,
    }
    // A manual recursion keeps the borrow of `stmt` in the output.
    fn go<'a>(stmt: &'a Stmt, out: &mut Vec<&'a Stmt>) {
        match stmt {
            Stmt::Assign { .. } | Stmt::Call { .. } => out.push(stmt),
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                go(then_branch, out);
                if let Some(e) = else_branch {
                    go(e, out);
                }
            }
            Stmt::While { body, .. } => go(body, out),
            Stmt::Block { stmts, .. } => {
                for s in stmts {
                    go(s, out);
                }
            }
            Stmt::Par { arms, .. } => {
                for a in arms {
                    go(a, out);
                }
            }
        }
    }
    let mut c = Collector { out: Vec::new() };
    go(stmt, &mut c.out);
    c.out
}

/// Collect the names of every variable read or written anywhere in `stmt`.
pub fn collect_variables(stmt: &Stmt) -> Vec<Ident> {
    let mut out = Vec::new();
    fn expr_vars(e: &Expr, out: &mut Vec<Ident>) {
        out.extend(e.variables());
    }
    fn go(stmt: &Stmt, out: &mut Vec<Ident>) {
        match stmt {
            Stmt::Assign { lhs, rhs, .. } => {
                match lhs {
                    LValue::Var(v) => out.push(v.clone()),
                    LValue::Field(p, _) | LValue::Value(p) => out.push(p.base.clone()),
                }
                match rhs {
                    Rhs::Expr(e) => expr_vars(e, out),
                    Rhs::Call(_, args) => args.iter().for_each(|a| expr_vars(a, out)),
                    Rhs::New => {}
                }
            }
            Stmt::Call { args, .. } => args.iter().for_each(|a| expr_vars(a, out)),
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                expr_vars(cond, out);
                go(then_branch, out);
                if let Some(e) = else_branch {
                    go(e, out);
                }
            }
            Stmt::While { cond, body, .. } => {
                expr_vars(cond, out);
                go(body, out);
            }
            Stmt::Block { stmts, .. } => stmts.iter().for_each(|s| go(s, out)),
            Stmt::Par { arms, .. } => arms.iter().for_each(|a| go(a, out)),
        }
    }
    go(stmt, &mut out);
    out.sort();
    out.dedup();
    out
}

/// A statement rewriter: maps every statement bottom-up through `f`.
pub fn map_stmt(stmt: &Stmt, f: &mut impl FnMut(Stmt) -> Stmt) -> Stmt {
    let rebuilt = match stmt {
        Stmt::Assign { .. } | Stmt::Call { .. } => stmt.clone(),
        Stmt::If {
            cond,
            then_branch,
            else_branch,
            span,
        } => Stmt::If {
            cond: cond.clone(),
            then_branch: Box::new(map_stmt(then_branch, f)),
            else_branch: else_branch.as_ref().map(|e| Box::new(map_stmt(e, f))),
            span: *span,
        },
        Stmt::While { cond, body, span } => Stmt::While {
            cond: cond.clone(),
            body: Box::new(map_stmt(body, f)),
            span: *span,
        },
        Stmt::Block { stmts, span } => Stmt::Block {
            stmts: stmts.iter().map(|s| map_stmt(s, f)).collect(),
            span: *span,
        },
        Stmt::Par { arms, span } => Stmt::Par {
            arms: arms.iter().map(|a| map_stmt(a, f)).collect(),
            span: *span,
        },
    };
    f(rebuilt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_program, parse_stmt};

    #[test]
    fn collect_simple_stmts_in_order() {
        let s = parse_stmt(
            "begin a := nil; if a <> nil then b := a; while a <> nil do a := a.left end",
        )
        .unwrap();
        let simple = collect_simple_stmts(&s);
        assert_eq!(simple.len(), 3);
        assert!(matches!(simple[0], Stmt::Assign { .. }));
    }

    #[test]
    fn collect_variables_dedups() {
        let s = parse_stmt("begin a := b; b := a; x := a.value end").unwrap();
        let vars = collect_variables(&s);
        assert_eq!(
            vars,
            vec!["a".to_string(), "b".to_string(), "x".to_string()]
        );
    }

    #[test]
    fn visitor_counts_expressions() {
        struct Counter {
            stmts: usize,
            exprs: usize,
        }
        impl Visitor for Counter {
            fn visit_stmt(&mut self, stmt: &Stmt) {
                self.stmts += 1;
                walk_stmt(self, stmt);
            }
            fn visit_expr(&mut self, _expr: &Expr) {
                self.exprs += 1;
            }
        }
        let prog = parse_program(crate::testsrc::ADD_AND_REVERSE).unwrap();
        let mut c = Counter { stmts: 0, exprs: 0 };
        for p in &prog.procedures {
            c.visit_stmt(&p.body);
        }
        assert!(c.stmts > 20, "saw {} statements", c.stmts);
        assert!(c.exprs > 10, "saw {} expressions", c.exprs);
    }

    #[test]
    fn map_stmt_rewrites_bottom_up() {
        let s = parse_stmt("begin a := nil; b := nil end").unwrap();
        // rewrite every `x := nil` into `x := new()`
        let rewritten = map_stmt(&s, &mut |st| match st {
            Stmt::Assign {
                lhs,
                rhs: Rhs::Expr(Expr::Nil),
                span,
            } => Stmt::Assign {
                lhs,
                rhs: Rhs::New,
                span,
            },
            other => other,
        });
        let simple = collect_simple_stmts(&rewritten);
        assert!(simple
            .iter()
            .all(|s| matches!(s, Stmt::Assign { rhs: Rhs::New, .. })));
    }

    #[test]
    fn par_arms_are_visited() {
        let s = parse_stmt("a := nil || b := nil || c := nil").unwrap();
        assert_eq!(collect_simple_stmts(&s).len(), 3);
        assert_eq!(collect_variables(&s).len(), 3);
    }
}
