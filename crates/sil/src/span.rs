//! Source spans and position mapping.
//!
//! Every token and AST node carries a [`Span`] describing the byte range it
//! occupies in the original source text.  Spans are used by the diagnostics
//! in [`crate::error`] to report line/column positions.

use std::fmt;

/// A half-open byte range `[lo, hi)` into the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub lo: u32,
    /// Byte offset one past the last character.
    pub hi: u32,
}

impl Span {
    /// A span covering nothing (used for synthesized nodes).
    pub const DUMMY: Span = Span { lo: 0, hi: 0 };

    /// Create a new span.
    pub fn new(lo: u32, hi: u32) -> Self {
        debug_assert!(lo <= hi, "span lo must not exceed hi");
        Span { lo, hi }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Length of the span in bytes.
    pub fn len(&self) -> u32 {
        self.hi - self.lo
    }

    /// Whether the span covers zero bytes.
    pub fn is_empty(&self) -> bool {
        self.lo == self.hi
    }

    /// Whether this is the dummy span of a synthesized node.
    pub fn is_dummy(&self) -> bool {
        *self == Span::DUMMY
    }

    /// Extract the spanned slice from the source text, if in range.
    pub fn slice<'a>(&self, src: &'a str) -> Option<&'a str> {
        src.get(self.lo as usize..self.hi as usize)
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.lo, self.hi)
    }
}

/// A resolved line/column position (both 1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineCol {
    pub line: u32,
    pub col: u32,
}

impl fmt::Display for LineCol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Maps byte offsets to line/column positions for a fixed source text.
#[derive(Debug, Clone)]
pub struct SourceMap {
    /// Byte offsets of the first character of every line.
    line_starts: Vec<u32>,
    len: u32,
}

impl SourceMap {
    /// Build a source map for `src`.
    pub fn new(src: &str) -> Self {
        let mut line_starts = vec![0u32];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        SourceMap {
            line_starts,
            len: src.len() as u32,
        }
    }

    /// Number of lines in the source.
    pub fn line_count(&self) -> usize {
        self.line_starts.len()
    }

    /// Resolve a byte offset to a 1-based line/column.
    pub fn lookup(&self, offset: u32) -> LineCol {
        let offset = offset.min(self.len);
        let line_idx = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        LineCol {
            line: line_idx as u32 + 1,
            col: offset - self.line_starts[line_idx] + 1,
        }
    }

    /// Resolve the start of a span to a 1-based line/column.
    pub fn span_start(&self, span: Span) -> LineCol {
        self.lookup(span.lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_to_merges() {
        let a = Span::new(3, 7);
        let b = Span::new(5, 12);
        assert_eq!(a.to(b), Span::new(3, 12));
        assert_eq!(b.to(a), Span::new(3, 12));
    }

    #[test]
    fn span_len_and_empty() {
        assert_eq!(Span::new(2, 6).len(), 4);
        assert!(Span::new(4, 4).is_empty());
        assert!(!Span::new(4, 5).is_empty());
    }

    #[test]
    fn span_slice() {
        let src = "hello world";
        assert_eq!(Span::new(0, 5).slice(src), Some("hello"));
        assert_eq!(Span::new(6, 11).slice(src), Some("world"));
        assert_eq!(Span::new(6, 200).slice(src), None);
    }

    #[test]
    fn dummy_span() {
        assert!(Span::DUMMY.is_dummy());
        assert!(!Span::new(0, 1).is_dummy());
    }

    #[test]
    fn sourcemap_single_line() {
        let sm = SourceMap::new("abc");
        assert_eq!(sm.line_count(), 1);
        assert_eq!(sm.lookup(0), LineCol { line: 1, col: 1 });
        assert_eq!(sm.lookup(2), LineCol { line: 1, col: 3 });
    }

    #[test]
    fn sourcemap_multi_line() {
        let src = "ab\ncde\n\nf";
        let sm = SourceMap::new(src);
        assert_eq!(sm.line_count(), 4);
        assert_eq!(sm.lookup(0), LineCol { line: 1, col: 1 });
        assert_eq!(sm.lookup(3), LineCol { line: 2, col: 1 });
        assert_eq!(sm.lookup(5), LineCol { line: 2, col: 3 });
        assert_eq!(sm.lookup(7), LineCol { line: 3, col: 1 });
        assert_eq!(sm.lookup(8), LineCol { line: 4, col: 1 });
    }

    #[test]
    fn sourcemap_out_of_range_clamps() {
        let sm = SourceMap::new("ab");
        assert_eq!(sm.lookup(1000).line, 1);
    }

    #[test]
    fn linecol_display() {
        assert_eq!(LineCol { line: 3, col: 9 }.to_string(), "3:9");
    }
}
