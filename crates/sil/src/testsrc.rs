//! Canonical SIL program sources used throughout the documentation, tests and
//! the workload library.
//!
//! The programs here are transcriptions of the programs printed in the paper;
//! `ADD_AND_REVERSE` is Figure 7 and `ADD_AND_REVERSE_PARALLEL` is Figure 8.

/// Figure 7 of the paper: build a tree, add 1 to the left subtree, add -1 to
/// the right subtree, then reverse (mirror) the whole tree.
///
/// The `{ ... build a tree at root ... }` comment of the paper is expanded
/// into a call to a `build` function so the program is complete and runnable.
pub const ADD_AND_REVERSE: &str = r#"
program add_and_reverse

procedure main()
  root, lside, rside: handle; i: int
begin
  i := 4;
  root := build(i);
  lside := root.left;
  rside := root.right;
  { <= PROGRAM POINT A -- path matrix pA }
  add_n(lside, 1);
  add_n(rside, -1);
  reverse(root)
end

procedure add_n(h: handle; n: int)
  l, r: handle
begin
  if h <> nil then
  begin
    h.value := h.value + n;
    l := h.left;
    r := h.right;
    { <= PROGRAM POINT B -- path matrix pB }
    add_n(l, n);
    add_n(r, n)
  end
end

procedure reverse(h: handle)
  l, r: handle
begin
  if h <> nil then
  begin
    l := h.left;
    r := h.right;
    { <= PROGRAM POINT C }
    reverse(l);
    reverse(r);
    h.left := r;
    h.right := l
  end
end

function build(depth: int) handle
  t, l, r: handle; d: int
begin
  t := nil;
  if depth > 0 then
  begin
    t := new();
    t.value := depth;
    d := depth - 1;
    l := build(d);
    r := build(d);
    t.left := l;
    t.right := r
  end
end
return (t)
"#;

/// Figure 8 of the paper: the parallel version of [`ADD_AND_REVERSE`]
/// produced by the parallelization methods of Section 5.
pub const ADD_AND_REVERSE_PARALLEL: &str = r#"
program add_and_reverse

procedure main()
  root, lside, rside: handle; i: int
begin
  i := 4;
  root := build(i);
  lside := root.left || rside := root.right;
  add_n(lside, 1) || add_n(rside, -1);
  reverse(root)
end

procedure add_n(h: handle; n: int)
  l, r: handle
begin
  if h <> nil then
  begin
    h.value := h.value + n || l := h.left || r := h.right;
    add_n(l, n) || add_n(r, n)
  end
end

procedure reverse(h: handle)
  l, r: handle
begin
  if h <> nil then
  begin
    l := h.left || r := h.right;
    reverse(l) || reverse(r);
    h.left := r || h.right := l
  end
end

function build(depth: int) handle
  t, l, r: handle; d: int
begin
  t := nil;
  if depth > 0 then
  begin
    t := new();
    t.value := depth;
    d := depth - 1;
    l := build(d);
    r := build(d);
    t.left := l;
    t.right := r
  end
end
return (t)
"#;

/// The simple while loop of Figure 3: walk to the leftmost node.
pub const LEFTMOST_LOOP: &str = r#"
program leftmost

procedure main()
  h, l: handle; d: int
begin
  d := 5;
  h := build(d);
  l := h;
  while l.left <> nil do
    l := l.left
end

function build(depth: int) handle
  t, l, r: handle; d: int
begin
  t := nil;
  if depth > 0 then
  begin
    t := new();
    t.value := depth;
    d := depth - 1;
    l := build(d);
    r := build(d);
    t.left := l;
    t.right := r
  end
end
return (t)
"#;

/// A tiny straight-line program used in the statement-packing examples
/// (Figure 4): independent handle loads that can all execute in parallel.
pub const STRAIGHT_LINE: &str = r#"
program straight

procedure main()
  t, a, b, c, d: handle; x, y: int
begin
  t := new();
  a := new();
  b := new();
  t.left := a;
  t.right := b;
  c := t.left;
  d := t.right;
  x := c.value;
  y := d.value
end
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn all_sources_parse() {
        for (name, src) in [
            ("add_and_reverse", ADD_AND_REVERSE),
            ("add_and_reverse_parallel", ADD_AND_REVERSE_PARALLEL),
            ("leftmost", LEFTMOST_LOOP),
            ("straight", STRAIGHT_LINE),
        ] {
            parse_program(src).unwrap_or_else(|e| panic!("{name} failed to parse: {e}"));
        }
    }

    #[test]
    fn parallel_source_contains_par_statements() {
        let prog = parse_program(ADD_AND_REVERSE_PARALLEL).unwrap();
        let add_n = prog.procedure("add_n").unwrap();
        assert!(add_n.body.has_par());
        let seq = parse_program(ADD_AND_REVERSE).unwrap();
        assert!(!seq.procedure("add_n").unwrap().body.has_par());
    }
}
