//! # sil-workloads
//!
//! The benchmark programs and input generators used to evaluate the
//! reproduction:
//!
//! * [`programs`] — parameterised SIL sources: the paper's `add_and_reverse`
//!   (Figure 7), the list-traversal loop of Figure 3, recursive tree
//!   kernels (sum, height, mirror, Olden-style `treeadd`), binary-search-tree
//!   insertion, and the adaptive bitonic sort (`bisort`) the paper's
//!   conclusions refer to,
//! * [`generator`] — random straight-line SIL programs of parameterised size
//!   for the analysis-scalability experiments and property tests,
//! * [`native`] — plain-Rust reference implementations (sequential and
//!   rayon-parallel) of the same kernels, used both to validate the SIL
//!   interpreter and to measure real wall-clock speedups on the host.

pub mod generator;
pub mod native;
pub mod programs;

pub use generator::{GeneratorConfig, ProgramGenerator};
pub use programs::Workload;
