//! The SIL benchmark programs.
//!
//! Every program is produced as source text parameterised by its input size
//! (usually the depth of a perfect binary tree), so benchmarks can sweep
//! sizes.  All programs build their own input — the paper's `{ ... build a
//! tree at root ... }` comment is expanded into a `build` function.

/// A named, parameterised benchmark program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// Figure 7: add +1/-1 to the two subtrees, then mirror the whole tree.
    AddAndReverse,
    /// Figure 3: walk to the leftmost node of a tree.
    Leftmost,
    /// Sum all node values of a tree (read-only recursion).
    TreeSum,
    /// Compute the height of a tree (read-only recursion).
    TreeHeight,
    /// Mirror a tree in place (structural updates).
    TreeMirror,
    /// Olden-style `treeadd`: add the children's values into each node.
    TreeAdd,
    /// Build a binary search tree by repeated insertion, then sum it.
    BstInsert,
    /// Adaptive bitonic sort over a perfect tree (the \[BN86\] reference of
    /// the paper's conclusions).
    Bisort,
    /// Sum a linked list (recursive traversal over a left-spine list — the
    /// paper's list structures, section 2).
    ListSum,
    /// Reverse a linked list in place with the classic three-pointer loop.
    ListReverse,
}

impl Workload {
    /// All workloads, in a stable order.
    pub const ALL: [Workload; 10] = [
        Workload::AddAndReverse,
        Workload::Leftmost,
        Workload::TreeSum,
        Workload::TreeHeight,
        Workload::TreeMirror,
        Workload::TreeAdd,
        Workload::BstInsert,
        Workload::Bisort,
        Workload::ListSum,
        Workload::ListReverse,
    ];

    /// A short stable name (used in benchmark ids and reports).
    pub fn name(&self) -> &'static str {
        match self {
            Workload::AddAndReverse => "add_and_reverse",
            Workload::Leftmost => "leftmost",
            Workload::TreeSum => "tree_sum",
            Workload::TreeHeight => "tree_height",
            Workload::TreeMirror => "tree_mirror",
            Workload::TreeAdd => "treeadd",
            Workload::BstInsert => "bst_insert",
            Workload::Bisort => "bisort",
            Workload::ListSum => "list_sum",
            Workload::ListReverse => "list_reverse",
        }
    }

    /// The SIL source for this workload at the given size parameter
    /// (tree depth for the tree kernels, element count for `BstInsert`).
    pub fn source(&self, size: u32) -> String {
        match self {
            Workload::AddAndReverse => add_and_reverse(size),
            Workload::Leftmost => leftmost(size),
            Workload::TreeSum => tree_sum(size),
            Workload::TreeHeight => tree_height(size),
            Workload::TreeMirror => tree_mirror(size),
            Workload::TreeAdd => treeadd(size),
            Workload::BstInsert => bst_insert(size),
            Workload::Bisort => bisort(size),
            Workload::ListSum => list_sum(size),
            Workload::ListReverse => list_reverse(size),
        }
    }

    /// A reasonable small size used in tests.
    pub fn test_size(&self) -> u32 {
        match self {
            Workload::BstInsert => 64,
            Workload::ListSum | Workload::ListReverse => 24,
            _ => 6,
        }
    }
}

/// The shared `build` function: a perfect binary tree of the given depth
/// whose node values are the depth of the node (root = `depth`).
fn build_function() -> &'static str {
    r#"
function build(depth: int) handle
  t, l, r: handle; d: int
begin
  t := nil;
  if depth > 0 then
  begin
    t := new();
    t.value := depth;
    d := depth - 1;
    l := build(d);
    r := build(d);
    t.left := l;
    t.right := r
  end
end
return (t)
"#
}

/// A `build_keyed` function used by workloads that want distinct,
/// non-monotonic node values: each node's value is a multiplicative hash of
/// its heap index modulo the Mersenne prime 2^31 - 1, which keeps all values
/// pairwise distinct (the adaptive bitonic sort assumes distinct keys).
fn build_keyed_function() -> &'static str {
    r#"
function build_keyed(depth: int; idx: int) handle
  t, l, r: handle; d, k, li, ri: int
begin
  t := nil;
  if depth > 0 then
  begin
    t := new();
    k := idx * 2654435761;
    k := k - (k / 2147483647) * 2147483647;
    t.value := k;
    d := depth - 1;
    li := idx * 2;
    ri := idx * 2 + 1;
    l := build_keyed(d, li);
    r := build_keyed(d, ri);
    t.left := l;
    t.right := r
  end
end
return (t)
"#
}

/// Figure 7 of the paper, with a configurable tree depth.
pub fn add_and_reverse(depth: u32) -> String {
    format!(
        r#"
program add_and_reverse

procedure main()
  root, lside, rside: handle; i: int
begin
  i := {depth};
  root := build(i);
  lside := root.left;
  rside := root.right;
  add_n(lside, 1);
  add_n(rside, -1);
  reverse(root)
end

procedure add_n(h: handle; n: int)
  l, r: handle
begin
  if h <> nil then
  begin
    h.value := h.value + n;
    l := h.left;
    r := h.right;
    add_n(l, n);
    add_n(r, n)
  end
end

procedure reverse(h: handle)
  l, r: handle
begin
  if h <> nil then
  begin
    l := h.left;
    r := h.right;
    reverse(l);
    reverse(r);
    h.left := r;
    h.right := l
  end
end
{build}
"#,
        depth = depth,
        build = build_function()
    )
}

/// Figure 3: walk to the leftmost node.
pub fn leftmost(depth: u32) -> String {
    format!(
        r#"
program leftmost

procedure main()
  h, l: handle; d, v: int
begin
  d := {depth};
  h := build(d);
  l := h;
  while l.left <> nil do
    l := l.left;
  v := l.value
end
{build}
"#,
        depth = depth,
        build = build_function()
    )
}

/// Read-only recursive sum of all node values.
pub fn tree_sum(depth: u32) -> String {
    format!(
        r#"
program tree_sum

procedure main()
  root: handle; d, total: int
begin
  d := {depth};
  root := build(d);
  total := sum(root)
end

function sum(t: handle) int
  l, r: handle; s, a, b: int
begin
  s := 0;
  if t <> nil then
  begin
    l := t.left;
    r := t.right;
    a := sum(l);
    b := sum(r);
    s := t.value + a + b
  end
end
return (s)
{build}
"#,
        depth = depth,
        build = build_function()
    )
}

/// Read-only recursive height computation.
pub fn tree_height(depth: u32) -> String {
    format!(
        r#"
program tree_height

procedure main()
  root: handle; d, h: int
begin
  d := {depth};
  root := build(d);
  h := height(root)
end

function height(t: handle) int
  l, r: handle; h, hl, hr: int
begin
  h := 0;
  if t <> nil then
  begin
    l := t.left;
    r := t.right;
    hl := height(l);
    hr := height(r);
    if hl > hr then h := hl + 1 else h := hr + 1
  end
end
return (h)
{build}
"#,
        depth = depth,
        build = build_function()
    )
}

/// Structural mirror of the whole tree (the `reverse` of Figure 7 on its
/// own).
pub fn tree_mirror(depth: u32) -> String {
    format!(
        r#"
program tree_mirror

procedure main()
  root: handle; d: int
begin
  d := {depth};
  root := build(d);
  mirror(root)
end

procedure mirror(h: handle)
  l, r: handle
begin
  if h <> nil then
  begin
    l := h.left;
    r := h.right;
    mirror(l);
    mirror(r);
    h.left := r;
    h.right := l
  end
end
{build}
"#,
        depth = depth,
        build = build_function()
    )
}

/// Olden-style `treeadd`: every node's value becomes the sum of its subtree.
pub fn treeadd(depth: u32) -> String {
    format!(
        r#"
program treeadd

procedure main()
  root: handle; d, total: int
begin
  d := {depth};
  root := build(d);
  total := treeadd(root)
end

function treeadd(t: handle) int
  l, r: handle; s, a, b: int
begin
  s := 0;
  if t <> nil then
  begin
    l := t.left;
    r := t.right;
    a := treeadd(l);
    b := treeadd(r);
    s := t.value + a + b;
    t.value := s
  end
end
return (s)
{build}
"#,
        depth = depth,
        build = build_function()
    )
}

/// Build a binary search tree by repeated insertion of pseudo-random keys,
/// then sum it.  Exercises loops, DAG-free pointer updates and data-dependent
/// shapes.
pub fn bst_insert(count: u32) -> String {
    format!(
        r#"
program bst_insert

procedure main()
  root, node: handle; i, key, total: int
begin
  root := nil;
  i := 0;
  key := 7;
  while i < {count} do
  begin
    key := key * 75 + 74;
    key := key - (key / 65537) * 65537;
    node := new();
    node.value := key;
    root := insert(root, node);
    i := i + 1
  end;
  total := sum(root)
end

function insert(t: handle; node: handle) handle
  child, res: handle; k, nk: int
begin
  res := t;
  if t = nil then
    res := node
  else
  begin
    k := t.value;
    nk := node.value;
    if nk < k then
    begin
      child := t.left;
      child := insert(child, node);
      t.left := child
    end
    else
    begin
      child := t.right;
      child := insert(child, node);
      t.right := child
    end
  end
end
return (res)

function sum(t: handle) int
  l, r: handle; s, a, b: int
begin
  s := 0;
  if t <> nil then
  begin
    l := t.left;
    r := t.right;
    a := sum(l);
    b := sum(r);
    s := t.value + a + b
  end
end
return (s)
"#,
        count = count
    )
}

/// The adaptive bitonic sort of Bilardi & Nicolau \[BN86\], in the Olden
/// `bisort` formulation: a perfect binary tree holds the keys, `bisort`
/// recursively sorts the two subtrees in opposite directions and `bimerge`
/// merges the resulting bitonic sequence, swapping subtrees and values as it
/// descends.  The recursive calls in both procedures work on disjoint
/// subtrees — exactly the parallelism the paper reports detecting.
pub fn bisort(depth: u32) -> String {
    format!(
        r#"
program bisort

procedure main()
  root: handle; d, spr, dir: int
begin
  d := {depth};
  root := build_keyed(d, 1);
  spr := 99991;
  dir := 0;
  spr := bisort(root, spr, dir)
end

function bisort(root: handle; sprval: int; dir: int) int
  l, r: handle; res, v, ndir, sw: int
begin
  res := sprval;
  if root <> nil then
  begin
    l := root.left;
    r := root.right;
    if l = nil then
    begin
      v := root.value;
      sw := 0;
      if v > res then sw := 1;
      if dir = 1 then sw := 1 - sw;
      if sw = 1 then
      begin
        root.value := res;
        res := v
      end
    end
    else
    begin
      v := root.value;
      ndir := 1 - dir;
      v := bisort(l, v, dir);
      res := bisort(r, res, ndir);
      root.value := v;
      res := bimerge(root, res, dir)
    end
  end
end
return (res)

function bimerge(root: handle; sprval: int; dir: int) int
  pl, pr, tmp: handle; res, rex, elex, vl, vr, v: int
begin
  res := sprval;
  if root <> nil then
  begin
    v := root.value;
    rex := 0;
    if v > res then rex := 1;
    if dir = 1 then rex := 1 - rex;
    if rex = 1 then
    begin
      root.value := res;
      res := v
    end;

    pl := root.left;
    pr := root.right;
    while pl <> nil do
    begin
      vl := pl.value;
      vr := pr.value;
      elex := 0;
      if vl > vr then elex := 1;
      if dir = 1 then elex := 1 - elex;
      if rex = 1 then
      begin
        if elex = 1 then
        begin
          pl.value := vr;
          pr.value := vl;
          tmp := pl.right;
          pl.right := pr.right;
          pr.right := tmp;
          pl := pl.left;
          pr := pr.left
        end
        else
        begin
          pl := pl.right;
          pr := pr.right
        end
      end
      else
      begin
        if elex = 1 then
        begin
          pl.value := vr;
          pr.value := vl;
          tmp := pl.left;
          pl.left := pr.left;
          pr.left := tmp;
          pl := pl.right;
          pr := pr.right
        end
        else
        begin
          pl := pl.left;
          pr := pr.left
        end
      end
    end;

    pl := root.left;
    if pl <> nil then
    begin
      v := root.value;
      pr := root.right;
      v := bimerge(pl, v, dir);
      res := bimerge(pr, res, dir);
      root.value := v
    end
  end
end
return (res)
{build_keyed}
"#,
        depth = depth,
        build_keyed = build_keyed_function()
    )
}

/// The shared `build_list` function: a singly linked list of `n` cells
/// chained through `.left` (the `.right` field stays nil), values n..1 from
/// the head — SIL's encoding of the paper's list structures.
fn build_list_function() -> &'static str {
    r#"
function build_list(n: int) handle
  t, rest: handle; m: int
begin
  t := nil;
  if n > 0 then
  begin
    t := new();
    t.value := n;
    m := n - 1;
    rest := build_list(m);
    t.left := rest
  end
end
return (t)
"#
}

/// Recursive sum over a linked list.  The path matrices here are list
/// matrices: every relation is a pure `L^i` / `L+` path.
pub fn list_sum(len: u32) -> String {
    format!(
        r#"
program list_sum

procedure main()
  head: handle; n, total: int
begin
  n := {len};
  head := build_list(n);
  total := lsum(head)
end

function lsum(h: handle) int
  rest: handle; s, a: int
begin
  s := 0;
  if h <> nil then
  begin
    rest := h.left;
    a := lsum(rest);
    s := h.value + a
  end
end
return (s)
{build_list}
"#,
        len = len,
        build_list = build_list_function()
    )
}

/// In-place linked-list reversal with the classic three-pointer loop: the
/// `cur.left := prev` store repeatedly redirects a list cell, exercising the
/// structural-update transfer functions on list-shaped matrices.
pub fn list_reverse(len: u32) -> String {
    format!(
        r#"
program list_reverse

procedure main()
  head, prev, cur, next: handle; n, check: int
begin
  n := {len};
  head := build_list(n);
  prev := nil;
  cur := head;
  while cur <> nil do
  begin
    next := cur.left;
    cur.left := prev;
    prev := cur;
    cur := next
  end;
  head := prev;
  if head <> nil then
    check := head.value
end
{build_list}
"#,
        len = len,
        build_list = build_list_function()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sil_lang::frontend;
    use sil_runtime_free_check::check_runs;

    /// A tiny helper namespace so the tests below read clearly: parse, type
    /// check and run a workload at a small size with the reference
    /// interpreter (lives here rather than depending on sil-runtime, which
    /// would create a dependency cycle for the workspace build graph —
    /// execution-level checks live in the integration tests instead).
    mod sil_runtime_free_check {
        use sil_lang::frontend;

        pub fn check_runs(src: &str) {
            // "runs" here means: parses, normalizes and type checks.
            frontend(src).unwrap_or_else(|e| panic!("workload does not type check: {e}"));
        }
    }

    #[test]
    fn all_workloads_typecheck_at_test_sizes() {
        for w in Workload::ALL {
            let src = w.source(w.test_size());
            check_runs(&src);
        }
    }

    #[test]
    fn workload_names_are_unique() {
        let mut names: Vec<&str> = Workload::ALL.iter().map(|w| w.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), Workload::ALL.len());
    }

    #[test]
    fn add_and_reverse_matches_paper_structure() {
        let (program, _) = frontend(&add_and_reverse(4)).unwrap();
        assert!(program.procedure("add_n").is_some());
        assert!(program.procedure("reverse").is_some());
        assert!(program.procedure("build").unwrap().is_function());
    }

    #[test]
    fn sizes_are_parameterised() {
        let small = tree_sum(2);
        let large = tree_sum(12);
        assert!(small.contains("d := 2"));
        assert!(large.contains("d := 12"));
        assert_ne!(small, large);
    }

    #[test]
    fn list_workloads_use_the_left_spine() {
        let (program, _) = frontend(&list_sum(8)).unwrap();
        assert!(program.procedure("build_list").unwrap().is_function());
        assert!(program.procedure("lsum").unwrap().is_function());
        let printed = sil_lang::pretty::pretty_program(&program);
        assert!(printed.contains(".left"), "lists chain through .left");
        assert!(!printed.contains(".right"), "list cells never use .right");

        let (reverse, _) = frontend(&list_reverse(8)).unwrap();
        let main = sil_lang::pretty::pretty_procedure(reverse.procedure("main").unwrap());
        assert!(main.contains("while cur <> nil do"));
        assert!(main.contains("cur.left := prev"));
    }

    #[test]
    fn bisort_has_recursive_disjoint_calls() {
        let (program, _) = frontend(&bisort(4)).unwrap();
        let bisort_fn = program.procedure("bisort").unwrap();
        assert!(bisort_fn.is_function());
        let printed = sil_lang::pretty::pretty_procedure(bisort_fn);
        assert!(printed.contains("bisort(l, v, dir)"));
        assert!(printed.contains("bisort(r, res, ndir)"));
        assert!(program.procedure("bimerge").is_some());
    }
}
