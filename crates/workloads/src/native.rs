//! Native Rust reference implementations of the benchmark kernels.
//!
//! These serve two purposes:
//!
//! 1. **Validation** — the SIL interpreter's results are checked against
//!    them in the integration tests.
//! 2. **Measurement** — the wall-clock speedup benchmarks compare the
//!    sequential kernels with their rayon-parallel counterparts on the host,
//!    mirroring the parallelism the analysis detects in the SIL versions
//!    (recursive calls on the two disjoint subtrees run as a rayon `join`).

use rayon::join;

/// A heap-allocated binary tree, mirroring SIL's
/// `type handle = Nil | {value, left, right}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tree {
    pub value: i64,
    pub left: Option<Box<Tree>>,
    pub right: Option<Box<Tree>>,
}

impl Tree {
    /// A leaf node.
    pub fn leaf(value: i64) -> Tree {
        Tree {
            value,
            left: None,
            right: None,
        }
    }

    /// A perfect tree of the given depth; node values equal their depth,
    /// exactly like the SIL `build` function.
    pub fn perfect(depth: u32) -> Option<Box<Tree>> {
        if depth == 0 {
            return None;
        }
        Some(Box::new(Tree {
            value: depth as i64,
            left: Tree::perfect(depth - 1),
            right: Tree::perfect(depth - 1),
        }))
    }

    /// A perfect tree with pseudo-random but pairwise-distinct values,
    /// mirroring the SIL `build_keyed` function (same recurrence, so the
    /// values match node for node).  `idx` is the 1-based heap index of the
    /// node; the value is a Fibonacci-style hash of it modulo the Mersenne
    /// prime 2^31 - 1, which is injective for all indices that occur — the
    /// adaptive bitonic sort assumes distinct keys.
    pub fn perfect_keyed(depth: u32, idx: i64) -> Option<Box<Tree>> {
        if depth == 0 {
            return None;
        }
        let k = (idx * 2_654_435_761) % 2_147_483_647;
        Some(Box::new(Tree {
            value: k,
            left: Tree::perfect_keyed(depth - 1, idx * 2),
            right: Tree::perfect_keyed(depth - 1, idx * 2 + 1),
        }))
    }

    /// Number of nodes.
    pub fn size(&self) -> usize {
        1 + self.left.as_deref().map_or(0, Tree::size) + self.right.as_deref().map_or(0, Tree::size)
    }

    /// In-order values.
    pub fn in_order(&self) -> Vec<i64> {
        let mut out = Vec::with_capacity(self.size());
        self.collect_in_order(&mut out);
        out
    }

    fn collect_in_order(&self, out: &mut Vec<i64>) {
        if let Some(l) = &self.left {
            l.collect_in_order(out);
        }
        out.push(self.value);
        if let Some(r) = &self.right {
            r.collect_in_order(out);
        }
    }
}

/// Sum all values, sequentially.
pub fn sum_seq(tree: &Option<Box<Tree>>) -> i64 {
    match tree {
        None => 0,
        Some(t) => t.value + sum_seq(&t.left) + sum_seq(&t.right),
    }
}

/// Sum all values with rayon `join` on the two subtrees.
pub fn sum_par(tree: &Option<Box<Tree>>) -> i64 {
    match tree {
        None => 0,
        Some(t) => {
            let (l, r) = join(|| sum_par(&t.left), || sum_par(&t.right));
            t.value + l + r
        }
    }
}

/// Add `n` to every node, sequentially (the `add_n` of Figure 7).
pub fn add_n_seq(tree: &mut Option<Box<Tree>>, n: i64) {
    if let Some(t) = tree {
        t.value += n;
        add_n_seq(&mut t.left, n);
        add_n_seq(&mut t.right, n);
    }
}

/// Add `n` to every node with rayon `join`.
pub fn add_n_par(tree: &mut Option<Box<Tree>>, n: i64) {
    if let Some(t) = tree {
        t.value += n;
        let (left, right) = (&mut t.left, &mut t.right);
        join(|| add_n_par(left, n), || add_n_par(right, n));
    }
}

/// Mirror the tree in place, sequentially (the `reverse` of Figure 7).
pub fn reverse_seq(tree: &mut Option<Box<Tree>>) {
    if let Some(t) = tree {
        reverse_seq(&mut t.left);
        reverse_seq(&mut t.right);
        std::mem::swap(&mut t.left, &mut t.right);
    }
}

/// Mirror the tree in place with rayon `join`.
pub fn reverse_par(tree: &mut Option<Box<Tree>>) {
    if let Some(t) = tree {
        let (left, right) = (&mut t.left, &mut t.right);
        join(|| reverse_par(left), || reverse_par(right));
        std::mem::swap(&mut t.left, &mut t.right);
    }
}

/// The whole `add_and_reverse` program (Figure 7), sequentially.
pub fn add_and_reverse_seq(depth: u32) -> Option<Box<Tree>> {
    let mut root = Tree::perfect(depth);
    if let Some(t) = root.as_mut() {
        add_n_seq(&mut t.left, 1);
        add_n_seq(&mut t.right, -1);
    }
    reverse_seq(&mut root);
    root
}

/// The whole `add_and_reverse` program as parallelized in Figure 8.
pub fn add_and_reverse_par(depth: u32) -> Option<Box<Tree>> {
    let mut root = Tree::perfect(depth);
    if let Some(t) = root.as_mut() {
        let (left, right) = (&mut t.left, &mut t.right);
        join(|| add_n_par(left, 1), || add_n_par(right, -1));
    }
    reverse_par(&mut root);
    root
}

/// Olden treeadd, sequentially: every node becomes the sum of its subtree;
/// returns the total.
pub fn treeadd_seq(tree: &mut Option<Box<Tree>>) -> i64 {
    match tree {
        None => 0,
        Some(t) => {
            let s = t.value + treeadd_seq(&mut t.left) + treeadd_seq(&mut t.right);
            t.value = s;
            s
        }
    }
}

/// Olden treeadd with rayon `join`.
pub fn treeadd_par(tree: &mut Option<Box<Tree>>) -> i64 {
    match tree {
        None => 0,
        Some(t) => {
            let (left, right) = (&mut t.left, &mut t.right);
            let (a, b) = join(|| treeadd_par(left), || treeadd_par(right));
            let s = t.value + a + b;
            t.value = s;
            s
        }
    }
}

/// Adaptive bitonic sort (Olden `bisort` formulation), sequential.
/// Returns the new spare value.
pub fn bisort_seq(tree: &mut Option<Box<Tree>>, spare: i64, ascending: bool) -> i64 {
    let Some(t) = tree else { return spare };
    if t.left.is_none() {
        if (t.value > spare) == ascending {
            let v = t.value;
            t.value = spare;
            return v;
        }
        return spare;
    }
    let v = bisort_seq(&mut t.left, t.value, ascending);
    let spare = bisort_seq(&mut t.right, spare, !ascending);
    t.value = v;
    bimerge_seq(t, spare, ascending)
}

/// Adaptive bitonic sort with the two recursive sorts (and the two recursive
/// merges) running as rayon `join`s — the parallelism the analysis detects.
pub fn bisort_par(tree: &mut Option<Box<Tree>>, spare: i64, ascending: bool) -> i64 {
    let Some(t) = tree else { return spare };
    if t.left.is_none() {
        if (t.value > spare) == ascending {
            let v = t.value;
            t.value = spare;
            return v;
        }
        return spare;
    }
    let root_value = t.value;
    let (left, right) = (&mut t.left, &mut t.right);
    let (v, spare) = join(
        || bisort_par(left, root_value, ascending),
        || bisort_par(right, spare, !ascending),
    );
    t.value = v;
    bimerge_par(t, spare, ascending)
}

fn bimerge_seq(t: &mut Tree, spare: i64, ascending: bool) -> i64 {
    let mut spare = spare;
    let right_exchange = (t.value > spare) == ascending;
    if right_exchange {
        std::mem::swap(&mut t.value, &mut spare);
    }
    spine_walk(t, right_exchange, ascending);
    if t.left.is_some() {
        t.value = bimerge_opt_seq(&mut t.left, t.value, ascending);
        spare = bimerge_opt_seq(&mut t.right, spare, ascending);
    }
    spare
}

fn bimerge_opt_seq(tree: &mut Option<Box<Tree>>, spare: i64, ascending: bool) -> i64 {
    match tree {
        None => spare,
        Some(t) => bimerge_seq(t, spare, ascending),
    }
}

fn bimerge_par(t: &mut Tree, spare: i64, ascending: bool) -> i64 {
    let mut spare = spare;
    let right_exchange = (t.value > spare) == ascending;
    if right_exchange {
        std::mem::swap(&mut t.value, &mut spare);
    }
    spine_walk(t, right_exchange, ascending);
    if t.left.is_some() {
        let root_value = t.value;
        let (left, right) = (&mut t.left, &mut t.right);
        let (v, s) = join(
            || bimerge_opt_par(left, root_value, ascending),
            || bimerge_opt_par(right, spare, ascending),
        );
        t.value = v;
        spare = s;
    }
    spare
}

fn bimerge_opt_par(tree: &mut Option<Box<Tree>>, spare: i64, ascending: bool) -> i64 {
    match tree {
        None => spare,
        Some(t) => bimerge_par(t, spare, ascending),
    }
}

/// The value/subtree spine walk shared by sequential and parallel bimerge
/// (this part is inherently sequential — a pointer chase down both spines).
fn spine_walk(t: &mut Tree, right_exchange: bool, ascending: bool) {
    let (mut pl, mut pr) = (t.left.as_deref_mut(), t.right.as_deref_mut());
    while let (Some(l), Some(r)) = (pl, pr) {
        let element_exchange = (l.value > r.value) == ascending;
        if right_exchange {
            if element_exchange {
                std::mem::swap(&mut l.value, &mut r.value);
                std::mem::swap(&mut l.right, &mut r.right);
                pl = l.left.as_deref_mut();
                pr = r.left.as_deref_mut();
            } else {
                pl = l.right.as_deref_mut();
                pr = r.right.as_deref_mut();
            }
        } else if element_exchange {
            std::mem::swap(&mut l.value, &mut r.value);
            std::mem::swap(&mut l.left, &mut r.left);
            pl = l.right.as_deref_mut();
            pr = r.right.as_deref_mut();
        } else {
            pl = l.left.as_deref_mut();
            pr = r.left.as_deref_mut();
        }
    }
}

/// A singly linked list cell, mirroring the SIL encoding of lists: the
/// `.left` field is the `next` pointer, `.right` stays nil.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ListNode {
    pub value: i64,
    pub next: Option<Box<ListNode>>,
}

/// A list of `n` cells with values n..1 from the head, exactly like the SIL
/// `build_list` function.
pub fn build_list(n: u32) -> Option<Box<ListNode>> {
    if n == 0 {
        return None;
    }
    Some(Box::new(ListNode {
        value: n as i64,
        next: build_list(n - 1),
    }))
}

/// Sum a list, sequentially (a pointer chase — the paper's point about list
/// structures is that traversal order, not fork/join parallelism, is what
/// the path matrices certify here).
pub fn list_sum_seq(list: &Option<Box<ListNode>>) -> i64 {
    let mut total = 0;
    let mut cursor = list;
    while let Some(node) = cursor {
        total += node.value;
        cursor = &node.next;
    }
    total
}

/// Reverse a list in place with the three-pointer loop the SIL
/// `list_reverse` workload uses.
pub fn list_reverse_seq(list: Option<Box<ListNode>>) -> Option<Box<ListNode>> {
    let mut prev: Option<Box<ListNode>> = None;
    let mut cur = list;
    while let Some(mut node) = cur {
        cur = node.next.take();
        node.next = prev;
        prev = Some(node);
    }
    prev
}

/// The values of a list, head first.
pub fn list_values(list: &Option<Box<ListNode>>) -> Vec<i64> {
    let mut out = Vec::new();
    let mut cursor = list;
    while let Some(node) = cursor {
        out.push(node.value);
        cursor = &node.next;
    }
    out
}

/// Collect the sorted sequence produced by bisort: the in-order traversal of
/// the tree followed by the spare value (ascending order).
pub fn bisort_sequence(tree: &Option<Box<Tree>>, spare: i64) -> Vec<i64> {
    let mut out = match tree {
        Some(t) => t.in_order(),
        None => Vec::new(),
    };
    out.push(spare);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_tree_shape() {
        let t = Tree::perfect(4).unwrap();
        assert_eq!(t.size(), 15);
        assert_eq!(t.value, 4);
        assert_eq!(sum_seq(&Some(t)), 4 + 2 * 3 + 4 * 2 + 8);
    }

    #[test]
    fn sum_par_matches_seq() {
        let t = Tree::perfect(10);
        assert_eq!(sum_seq(&t), sum_par(&t));
    }

    #[test]
    fn add_n_and_reverse_match() {
        let seq = add_and_reverse_seq(8);
        let par = add_and_reverse_par(8);
        assert_eq!(seq, par);
        // the mirror of a perfect tree is a perfect tree of the same size
        assert_eq!(seq.as_ref().unwrap().size(), 255);
    }

    #[test]
    fn treeadd_par_matches_seq() {
        let mut a = Tree::perfect(9);
        let mut b = Tree::perfect(9);
        assert_eq!(treeadd_seq(&mut a), treeadd_par(&mut b));
        assert_eq!(a, b);
    }

    #[test]
    fn keyed_tree_is_deterministic_and_varied() {
        let a = Tree::perfect_keyed(6, 1);
        let b = Tree::perfect_keyed(6, 1);
        assert_eq!(a, b);
        let values = a.as_ref().unwrap().in_order();
        let distinct: std::collections::BTreeSet<i64> = values.iter().copied().collect();
        assert!(distinct.len() > values.len() / 4, "values should be varied");
    }

    #[test]
    fn bisort_sorts() {
        for depth in [1u32, 2, 3, 4, 6, 8] {
            let mut tree = Tree::perfect_keyed(depth, 1);
            let spare = bisort_seq(&mut tree, 99_991, true);
            let seq = bisort_sequence(&tree, spare);
            let mut sorted = seq.clone();
            sorted.sort_unstable();
            assert_eq!(seq, sorted, "depth {depth} not sorted: {seq:?}");
        }
    }

    #[test]
    fn bisort_par_matches_seq() {
        let mut a = Tree::perfect_keyed(8, 1);
        let mut b = Tree::perfect_keyed(8, 1);
        let sa = bisort_seq(&mut a, 99_991, true);
        let sb = bisort_par(&mut b, 99_991, true);
        assert_eq!(sa, sb);
        assert_eq!(a, b);
    }

    #[test]
    fn list_sum_matches_closed_form() {
        let list = build_list(100);
        assert_eq!(list_sum_seq(&list), 100 * 101 / 2);
        assert_eq!(list_sum_seq(&None), 0);
    }

    #[test]
    fn list_reverse_reverses() {
        let list = build_list(10);
        assert_eq!(list_values(&list), (1..=10).rev().collect::<Vec<i64>>());
        let reversed = list_reverse_seq(list);
        assert_eq!(list_values(&reversed), (1..=10).collect::<Vec<i64>>());
        // reversal preserves the sum
        assert_eq!(list_sum_seq(&reversed), 55);
        assert_eq!(list_reverse_seq(None), None);
    }

    #[test]
    fn bisort_preserves_multiset() {
        let mut tree = Tree::perfect_keyed(7, 1);
        let mut before = bisort_sequence(&tree, 99_991);
        let spare = bisort_seq(&mut tree, 99_991, true);
        let mut after = bisort_sequence(&tree, spare);
        before.sort_unstable();
        after.sort_unstable();
        assert_eq!(before, after);
    }
}
