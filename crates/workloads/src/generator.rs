//! Random SIL program generation.
//!
//! The analysis-scalability experiment (and several property tests) need SIL
//! programs of controllable size.  The generator produces *well-typed,
//! normalized, nil-safe* straight-line procedures over a configurable number
//! of handle and integer variables: every generated handle statement only
//! dereferences handles that are known to be non-nil at that point (they
//! were the target of a `new()` earlier), so the programs can also be
//! executed, not just analyzed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sil_lang::ast::{Field, Program, TypeName};
use sil_lang::builder::{expr, stmt, ProcBuilder, ProgramBuilder};

/// Configuration of the random program generator.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Number of handle variables.
    pub handle_vars: usize,
    /// Number of integer variables.
    pub int_vars: usize,
    /// Number of statements in `main`.
    pub statements: usize,
    /// RNG seed (generation is deterministic for a given config).
    pub seed: u64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            handle_vars: 8,
            int_vars: 4,
            statements: 64,
            seed: 0xC0FFEE,
        }
    }
}

/// The random program generator.
pub struct ProgramGenerator {
    config: GeneratorConfig,
    rng: StdRng,
}

impl ProgramGenerator {
    pub fn new(config: GeneratorConfig) -> ProgramGenerator {
        let rng = StdRng::seed_from_u64(config.seed);
        ProgramGenerator { config, rng }
    }

    fn handle_name(i: usize) -> String {
        format!("h{i}")
    }

    fn int_name(i: usize) -> String {
        format!("x{i}")
    }

    /// Generate a program with a single straight-line `main`.
    pub fn generate(&mut self) -> Program {
        let handle_names: Vec<String> = (0..self.config.handle_vars)
            .map(Self::handle_name)
            .collect();
        let int_names: Vec<String> = (0..self.config.int_vars).map(Self::int_name).collect();

        let mut builder = ProcBuilder::procedure("main");
        for h in &handle_names {
            builder = builder.local(h, TypeName::Handle);
        }
        for x in &int_names {
            builder = builder.local(x, TypeName::Int);
        }

        // Initialise every variable so the program is executable.
        let mut stmts = Vec::with_capacity(self.config.statements + handle_names.len());
        for h in &handle_names {
            stmts.push(stmt::assign_new(h));
        }
        for x in &int_names {
            stmts.push(stmt::assign_var(x, expr::int(1)));
        }
        // `initialized[i]` — handle i certainly names a node right now.
        let mut non_nil = vec![true; handle_names.len()];

        for _ in 0..self.config.statements {
            let s = self.random_statement(&handle_names, &int_names, &mut non_nil);
            stmts.push(s);
        }
        let main = builder.stmts(stmts).build();
        ProgramBuilder::new("generated").procedure(main).build()
    }

    fn pick_non_nil(&mut self, non_nil: &[bool]) -> Option<usize> {
        let candidates: Vec<usize> = non_nil
            .iter()
            .enumerate()
            .filter(|(_, ok)| **ok)
            .map(|(i, _)| i)
            .collect();
        if candidates.is_empty() {
            None
        } else {
            Some(candidates[self.rng.gen_range(0..candidates.len())])
        }
    }

    fn random_statement(
        &mut self,
        handles: &[String],
        ints: &[String],
        non_nil: &mut [bool],
    ) -> sil_lang::ast::Stmt {
        let choice = self.rng.gen_range(0..100);
        let field = if self.rng.gen_bool(0.5) {
            Field::Left
        } else {
            Field::Right
        };
        match choice {
            // a fresh node
            0..=19 => {
                let dst = self.rng.gen_range(0..handles.len());
                non_nil[dst] = true;
                stmt::assign_new(&handles[dst])
            }
            // a handle copy
            20..=34 => {
                let src = self.rng.gen_range(0..handles.len());
                let dst = self.rng.gen_range(0..handles.len());
                non_nil[dst] = non_nil[src];
                stmt::copy(&handles[dst], &handles[src])
            }
            // attach a node below another node
            35..=54 => {
                let (Some(dst), Some(src)) =
                    (self.pick_non_nil(non_nil), self.pick_non_nil(non_nil))
                else {
                    return stmt::assign_new(&handles[0]);
                };
                stmt::store(&handles[dst], field, &handles[src])
            }
            // write a value field
            55..=74 => match self.pick_non_nil(non_nil) {
                Some(dst) => {
                    let x = self.rng.gen_range(0..ints.len());
                    stmt::store_value(
                        &handles[dst],
                        expr::add(expr::var(&ints[x]), expr::int(self.rng.gen_range(0..10))),
                    )
                }
                None => stmt::assign_new(&handles[0]),
            },
            // read a value field
            75..=89 => match self.pick_non_nil(non_nil) {
                Some(src) => {
                    let x = self.rng.gen_range(0..ints.len());
                    stmt::load_value(&ints[x], &handles[src])
                }
                None => stmt::assign_new(&handles[0]),
            },
            // load a child (the result may be nil)
            _ => {
                let (Some(src), dst) = (
                    self.pick_non_nil(non_nil),
                    self.rng.gen_range(0..handles.len()),
                ) else {
                    return stmt::assign_new(&handles[0]);
                };
                non_nil[dst] = false;
                stmt::load(&handles[dst], &handles[src], field)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sil_lang::normalize::normalize_program;
    use sil_lang::types::check_program;

    #[test]
    fn generated_programs_typecheck() {
        for seed in 0..10 {
            let mut gen = ProgramGenerator::new(GeneratorConfig {
                seed,
                ..GeneratorConfig::default()
            });
            let program = gen.generate();
            let normalized = normalize_program(&program);
            check_program(&normalized).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn statement_count_scales_with_config() {
        let mut small = ProgramGenerator::new(GeneratorConfig {
            statements: 10,
            ..GeneratorConfig::default()
        });
        let mut large = ProgramGenerator::new(GeneratorConfig {
            statements: 200,
            ..GeneratorConfig::default()
        });
        let s = small.generate().statement_count();
        let l = large.generate().statement_count();
        assert!(l > s + 150, "expected ~190 more statements, got {s} vs {l}");
    }

    #[test]
    fn generation_is_deterministic() {
        let config = GeneratorConfig::default();
        let a = ProgramGenerator::new(config.clone()).generate();
        let b = ProgramGenerator::new(config).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = ProgramGenerator::new(GeneratorConfig {
            seed: 1,
            ..GeneratorConfig::default()
        })
        .generate();
        let b = ProgramGenerator::new(GeneratorConfig {
            seed: 2,
            ..GeneratorConfig::default()
        })
        .generate();
        assert_ne!(a, b);
    }
}
