//! Re-verification of parallel programs — the "debugging" use of the
//! analysis described in the paper's introduction: *"By checking explicit
//! parallel and synchronization constructs against data-structure
//! specifications and manipulation, the system could detect inconsistencies
//! and non-deterministic behavior."*
//!
//! [`verify_parallel_program`] walks a program containing explicit `||`
//! statements and checks every parallel statement against the interference
//! analysis: arms that are simple statements or calls are checked with the
//! §5.1/§5.2 interference sets; arms that are blocks of basic statements are
//! checked with the §5.3 relative-interference method; anything else is
//! conservatively reported as unverifiable.

use sil_analysis::analyze_program;
use sil_analysis::interference::{statements_independent, touches_node_locations};
use sil_analysis::sequences::sequences_independent;
use sil_analysis::state::AbstractState;
use sil_analysis::transfer::Analyzer;
use sil_lang::ast::*;
use sil_lang::basic::BasicStmt;
use sil_lang::pretty::pretty_stmt;
use sil_lang::types::{ProcSignature, ProgramTypes};
use std::fmt;

/// A parallel statement the analysis could not prove safe.
#[derive(Debug, Clone)]
pub struct ParViolation {
    pub procedure: String,
    /// Rendering of the offending parallel statement.
    pub statement: String,
    /// Why it was flagged.
    pub reason: String,
}

impl fmt::Display for ParViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "in `{}`: `{}` — {}",
            self.procedure, self.statement, self.reason
        )
    }
}

/// Check every explicit parallel statement of `program`.  An empty result
/// means every `||` was proven interference-free.
pub fn verify_parallel_program(program: &Program, types: &ProgramTypes) -> Vec<ParViolation> {
    let analysis = analyze_program(program, types);
    let mut analyzer = Analyzer::with_summaries(program, types, analysis.summaries.clone());
    analyzer.set_record_calls(false);
    let mut violations = Vec::new();
    for proc in &program.procedures {
        let Some(sig) = types.proc(&proc.name) else {
            continue;
        };
        let entry = analysis
            .procedure(&proc.name)
            .map(|a| a.entry.clone())
            .unwrap_or_else(|| {
                // Procedure never called from main: verify it under the
                // pessimistic "arguments may be anything" entry.
                let mut state = AbstractState::with_handles(sig.handle_params());
                for h in sig.handle_params() {
                    state.mark_attached(h);
                }
                state
            });
        verify_stmt(&analyzer, &proc.body, &entry, sig, &mut violations);
    }
    violations
}

fn verify_stmt(
    analyzer: &Analyzer<'_>,
    stmt: &Stmt,
    state: &AbstractState,
    sig: &ProcSignature,
    violations: &mut Vec<ParViolation>,
) {
    let mut warnings = Vec::new();
    match stmt {
        Stmt::Block { stmts, .. } => {
            let mut current = state.clone();
            for s in stmts {
                verify_stmt(analyzer, s, &current, sig, violations);
                current = analyzer.transfer(&current, s, sig, &mut warnings);
            }
        }
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            verify_stmt(analyzer, then_branch, state, sig, violations);
            if let Some(e) = else_branch {
                verify_stmt(analyzer, e, state, sig, violations);
            }
        }
        Stmt::While { body, .. } => {
            let invariant = analyzer.transfer(state, stmt, sig, &mut warnings);
            verify_stmt(analyzer, body, &invariant, sig, violations);
        }
        Stmt::Par { arms, .. } => {
            check_par(analyzer, arms, stmt, state, sig, violations);
            // also verify nested parallel statements inside the arms
            for arm in arms {
                verify_stmt(analyzer, arm, state, sig, violations);
            }
        }
        Stmt::Assign { .. } | Stmt::Call { .. } => {}
    }
}

fn check_par(
    analyzer: &Analyzer<'_>,
    arms: &[Stmt],
    whole: &Stmt,
    state: &AbstractState,
    sig: &ProcSignature,
    violations: &mut Vec<ParViolation>,
) {
    // The disjointness arguments of §3.1 need a TREE; parallel statements
    // that touch node locations under a possible DAG / cycle cannot be
    // verified.
    if !state.structure.is_tree()
        && arms.iter().any(|a| {
            touches_node_locations(a, sig) || a.has_par() || matches!(a, Stmt::Block { .. })
        })
    {
        violations.push(ParViolation {
            procedure: sig.name.clone(),
            statement: pretty_stmt(whole),
            reason: format!(
                "the structure may not be a TREE here ({}); node accesses cannot be proven disjoint",
                state.structure
            ),
        });
        return;
    }

    // Case 1: every arm is a simple statement or call — §5.1/§5.2.
    if arms
        .iter()
        .all(|a| matches!(a, Stmt::Assign { .. } | Stmt::Call { .. }))
    {
        let refs: Vec<&Stmt> = arms.iter().collect();
        if !statements_independent(&refs, sig, &state.matrix, &analyzer.summaries) {
            violations.push(ParViolation {
                procedure: sig.name.clone(),
                statement: pretty_stmt(whole),
                reason: "the arms have a non-empty interference set".to_string(),
            });
        }
        return;
    }

    // Case 2: arms are sequences of basic statements — §5.3.
    let as_sequences: Option<Vec<Vec<Stmt>>> =
        arms.iter().map(arm_as_basic_sequence(sig)).collect();
    if let Some(seqs) = as_sequences {
        for i in 0..seqs.len() {
            for j in (i + 1)..seqs.len() {
                if !sequences_independent(&seqs[i], &seqs[j], state, sig) {
                    violations.push(ParViolation {
                        procedure: sig.name.clone(),
                        statement: pretty_stmt(whole),
                        reason: format!(
                            "arms {} and {} have a non-empty relative interference set",
                            i + 1,
                            j + 1
                        ),
                    });
                }
            }
        }
        return;
    }

    // Case 3: anything more complicated is beyond the method — report it.
    violations.push(ParViolation {
        procedure: sig.name.clone(),
        statement: pretty_stmt(whole),
        reason: "arms contain loops or calls inside blocks; the analysis cannot verify them"
            .to_string(),
    });
}

fn arm_as_basic_sequence(sig: &ProcSignature) -> impl Fn(&Stmt) -> Option<Vec<Stmt>> + '_ {
    move |arm: &Stmt| -> Option<Vec<Stmt>> {
        let stmts: Vec<Stmt> = match arm {
            Stmt::Block { stmts, .. } => stmts.clone(),
            simple @ (Stmt::Assign { .. } | Stmt::Call { .. }) => vec![simple.clone()],
            _ => return None,
        };
        let all_basic = stmts.iter().all(|s| {
            matches!(
                BasicStmt::classify(s, sig),
                Some(b) if !matches!(b, BasicStmt::ProcCall { .. } | BasicStmt::FuncAssign { .. })
            )
        });
        if all_basic {
            Some(stmts)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sil_lang::frontend;

    #[test]
    fn figure_8_program_verifies_clean() {
        let (program, types) = frontend(sil_lang::testsrc::ADD_AND_REVERSE_PARALLEL).unwrap();
        let violations = verify_parallel_program(&program, &types);
        assert!(
            violations.is_empty(),
            "Figure 8 must verify: {:?}",
            violations.iter().map(|v| v.to_string()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn our_own_parallelizer_output_verifies_clean() {
        let (program, types) = frontend(sil_lang::testsrc::ADD_AND_REVERSE).unwrap();
        let (parallel, _) = crate::parallelize_program(&program, &types);
        let printed = sil_lang::pretty::pretty_program(&parallel);
        let (reparsed, retypes) = frontend(&printed).unwrap();
        let violations = verify_parallel_program(&reparsed, &retypes);
        assert!(
            violations.is_empty(),
            "{:?}",
            violations.iter().map(|v| v.to_string()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unsafe_parallel_statement_is_flagged() {
        // Both arms update the *same* subtree: not safe.
        let src = r#"
program unsafe
procedure bump(h: handle)
  l, r: handle
begin
  if h <> nil then
  begin
    h.value := h.value + 1;
    l := h.left;
    r := h.left;
    bump(l) || bump(r)
  end
end
procedure main()
  root: handle
begin
  root := new();
  bump(root)
end
"#;
        let (program, types) = frontend(src).unwrap();
        let violations = verify_parallel_program(&program, &types);
        assert!(!violations.is_empty());
        assert!(violations[0].statement.contains("bump(l) || bump(r)"));
        assert_eq!(violations[0].procedure, "bump");
    }

    #[test]
    fn unsafe_variable_race_is_flagged() {
        let src = r#"
program race
procedure main()
  a: handle; x: int
begin
  a := new();
  x := 1 || x := 2
end
"#;
        let (program, types) = frontend(src).unwrap();
        let violations = verify_parallel_program(&program, &types);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].reason.contains("interference"));
    }

    #[test]
    fn safe_block_arms_verify_via_sequences() {
        let src = r#"
program blocks
procedure main()
  t, a, b: handle; x, y: int
begin
  t := new();
  begin a := t.left; a.value := 1 end || begin b := t.right; b.value := 2 end
end
"#;
        let (program, types) = frontend(src).unwrap();
        let violations = verify_parallel_program(&program, &types);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn unsafe_block_arms_are_flagged() {
        let src = r#"
program blocks
procedure main()
  t, a, b: handle; x, y: int
begin
  t := new();
  begin a := t.left; a.value := 1 end || begin b := t.left; y := b.value end
end
"#;
        let (program, types) = frontend(src).unwrap();
        let violations = verify_parallel_program(&program, &types);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].reason.contains("relative interference"));
    }

    #[test]
    fn uncalled_procedure_with_unsafe_par_is_still_checked() {
        let src = r#"
program dead
procedure helper(h: handle)
  l, r: handle
begin
  l := h.left;
  r := h.left;
  l.value := 1 || r.value := 2
end
procedure main()
  a: handle
begin
  a := new()
end
"#;
        let (program, types) = frontend(src).unwrap();
        let violations = verify_parallel_program(&program, &types);
        assert!(!violations.is_empty());
        assert_eq!(violations[0].procedure, "helper");
    }
}
