//! # sil-parallelizer
//!
//! Analysis-driven parallelization of SIL programs — the third prong of
//! Hendren & Nicolau (1989), Section 5.
//!
//! Three transformations are provided, all driven by the path-matrix
//! interference analysis in [`sil_analysis`]:
//!
//! * [`packing`] — §5.1/§5.2: group consecutive non-interfering statements
//!   (including procedure calls) into a single parallel statement
//!   `s1 || s2 || ... || sn` (Figure 4).  Applied to the paper's
//!   `add_and_reverse` program this produces exactly the parallel program of
//!   Figure 8.
//! * [`split`] — §5.3: split a sequence `U; V` into `U || V` when the
//!   relative interference set is empty (Figure 9).
//! * [`verify`] — the "debugging parallel programs" use of the analysis
//!   (§1): check every explicit parallel statement of a program against the
//!   interference analysis and report the unsafe ones.
//!
//! The top-level entry point [`parallelize_program`] runs the packing pass
//! over every procedure and returns the transformed program together with a
//! [`report::TransformReport`] describing every transformation performed and
//! the evidence (empty interference sets, unrelated handle arguments) that
//! justified it.

pub mod packing;
pub mod report;
pub mod split;
pub mod verify;

pub use packing::{pack_program, pack_program_with_analysis, PackOptions};
pub use report::{TransformKind, TransformRecord, TransformReport};
pub use split::split_program;
pub use verify::{verify_parallel_program, ParViolation};

use sil_lang::ast::Program;
use sil_lang::types::ProgramTypes;

/// Parallelize a (normalized, type-checked) program with the default
/// pipeline: statement/call packing in every procedure.
///
/// ```
/// use sil_lang::frontend;
/// use sil_parallelizer::parallelize_program;
///
/// let (program, types) = frontend(sil_lang::testsrc::ADD_AND_REVERSE).unwrap();
/// let (parallel, report) = parallelize_program(&program, &types);
/// assert!(parallel.procedure("add_n").unwrap().body.has_par());
/// assert!(!report.records.is_empty());
/// ```
pub fn parallelize_program(program: &Program, types: &ProgramTypes) -> (Program, TransformReport) {
    pack_program(program, types, &PackOptions::default())
}
