//! Statement and call packing (Figure 4, §5.1 and §5.2).
//!
//! Within every block the pass walks the statements in order, incrementally
//! growing a group of simple statements (assignments and procedure calls)
//! that are pairwise non-interfering with respect to the path matrix at the
//! point just before the group.  When a statement interferes with the group
//! (or a compound statement is reached) the group is flushed: groups of two
//! or more statements become a single parallel statement `s1 || ... || sn`.
//!
//! Interference between two basic statements uses the interference set of
//! §5.1; interference involving procedure calls uses the coarse-grain
//! argument-relatedness method of §5.2 (refined by read-only/update argument
//! classification).

use crate::report::{TransformKind, TransformRecord, TransformReport};
use sil_analysis::interference::{statements_independent, touches_node_locations};
use sil_analysis::state::AbstractState;
use sil_analysis::summary::ProcSummary;
use sil_analysis::transfer::Analyzer;
use sil_analysis::{analyze_program, AnalysisResult};
use sil_lang::ast::*;
use sil_lang::pretty::pretty_stmt;
use sil_lang::types::{ProcSignature, ProgramTypes};
use std::collections::HashMap;

/// Options controlling the packing pass.
#[derive(Debug, Clone)]
pub struct PackOptions {
    /// Pack basic statements (§5.1).
    pub pack_statements: bool,
    /// Pack procedure calls (§5.2).
    pub pack_calls: bool,
    /// Maximum number of arms in one parallel statement (0 = unlimited).
    pub max_arms: usize,
}

impl Default for PackOptions {
    fn default() -> Self {
        PackOptions {
            pack_statements: true,
            pack_calls: true,
            max_arms: 0,
        }
    }
}

/// Run the packing pass over every (reachable) procedure of `program`.
pub fn pack_program(
    program: &Program,
    types: &ProgramTypes,
    options: &PackOptions,
) -> (Program, TransformReport) {
    let analysis = analyze_program(program, types);
    pack_program_with_analysis(program, types, &analysis, options)
}

/// Run the packing pass re-using an existing whole-program analysis.
pub fn pack_program_with_analysis(
    program: &Program,
    types: &ProgramTypes,
    analysis: &AnalysisResult,
    options: &PackOptions,
) -> (Program, TransformReport) {
    // The analysis already computed the argument-mode summaries; reuse them
    // so a cached AnalysisResult makes packing cost only the packing walk.
    let mut analyzer = Analyzer::with_summaries(program, types, analysis.summaries.clone());
    analyzer.set_record_calls(false);
    let mut report = TransformReport::default();
    let mut procedures = Vec::with_capacity(program.procedures.len());
    for proc in &program.procedures {
        let Some(sig) = types.proc(&proc.name) else {
            procedures.push(proc.clone());
            continue;
        };
        let entry = analysis
            .procedure(&proc.name)
            .map(|a| a.entry.clone())
            .unwrap_or_default();
        let packer = Packer {
            analyzer: &analyzer,
            sig,
            summaries: &analyzer.summaries,
            options,
            report: &mut report,
        };
        let body = packer.pack(proc.body.clone(), &entry);
        procedures.push(Procedure {
            body,
            ..proc.clone()
        });
    }
    (
        Program {
            name: program.name.clone(),
            procedures,
            span: program.span,
        },
        report,
    )
}

struct Packer<'a, 'r> {
    analyzer: &'a Analyzer<'a>,
    sig: &'a ProcSignature,
    summaries: &'a HashMap<String, ProcSummary>,
    options: &'a PackOptions,
    report: &'r mut TransformReport,
}

impl Packer<'_, '_> {
    /// Whether a statement is eligible to join a parallel group at all.
    fn eligible(&self, stmt: &Stmt) -> bool {
        match stmt {
            Stmt::Assign { .. } => self.options.pack_statements,
            Stmt::Call { .. } => self.options.pack_calls,
            _ => false,
        }
    }

    fn pack(mut self, stmt: Stmt, state: &AbstractState) -> Stmt {
        self.pack_stmt(stmt, state)
    }

    fn pack_stmt(&mut self, stmt: Stmt, state: &AbstractState) -> Stmt {
        match stmt {
            Stmt::Block { stmts, span } => Stmt::Block {
                stmts: self.pack_block(stmts, state),
                span,
            },
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                span,
            } => Stmt::If {
                cond,
                then_branch: Box::new(self.pack_stmt(*then_branch, state)),
                else_branch: else_branch.map(|e| Box::new(self.pack_stmt(*e, state))),
                span,
            },
            Stmt::While { cond, body, span } => {
                // The loop body is packed under the loop invariant state.
                let mut warnings = Vec::new();
                let original = Stmt::While {
                    cond: cond.clone(),
                    body: body.clone(),
                    span,
                };
                let invariant = self
                    .analyzer
                    .transfer(state, &original, self.sig, &mut warnings);
                Stmt::While {
                    cond,
                    body: Box::new(self.pack_stmt(*body, &invariant)),
                    span,
                }
            }
            Stmt::Par { arms, span } => Stmt::Par {
                arms: arms.into_iter().map(|a| self.pack_stmt(a, state)).collect(),
                span,
            },
            simple => simple,
        }
    }

    fn pack_block(&mut self, stmts: Vec<Stmt>, entry: &AbstractState) -> Vec<Stmt> {
        let mut warnings = Vec::new();
        let mut out: Vec<Stmt> = Vec::with_capacity(stmts.len());
        let mut current = entry.clone();

        // The group being grown, plus the state at the point just before it.
        let mut group: Vec<Stmt> = Vec::new();
        let mut group_state = current.clone();

        macro_rules! flush {
            ($self:ident, $group:ident, $group_state:ident, $out:ident) => {
                if !$group.is_empty() {
                    if $group.len() >= 2 {
                        $self.record_group(&$group, &$group_state);
                        $out.push(Stmt::par(std::mem::take(&mut $group)));
                    } else {
                        $out.append(&mut $group);
                    }
                }
            };
        }

        for stmt in stmts {
            let state_before = current.clone();
            // Advance the analysis past this statement regardless of how it
            // will be placed.
            current = self
                .analyzer
                .transfer(&current, &stmt, self.sig, &mut warnings);

            // Compound statements are packed recursively and break any group.
            if !self.eligible(&stmt) {
                flush!(self, group, group_state, out);
                let packed = self.pack_stmt(stmt, &state_before);
                out.push(packed);
                group_state = current.clone();
                continue;
            }

            if group.is_empty() {
                group_state = state_before;
                group.push(stmt);
                continue;
            }

            let arms_full = self.options.max_arms != 0 && group.len() >= self.options.max_arms;
            let mut candidate: Vec<&Stmt> = group.iter().collect();
            candidate.push(&stmt);
            // The disjointness guarantees behind the interference analysis
            // (§3.1) require the structure to be a TREE; when it may be a
            // DAG or cyclic, only variable-level statements may be grouped.
            let structure_ok = group_state.structure.is_tree()
                || candidate
                    .iter()
                    .all(|s| !touches_node_locations(s, self.sig));
            let independent = !arms_full
                && structure_ok
                && statements_independent(
                    &candidate,
                    self.sig,
                    &group_state.matrix,
                    self.summaries,
                );
            if independent {
                group.push(stmt);
            } else {
                flush!(self, group, group_state, out);
                group_state = state_before;
                group.push(stmt);
            }
        }
        flush!(self, group, group_state, out);
        out
    }

    fn record_group(&mut self, group: &[Stmt], state: &AbstractState) {
        let arms: Vec<String> = group.iter().map(pretty_stmt).collect();
        let call_count = group
            .iter()
            .filter(|s| matches!(s, Stmt::Call { .. }))
            .count();
        let kind = if call_count == group.len() {
            TransformKind::CallPacking
        } else if call_count == 0 {
            TransformKind::StatementPacking
        } else {
            TransformKind::MixedPacking
        };
        let justification = match kind {
            TransformKind::CallPacking => format!(
                "the update arguments of each call are unrelated to the arguments of the others \
                 in the path matrix at this point ({} relations)",
                state.matrix.relation_count()
            ),
            _ => "the pairwise interference sets are empty at this program point".to_string(),
        };
        self.report.records.push(TransformRecord {
            procedure: self.sig.name.clone(),
            kind,
            arms,
            justification,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sil_lang::frontend;
    use sil_lang::pretty::pretty_program;
    use sil_lang::visit::collect_simple_stmts;

    fn parallelize(src: &str) -> (Program, TransformReport) {
        let (program, types) = frontend(src).unwrap();
        pack_program(&program, &types, &PackOptions::default())
    }

    /// Figure 8: the automatically parallelized add_and_reverse program.
    #[test]
    fn figure_8_add_and_reverse() {
        let (parallel, report) = parallelize(sil_lang::testsrc::ADD_AND_REVERSE);
        let printed = pretty_program(&parallel);

        // main: the two loads and the two add_n calls are parallelized.
        assert!(
            printed.contains("lside := root.left || rside := root.right"),
            "{printed}"
        );
        assert!(
            printed.contains("add_n(lside, 1) || add_n(rside, -1)"),
            "{printed}"
        );
        // reverse(root) must stay sequential (root is related to both sides).
        assert!(
            !printed.contains("add_n(rside, -1) || reverse(root)"),
            "{printed}"
        );
        assert!(!printed.contains("reverse(root) ||"), "{printed}");

        // add_n: value update and the two loads in parallel; the two
        // recursive calls in parallel.
        assert!(
            printed.contains("h.value := h.value + n || l := h.left || r := h.right"),
            "{printed}"
        );
        assert!(printed.contains("add_n(l, n) || add_n(r, n)"), "{printed}");

        // reverse: the two loads, the two recursive calls, and the two stores
        // each form a parallel statement.
        assert!(printed.contains("l := h.left || r := h.right"), "{printed}");
        assert!(printed.contains("reverse(l) || reverse(r)"), "{printed}");
        assert!(printed.contains("h.left := r || h.right := l"), "{printed}");

        // And the report documents every group.
        assert!(report.count() >= 6, "{report}");
        assert!(report.count_of(TransformKind::CallPacking) >= 3, "{report}");
        assert!(!report.for_procedure("add_n").is_empty());
    }

    #[test]
    fn parallel_output_reparses_and_typechecks() {
        let (parallel, _) = parallelize(sil_lang::testsrc::ADD_AND_REVERSE);
        let printed = pretty_program(&parallel);
        let (reparsed, _types) = frontend(&printed).expect("parallel output is valid SIL");
        assert!(reparsed.procedure("add_n").unwrap().body.has_par());
    }

    #[test]
    fn packing_preserves_statement_multiset() {
        let (program, types) = frontend(sil_lang::testsrc::ADD_AND_REVERSE).unwrap();
        let (parallel, _) = pack_program(&program, &types, &PackOptions::default());
        for (orig, new) in program.procedures.iter().zip(parallel.procedures.iter()) {
            let mut orig_stmts: Vec<String> = collect_simple_stmts(&orig.body)
                .iter()
                .map(|s| pretty_stmt(s))
                .collect();
            let mut new_stmts: Vec<String> = collect_simple_stmts(&new.body)
                .iter()
                .map(|s| pretty_stmt(s))
                .collect();
            orig_stmts.sort();
            new_stmts.sort();
            assert_eq!(orig_stmts, new_stmts, "statements must be preserved");
        }
    }

    #[test]
    fn dependent_statements_are_not_packed() {
        let src = r#"
program dep
procedure main()
  a, b, c: handle
begin
  a := new();
  b := a;
  c := b
end
"#;
        let (parallel, report) = parallelize(src);
        // every statement depends on the previous one
        assert!(!parallel.procedure("main").unwrap().body.has_par());
        assert_eq!(report.count(), 0);
    }

    #[test]
    fn independent_news_are_packed() {
        let src = r#"
program indep
procedure main()
  a, b, c: handle
begin
  a := new();
  b := new();
  c := new()
end
"#;
        let (parallel, report) = parallelize(src);
        assert!(parallel.procedure("main").unwrap().body.has_par());
        assert_eq!(report.count(), 1);
        assert_eq!(report.records[0].arms.len(), 3);
    }

    #[test]
    fn interfering_calls_are_not_packed() {
        // both calls update overlapping parts of the same tree
        let src = r#"
program conflict
procedure bump(t: handle)
  l: handle
begin
  if t <> nil then
  begin
    t.value := t.value + 1;
    l := t.left;
    bump(l)
  end
end
procedure main()
  root, sub: handle
begin
  root := new();
  sub := root.left;
  bump(root);
  bump(sub)
end
"#;
        let (parallel, report) = parallelize(src);
        let main = parallel.procedure("main").unwrap();
        let printed = sil_lang::pretty::pretty_procedure(main);
        assert!(!printed.contains("bump(root) || bump(sub)"), "{printed}");
        assert_eq!(report.count_of(TransformKind::CallPacking), 0, "{report}");
    }

    #[test]
    fn read_only_calls_on_related_handles_are_packed() {
        let src = r#"
program reads
function sum(t: handle) int
  l, r: handle; s, a, b: int
begin
  s := 0;
  if t <> nil then
  begin
    l := t.left;
    r := t.right;
    a := sum(l);
    b := sum(r);
    s := t.value + a + b
  end
end
return (s)
procedure main()
  root, sub: handle; x, y: int
begin
  root := new();
  sub := root.left;
  x := sum(root);
  y := sum(sub)
end
"#;
        let (_parallel, report) = parallelize(src);
        // The two recursive sum calls inside `sum` are function-call
        // *assignments* whose results feed the same expression; they write
        // different scalars and read disjoint subtrees, so they pack.
        assert!(
            report
                .for_procedure("sum")
                .iter()
                .any(|r| r.arms.iter().any(|a| a.contains("sum(l)"))
                    && r.arms.iter().any(|a| a.contains("sum(r)"))),
            "{report}"
        );
    }

    #[test]
    fn max_arms_limits_group_size() {
        let src = r#"
program wide
procedure main()
  a, b, c, d: handle
begin
  a := new();
  b := new();
  c := new();
  d := new()
end
"#;
        let (program, types) = frontend(src).unwrap();
        let options = PackOptions {
            max_arms: 2,
            ..PackOptions::default()
        };
        let (_, report) = pack_program(&program, &types, &options);
        assert_eq!(report.count(), 2);
        assert!(report.records.iter().all(|r| r.arms.len() <= 2));
    }

    #[test]
    fn disabling_call_packing_keeps_calls_sequential() {
        let (program, types) = frontend(sil_lang::testsrc::ADD_AND_REVERSE).unwrap();
        let options = PackOptions {
            pack_calls: false,
            ..PackOptions::default()
        };
        let (parallel, report) = pack_program(&program, &types, &options);
        let printed = pretty_program(&parallel);
        assert!(!printed.contains("add_n(l, n) || add_n(r, n)"));
        assert_eq!(report.count_of(TransformKind::CallPacking), 0);
        // statement packing still happens
        assert!(printed.contains("l := h.left || r := h.right"), "{printed}");
    }
}
