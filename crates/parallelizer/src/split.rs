//! Sequence splitting (§5.3, Figure 9): transform `U; V` into `U || V`.
//!
//! Within each block the pass looks at maximal runs of basic (non-call)
//! statements and tries to divide them into two contiguous halves whose
//! relative interference set is empty.  Split points are tried from the
//! middle outwards so the two arms are as balanced as possible (the point of
//! the transformation is to create coarse-grain parallelism).

use crate::report::{TransformKind, TransformRecord, TransformReport};
use sil_analysis::sequences::sequences_independent;
use sil_analysis::state::AbstractState;
use sil_analysis::transfer::Analyzer;
use sil_analysis::{analyze_program, AnalysisResult};
use sil_lang::ast::*;
use sil_lang::basic::BasicStmt;
use sil_lang::pretty::pretty_stmt;
use sil_lang::types::{ProcSignature, ProgramTypes};

/// Minimum number of statements in a run before a split is attempted.
pub const MIN_RUN: usize = 4;

/// Run the sequence-splitting pass over every procedure.
pub fn split_program(program: &Program, types: &ProgramTypes) -> (Program, TransformReport) {
    let analysis = analyze_program(program, types);
    split_program_with_analysis(program, types, &analysis)
}

/// Run the sequence-splitting pass re-using an existing analysis.
pub fn split_program_with_analysis(
    program: &Program,
    types: &ProgramTypes,
    analysis: &AnalysisResult,
) -> (Program, TransformReport) {
    let mut analyzer = Analyzer::new(program, types);
    analyzer.set_record_calls(false);
    let mut report = TransformReport::default();
    let mut procedures = Vec::with_capacity(program.procedures.len());
    for proc in &program.procedures {
        let Some(sig) = types.proc(&proc.name) else {
            procedures.push(proc.clone());
            continue;
        };
        let entry = analysis
            .procedure(&proc.name)
            .map(|a| a.entry.clone())
            .unwrap_or_default();
        let body = split_stmt(&analyzer, proc.body.clone(), &entry, sig, &mut report);
        procedures.push(Procedure {
            body,
            ..proc.clone()
        });
    }
    (
        Program {
            name: program.name.clone(),
            procedures,
            span: program.span,
        },
        report,
    )
}

fn is_basic_non_call(stmt: &Stmt, sig: &ProcSignature) -> bool {
    matches!(
        BasicStmt::classify(stmt, sig),
        Some(b) if !matches!(b, BasicStmt::ProcCall { .. } | BasicStmt::FuncAssign { .. })
    )
}

fn split_stmt(
    analyzer: &Analyzer<'_>,
    stmt: Stmt,
    state: &AbstractState,
    sig: &ProcSignature,
    report: &mut TransformReport,
) -> Stmt {
    match stmt {
        Stmt::Block { stmts, span } => Stmt::Block {
            stmts: split_block(analyzer, stmts, state, sig, report),
            span,
        },
        Stmt::If {
            cond,
            then_branch,
            else_branch,
            span,
        } => Stmt::If {
            cond,
            then_branch: Box::new(split_stmt(analyzer, *then_branch, state, sig, report)),
            else_branch: else_branch
                .map(|e| Box::new(split_stmt(analyzer, *e, state, sig, report))),
            span,
        },
        Stmt::While { cond, body, span } => {
            let mut warnings = Vec::new();
            let original = Stmt::While {
                cond: cond.clone(),
                body: body.clone(),
                span,
            };
            let invariant = analyzer.transfer(state, &original, sig, &mut warnings);
            Stmt::While {
                cond,
                body: Box::new(split_stmt(analyzer, *body, &invariant, sig, report)),
                span,
            }
        }
        Stmt::Par { arms, span } => Stmt::Par {
            arms: arms
                .into_iter()
                .map(|a| split_stmt(analyzer, a, state, sig, report))
                .collect(),
            span,
        },
        simple => simple,
    }
}

fn split_block(
    analyzer: &Analyzer<'_>,
    stmts: Vec<Stmt>,
    entry: &AbstractState,
    sig: &ProcSignature,
    report: &mut TransformReport,
) -> Vec<Stmt> {
    let mut warnings = Vec::new();
    let mut out = Vec::with_capacity(stmts.len());
    let mut current = entry.clone();
    let mut idx = 0;
    while idx < stmts.len() {
        // Gather the maximal run of basic statements starting here.
        let mut end = idx;
        while end < stmts.len() && is_basic_non_call(&stmts[end], sig) {
            end += 1;
        }
        let run = &stmts[idx..end];
        if run.len() >= MIN_RUN {
            if let Some((u, v)) = find_split(run, &current, sig) {
                report.records.push(TransformRecord {
                    procedure: sig.name.clone(),
                    kind: TransformKind::SequenceSplit,
                    arms: vec![
                        u.iter().map(pretty_stmt).collect::<Vec<_>>().join("; "),
                        v.iter().map(pretty_stmt).collect::<Vec<_>>().join("; "),
                    ],
                    justification: "the relative interference set of the two halves is empty"
                        .to_string(),
                });
                let par = Stmt::par(vec![Stmt::block(u.to_vec()), Stmt::block(v.to_vec())]);
                // Advance the analysis over the original run.
                for s in run {
                    current = analyzer.transfer(&current, s, sig, &mut warnings);
                }
                out.push(par);
                idx = end;
                continue;
            }
        }
        if run.is_empty() {
            // A non-basic statement: recurse into it and move on.
            let stmt = stmts[idx].clone();
            let state_before = current.clone();
            current = analyzer.transfer(&current, &stmt, sig, &mut warnings);
            out.push(split_stmt(analyzer, stmt, &state_before, sig, report));
            idx += 1;
        } else {
            for s in run {
                current = analyzer.transfer(&current, s, sig, &mut warnings);
                out.push(s.clone());
            }
            idx = end;
        }
    }
    out
}

/// Try split points from the middle outwards; return the first independent
/// division into two non-empty halves.
fn find_split<'a>(
    run: &'a [Stmt],
    state: &AbstractState,
    sig: &ProcSignature,
) -> Option<(&'a [Stmt], &'a [Stmt])> {
    let n = run.len();
    let mid = n / 2;
    let mut candidates: Vec<usize> = vec![mid];
    for delta in 1..n {
        if mid >= delta && mid - delta >= 1 {
            candidates.push(mid - delta);
        }
        if mid + delta < n {
            candidates.push(mid + delta);
        }
    }
    for cut in candidates {
        let (u, v) = run.split_at(cut);
        if u.is_empty() || v.is_empty() {
            continue;
        }
        if sequences_independent(u, v, state, sig) {
            return Some((u, v));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use sil_lang::frontend;
    use sil_lang::pretty::pretty_program;

    #[test]
    fn splits_independent_subtree_work() {
        let src = r#"
program halves
procedure main()
  t, a, b: handle; x, y: int
begin
  t := build(3);
  a := t.left;
  x := a.value;
  a.value := x + 1;
  b := t.right;
  y := b.value;
  b.value := y + 1
end
function build(depth: int) handle
  t, l, r: handle; d: int
begin
  t := new();
  if depth > 0 then
  begin
    d := depth - 1;
    l := build(d);
    r := build(d);
    t.left := l;
    t.right := r
  end
end
return (t)
"#;
        let (program, types) = frontend(src).unwrap();
        let (split, report) = split_program(&program, &types);
        let printed = pretty_program(&split);
        assert_eq!(
            report.count_of(TransformKind::SequenceSplit),
            1,
            "{printed}"
        );
        assert!(split.procedure("main").unwrap().body.has_par());
        // the two halves each touch one subtree
        let record = &report.records[0];
        assert!(record.arms[0].contains("a := t.left"), "{record}");
        assert!(record.arms[1].contains("b := t.right"), "{record}");
    }

    #[test]
    fn does_not_split_dependent_sequences() {
        let src = r#"
program chained
procedure main()
  t, a, b: handle; x: int
begin
  t := new();
  a := t.left;
  b := a.left;
  x := b.value;
  b.value := x + 1;
  a.value := x
end
"#;
        let (program, types) = frontend(src).unwrap();
        let (split, report) = split_program(&program, &types);
        assert_eq!(report.count_of(TransformKind::SequenceSplit), 0);
        assert!(!split.procedure("main").unwrap().body.has_par());
    }

    #[test]
    fn short_runs_are_left_alone() {
        let src = r#"
program short
procedure main()
  a, b: handle
begin
  a := new();
  b := new()
end
"#;
        let (program, types) = frontend(src).unwrap();
        let (split, report) = split_program(&program, &types);
        assert_eq!(report.count(), 0);
        assert!(!split.procedure("main").unwrap().body.has_par());
    }

    #[test]
    fn split_preserves_statements() {
        let src = r#"
program halves
procedure main()
  t, a, b: handle; x, y: int
begin
  t := new();
  a := t.left;
  x := a.value;
  a.value := x + 1;
  b := t.right;
  y := b.value;
  b.value := y + 1
end
"#;
        let (program, types) = frontend(src).unwrap();
        let (split, _) = split_program(&program, &types);
        use sil_lang::visit::collect_simple_stmts;
        let before: usize = collect_simple_stmts(&program.procedure("main").unwrap().body).len();
        let after: usize = collect_simple_stmts(&split.procedure("main").unwrap().body).len();
        assert_eq!(before, after);
    }
}
