//! Transformation reports: what was parallelized, where, and why.

use std::fmt;

/// The kind of transformation that was applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransformKind {
    /// §5.1: several basic statements packed into one parallel statement.
    StatementPacking,
    /// §5.2: procedure calls packed into one parallel statement.
    CallPacking,
    /// §5.1 + §5.2: a mix of calls and basic statements packed together.
    MixedPacking,
    /// §5.3: a statement sequence split into two parallel halves.
    SequenceSplit,
}

impl fmt::Display for TransformKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformKind::StatementPacking => write!(f, "statement packing (§5.1)"),
            TransformKind::CallPacking => write!(f, "call packing (§5.2)"),
            TransformKind::MixedPacking => write!(f, "mixed packing (§5.1+§5.2)"),
            TransformKind::SequenceSplit => write!(f, "sequence split (§5.3)"),
        }
    }
}

/// One applied transformation.
#[derive(Debug, Clone)]
pub struct TransformRecord {
    /// The procedure the transformation occurred in.
    pub procedure: String,
    /// What kind of transformation.
    pub kind: TransformKind,
    /// Pretty-printed arms of the resulting parallel statement.
    pub arms: Vec<String>,
    /// Why the transformation is safe (e.g. "interference set empty",
    /// "handle arguments unrelated").
    pub justification: String,
}

impl fmt::Display for TransformRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{}] in `{}`:", self.kind, self.procedure)?;
        writeln!(f, "    {}", self.arms.join(" || "))?;
        write!(f, "    because {}", self.justification)
    }
}

/// The full report of a parallelization run.
#[derive(Debug, Clone, Default)]
pub struct TransformReport {
    pub records: Vec<TransformRecord>,
}

impl TransformReport {
    /// Number of parallel statements introduced.
    pub fn count(&self) -> usize {
        self.records.len()
    }

    /// Number of parallel statements of a given kind.
    pub fn count_of(&self, kind: TransformKind) -> usize {
        self.records.iter().filter(|r| r.kind == kind).count()
    }

    /// Records for one procedure.
    pub fn for_procedure(&self, name: &str) -> Vec<&TransformRecord> {
        self.records
            .iter()
            .filter(|r| r.procedure == name)
            .collect()
    }

    /// Total number of statements now running in parallel arms.
    pub fn total_parallel_arms(&self) -> usize {
        self.records.iter().map(|r| r.arms.len()).sum()
    }
}

impl fmt::Display for TransformReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.records.is_empty() {
            return writeln!(f, "no parallelism detected");
        }
        writeln!(
            f,
            "{} parallel statement(s) introduced:",
            self.records.len()
        )?;
        for r in &self.records {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(kind: TransformKind) -> TransformRecord {
        TransformRecord {
            procedure: "main".into(),
            kind,
            arms: vec!["a := b.left".into(), "c := b.right".into()],
            justification: "interference set is empty".into(),
        }
    }

    #[test]
    fn report_counts() {
        let mut report = TransformReport::default();
        report.records.push(record(TransformKind::StatementPacking));
        report.records.push(record(TransformKind::CallPacking));
        report.records.push(record(TransformKind::CallPacking));
        assert_eq!(report.count(), 3);
        assert_eq!(report.count_of(TransformKind::CallPacking), 2);
        assert_eq!(report.count_of(TransformKind::SequenceSplit), 0);
        assert_eq!(report.for_procedure("main").len(), 3);
        assert_eq!(report.for_procedure("other").len(), 0);
        assert_eq!(report.total_parallel_arms(), 6);
    }

    #[test]
    fn display_mentions_kind_and_arms() {
        let r = record(TransformKind::StatementPacking);
        let s = r.to_string();
        assert!(s.contains("5.1"));
        assert!(s.contains("a := b.left || c := b.right"));
        let empty = TransformReport::default();
        assert!(empty.to_string().contains("no parallelism"));
    }
}
