//! Differential mutation harness for incremental re-analysis.
//!
//! A deterministic program mutator derives edited variants of every built-in
//! workload (rename a local, swap two adjacent statements, duplicate a
//! statement in one procedure body, append a dead procedure).  For every
//! base/edited pair the engine — primed with the base program so the edit
//! takes the incremental path — must produce an analysis whose digest equals
//! a from-scratch `analyze_program` of the edited program.  A dedicated test
//! additionally proves that a single-procedure edit reuses the summaries and
//! retained walks of every strongly connected component outside the edited
//! procedure's dependent cone.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sil_analysis::{analyze_program, CallGraph};
use sil_engine::Engine;
use sil_lang::ast::*;
use sil_lang::span::Span;
use sil_lang::{frontend, pretty_program};
use sil_workloads::Workload;
use std::collections::{HashMap, HashSet};

// ---------------------------------------------------------------------------
// The mutator
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mutation {
    /// Rename one local variable of one procedure (alpha-conversion: the
    /// analysis result changes only in handle names).
    RenameLocal,
    /// Swap two adjacent statements of one block (usually a semantic change).
    SwapStmts,
    /// Duplicate one statement of one block in one procedure body.
    DuplicateStmt,
    /// Append a procedure unreachable from `main`.
    AddDeadProcedure,
}

const MUTATIONS: [Mutation; 4] = [
    Mutation::RenameLocal,
    Mutation::SwapStmts,
    Mutation::DuplicateStmt,
    Mutation::AddDeadProcedure,
];

fn rename_path(path: &HandlePath, old: &str, new: &str) -> HandlePath {
    HandlePath {
        base: if path.base == old {
            new.to_string()
        } else {
            path.base.clone()
        },
        fields: path.fields.clone(),
    }
}

fn rename_expr(expr: &Expr, old: &str, new: &str) -> Expr {
    match expr {
        Expr::Int(_) | Expr::Nil => expr.clone(),
        Expr::Path(p) => Expr::Path(rename_path(p, old, new)),
        Expr::Value(p) => Expr::Value(rename_path(p, old, new)),
        Expr::Unary(op, e) => Expr::Unary(*op, Box::new(rename_expr(e, old, new))),
        Expr::Binary(op, a, b) => Expr::Binary(
            *op,
            Box::new(rename_expr(a, old, new)),
            Box::new(rename_expr(b, old, new)),
        ),
    }
}

fn rename_lvalue(lvalue: &LValue, old: &str, new: &str) -> LValue {
    match lvalue {
        LValue::Var(v) => LValue::Var(if v == old { new.to_string() } else { v.clone() }),
        LValue::Field(p, f) => LValue::Field(rename_path(p, old, new), *f),
        LValue::Value(p) => LValue::Value(rename_path(p, old, new)),
    }
}

/// Rename every *variable* occurrence (procedure names are untouched).
fn rename_stmt(stmt: &Stmt, old: &str, new: &str) -> Stmt {
    match stmt {
        Stmt::Assign { lhs, rhs, span } => Stmt::Assign {
            lhs: rename_lvalue(lhs, old, new),
            rhs: match rhs {
                Rhs::Expr(e) => Rhs::Expr(rename_expr(e, old, new)),
                Rhs::New => Rhs::New,
                Rhs::Call(f, args) => Rhs::Call(
                    f.clone(),
                    args.iter().map(|a| rename_expr(a, old, new)).collect(),
                ),
            },
            span: *span,
        },
        Stmt::If {
            cond,
            then_branch,
            else_branch,
            span,
        } => Stmt::If {
            cond: rename_expr(cond, old, new),
            then_branch: Box::new(rename_stmt(then_branch, old, new)),
            else_branch: else_branch
                .as_ref()
                .map(|e| Box::new(rename_stmt(e, old, new))),
            span: *span,
        },
        Stmt::While { cond, body, span } => Stmt::While {
            cond: rename_expr(cond, old, new),
            body: Box::new(rename_stmt(body, old, new)),
            span: *span,
        },
        Stmt::Block { stmts, span } => Stmt::Block {
            stmts: stmts.iter().map(|s| rename_stmt(s, old, new)).collect(),
            span: *span,
        },
        Stmt::Call { proc, args, span } => Stmt::Call {
            proc: proc.clone(),
            args: args.iter().map(|a| rename_expr(a, old, new)).collect(),
            span: *span,
        },
        Stmt::Par { arms, span } => Stmt::Par {
            arms: arms.iter().map(|a| rename_stmt(a, old, new)).collect(),
            span: *span,
        },
    }
}

/// Visit every block's statement list bottom-up.
fn for_each_block_mut(stmt: &mut Stmt, f: &mut impl FnMut(&mut Vec<Stmt>)) {
    match stmt {
        Stmt::Block { stmts, .. } => {
            for s in stmts.iter_mut() {
                for_each_block_mut(s, f);
            }
            f(stmts);
        }
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            for_each_block_mut(then_branch, f);
            if let Some(e) = else_branch {
                for_each_block_mut(e, f);
            }
        }
        Stmt::While { body, .. } => for_each_block_mut(body, f),
        Stmt::Par { arms, .. } => {
            for a in arms.iter_mut() {
                for_each_block_mut(a, f);
            }
        }
        Stmt::Assign { .. } | Stmt::Call { .. } => {}
    }
}

fn count_blocks(stmt: &Stmt, min_len: usize) -> usize {
    let mut count = 0;
    let mut probe = stmt.clone();
    for_each_block_mut(&mut probe, &mut |stmts| {
        if stmts.len() >= min_len {
            count += 1;
        }
    });
    count
}

/// Apply one deterministic mutation; `None` when the program offers no
/// applicable site.
fn apply_mutation(program: &Program, mutation: Mutation, rng: &mut StdRng) -> Option<Program> {
    let mut mutated = program.clone();
    match mutation {
        Mutation::RenameLocal => {
            let candidates: Vec<usize> = program
                .procedures
                .iter()
                .enumerate()
                .filter(|(_, p)| !p.locals.is_empty())
                .map(|(i, _)| i)
                .collect();
            let &pi = candidates.get(rng.gen_range(0..candidates.len().max(1)))?;
            let proc = &mut mutated.procedures[pi];
            let li = rng.gen_range(0..proc.locals.len());
            let old = proc.locals[li].name.clone();
            let mut new = format!("{old}_rn");
            while proc.decl(&new).is_some() {
                new.push('x');
            }
            proc.locals[li].name = new.clone();
            proc.body = rename_stmt(&proc.body, &old, &new);
            if proc.return_var.as_deref() == Some(old.as_str()) {
                proc.return_var = Some(new);
            }
        }
        Mutation::SwapStmts => {
            let pi = rng.gen_range(0..program.procedures.len());
            let proc = &mut mutated.procedures[pi];
            let blocks = count_blocks(&proc.body, 2);
            if blocks == 0 {
                return None;
            }
            let target = rng.gen_range(0..blocks);
            let offset = rng.gen_u64() as usize;
            let mut seen = 0usize;
            let mut swapped = false;
            for_each_block_mut(&mut proc.body, &mut |stmts| {
                if stmts.len() < 2 || swapped || seen != target {
                    if stmts.len() >= 2 {
                        seen += 1;
                    }
                    return;
                }
                seen += 1;
                // Prefer a pair that actually differs so the edit is real.
                for k in 0..stmts.len() - 1 {
                    let i = (offset + k) % (stmts.len() - 1);
                    if stmts[i] != stmts[i + 1] {
                        stmts.swap(i, i + 1);
                        swapped = true;
                        return;
                    }
                }
                stmts.swap(0, 1);
                swapped = true;
            });
        }
        Mutation::DuplicateStmt => {
            let pi = rng.gen_range(0..program.procedures.len());
            let proc = &mut mutated.procedures[pi];
            let blocks = count_blocks(&proc.body, 1);
            if blocks == 0 {
                return None;
            }
            let target = rng.gen_range(0..blocks);
            let pick = rng.gen_u64() as usize;
            let mut seen = 0usize;
            for_each_block_mut(&mut proc.body, &mut |stmts| {
                if stmts.is_empty() {
                    return;
                }
                if seen == target {
                    let i = pick % stmts.len();
                    let copy = stmts[i].clone();
                    stmts.insert(i, copy);
                }
                seen += 1;
            });
        }
        Mutation::AddDeadProcedure => {
            let tag = rng.gen_range(0..1_000_000u64);
            mutated.procedures.push(Procedure {
                name: format!("dead_mut_{tag}"),
                params: vec![Decl::new("t", TypeName::Handle)],
                locals: vec![],
                body: Stmt::block(vec![Stmt::Assign {
                    lhs: LValue::Value(HandlePath::var("t")),
                    rhs: Rhs::Expr(Expr::Int(tag as i64)),
                    span: Span::DUMMY,
                }]),
                return_type: None,
                return_var: None,
                span: Span::DUMMY,
            });
        }
    }
    Some(mutated)
}

// ---------------------------------------------------------------------------
// The differential harness
// ---------------------------------------------------------------------------

/// ≥100 base/edited pairs across all workloads and mutation kinds: the
/// incremental engine digest must equal the from-scratch analysis digest on
/// every pair.
#[test]
fn incremental_digest_equals_full_analysis_on_mutated_programs() {
    let mut pairs = 0usize;
    let mut reused_walks_somewhere = false;

    for workload in Workload::ALL {
        let base_src = workload.source(workload.test_size());
        let (base_program, _) = frontend(&base_src).unwrap();
        let base_canonical = pretty_program(&base_program);

        // One engine per workload, primed with the base program: every
        // mutated variant takes the incremental path against it (and
        // against earlier variants' retained cones).
        let engine = Engine::default();
        engine.analyze_source(&base_src).unwrap();

        for (mi, mutation) in MUTATIONS.iter().enumerate() {
            for variant in 0..3u64 {
                let seed = 1_000 * (mi as u64 + 1) + 17 * variant + workload.name().len() as u64;
                let mut rng = StdRng::seed_from_u64(seed);
                let Some(mutated) = apply_mutation(&base_program, *mutation, &mut rng) else {
                    continue;
                };
                let mutated_src = pretty_program(&mutated);
                if mutated_src == base_canonical {
                    continue;
                }

                let entry = engine.analyze_source(&mutated_src).unwrap();
                let (program, types) = frontend(&mutated_src).unwrap();
                let oracle = analyze_program(&program, &types);
                assert_eq!(
                    entry.analysis.digest(),
                    oracle.digest(),
                    "{}/{mutation:?}/{variant}: incremental result diverges from scratch",
                    workload.name()
                );
                if entry
                    .incremental
                    .is_some_and(|stats| stats.walks_reused > 0)
                {
                    reused_walks_somewhere = true;
                }
                pairs += 1;
            }
        }
    }

    assert!(pairs >= 100, "only {pairs} edit pairs were exercised");
    assert!(
        reused_walks_somewhere,
        "not a single mutation replayed retained walks — incremental path inert?"
    );
}

/// A single-procedure edit must reuse the per-SCC summaries and retained
/// walks of every component outside the edited procedure's dependent cone.
#[test]
fn single_procedure_edit_reuses_everything_outside_the_dependent_cone() {
    // tree_sum: main -> sum -> (self), main -> build -> (self).
    // Editing `sum` leaves build's cone untouched; main and sum go stale.
    let base_src = Workload::TreeSum.source(Workload::TreeSum.test_size());
    let edited_src = base_src.replace("s := t.value + a + b", "s := t.value + a + b + 1");
    assert_ne!(edited_src, base_src, "edit must apply");

    let (base_program, _) = frontend(&base_src).unwrap();
    let (edited_program, _) = frontend(&edited_src).unwrap();
    let base_cones = CallGraph::of_program(&base_program).cone_fingerprints(&base_program);
    let edited_cones = CallGraph::of_program(&edited_program).cone_fingerprints(&edited_program);

    // The ground truth this test is about: exactly sum's dependent cone
    // (sum itself and its transitive caller main) changes fingerprints.
    let stale: HashSet<&str> = edited_cones
        .iter()
        .filter(|(name, fp)| base_cones.get(*name) != Some(fp))
        .map(|(name, _)| name.as_str())
        .collect();
    assert_eq!(
        stale,
        HashSet::from(["sum", "main"]),
        "dependent cone of the edit"
    );

    let distinct = |cones: &HashMap<String, u64>, filter: &dyn Fn(&str) -> bool| -> HashSet<u64> {
        cones
            .iter()
            .filter(|(n, _)| filter(n))
            .map(|(_, fp)| *fp)
            .collect()
    };
    let unchanged_sccs = distinct(&edited_cones, &|n| !stale.contains(n)).len();
    let stale_sccs = distinct(&edited_cones, &|n| stale.contains(n)).len();

    let engine = Engine::default();
    engine.analyze_source(&base_src).unwrap();
    let before = engine.stats();
    let entry = engine.analyze_source(&edited_src).unwrap();
    let after = engine.stats();

    // Summary cache: every unchanged component hits, every stale one misses.
    assert_eq!(
        (after.summaries.hits - before.summaries.hits) as usize,
        unchanged_sccs,
        "summaries outside the dependent cone must be reused"
    );
    assert_eq!(
        (after.summaries.misses - before.summaries.misses) as usize,
        stale_sccs,
        "summaries inside the dependent cone must be recomputed"
    );

    // Walk cache: same accounting at cone granularity…
    assert_eq!(
        (after.walks.hits - before.walks.hits) as usize,
        unchanged_sccs
    );
    assert_eq!(
        (after.walks.misses - before.walks.misses) as usize,
        stale_sccs
    );

    // …and per procedure in the entry's incremental stats.
    let stats = entry.incremental.expect("incremental path was taken");
    assert_eq!(stats.procedures_reused, edited_cones.len() - stale.len());
    assert_eq!(stats.procedures_stale, stale.len());
    assert!(
        stats.walks_reused > 0,
        "build's walks must replay: {stats:?}"
    );

    // The digests still agree with a from-scratch analysis.
    let (program, types) = frontend(&edited_src).unwrap();
    assert_eq!(
        entry.analysis.digest(),
        analyze_program(&program, &types).digest()
    );
}

/// Procedures unreachable from `main` are never walked, so the incremental
/// stats must not classify them — a steady-state edit of a program with dead
/// code reports exactly its live stale/reused split.
#[test]
fn unreachable_procedures_do_not_count_as_stale() {
    let base_src = Workload::TreeSum.source(4);
    let (base_program, _) = frontend(&base_src).unwrap();
    let mut rng = StdRng::seed_from_u64(1);
    let with_dead = apply_mutation(&base_program, Mutation::AddDeadProcedure, &mut rng).unwrap();
    let with_dead_src = pretty_program(&with_dead);

    let engine = Engine::default();
    engine.analyze_source(&with_dead_src).unwrap();

    // Edit main only: sum and build stay reusable, the dead procedure is
    // never walked and must appear in neither count.
    let edited = with_dead_src.replace("d := 4", "d := 3");
    assert_ne!(edited, with_dead_src, "edit must apply");
    let entry = engine.analyze_source(&edited).unwrap();
    let stats = entry.incremental.expect("incremental path was taken");
    assert_eq!(stats.procedures_stale, 1, "{stats:?}");
    assert_eq!(stats.procedures_reused, 2, "{stats:?}");
}

/// Alpha-conversion sanity: renaming a local is a real edit (digest moves
/// with the handle names) but stays exact through the incremental path.
#[test]
fn rename_local_round_trips_through_the_incremental_path() {
    let base_src = Workload::AddAndReverse.source(4);
    let (base_program, _) = frontend(&base_src).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let mutated = apply_mutation(&base_program, Mutation::RenameLocal, &mut rng).unwrap();
    let mutated_src = pretty_program(&mutated);
    assert_ne!(mutated_src, pretty_program(&base_program));

    // The mutated program still parses, type checks, and analyzes.
    let (program, types) = frontend(&mutated_src).unwrap();
    let oracle = analyze_program(&program, &types);

    let engine = Engine::default();
    engine.analyze_source(&base_src).unwrap();
    let entry = engine.analyze_source(&mutated_src).unwrap();
    assert_eq!(entry.analysis.digest(), oracle.digest());
}
