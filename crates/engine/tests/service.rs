//! Integration tests of the service layer: wire round-trips over generated
//! reports, and a real `sild`-style daemon on a temp socket driven by
//! concurrent clients.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sil_engine::service::{
    ErrorKind, LocalService, RemoteService, Request, Response, Server, Service, ShardedService,
    PROTOCOL_VERSION,
};
use sil_engine::{
    Addr, Engine, EngineConfig, ExecutionReport, IncrementalReport, ProcessOptions, ProgramReport,
};
use sil_workloads::Workload;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Round-trip property tests over generated reports
// ---------------------------------------------------------------------------

/// A string that stresses the encoder: control characters (the full
/// U+0000–U+001F range), quotes, backslashes, and multi-byte scalars.
fn nasty_string(rng: &mut StdRng) -> String {
    let len = rng.gen_range(0usize..16);
    (0..len)
        .map(|_| match rng.gen_range(0u32..8) {
            0 => char::from_u32(rng.gen_range(0u32..0x20)).unwrap(),
            1 => '"',
            2 => '\\',
            3 => '/',
            4 => 'é',
            5 => '\u{2028}',
            6 => '😀',
            _ => char::from_u32(rng.gen_range(0x20u32..0x7f)).unwrap(),
        })
        .collect()
}

fn generated_execution(rng: &mut StdRng) -> ExecutionReport {
    let work = rng.gen_range(1u64..1_000_000);
    let span = rng.gen_range(1u64..work + 1);
    ExecutionReport {
        work,
        span,
        parallelism: work as f64 / span as f64,
        allocated_nodes: rng.gen_range(0usize..10_000),
    }
}

fn generated_report(rng: &mut StdRng) -> ProgramReport {
    ProgramReport {
        name: nasty_string(rng),
        fingerprint: rng.gen_u64(),
        cache_hit: rng.gen_bool(0.5),
        structure: ["TREE", "DAG", "CYCLE", "UNKNOWN"][rng.gen_range(0usize..4)].to_string(),
        preserves_tree: rng.gen_bool(0.5),
        warnings: (0..rng.gen_range(0usize..4))
            .map(|_| nasty_string(rng))
            .collect(),
        rounds: rng.gen_range(0usize..50),
        analysis_digest: rng.gen_u64(),
        incremental: rng.gen_bool(0.5).then(|| IncrementalReport {
            procedures_reused: rng.gen_range(0usize..100),
            procedures_stale: rng.gen_range(0usize..100),
            walks_performed: rng.gen_range(0usize..1000),
            walks_reused: rng.gen_range(0usize..1000),
        }),
        transforms: rng.gen_bool(0.5).then(|| rng.gen_range(0usize..40)),
        violations: (0..rng.gen_range(0usize..3))
            .map(|_| nasty_string(rng))
            .collect(),
        parallel_source: rng.gen_bool(0.3).then(|| nasty_string(rng)),
        sequential_execution: rng.gen_bool(0.5).then(|| generated_execution(rng)),
        parallel_execution: rng.gen_bool(0.5).then(|| generated_execution(rng)),
    }
}

/// encode → parse → encode is the identity on 300 generated reports, and
/// the parsed value equals the original field for field.
#[test]
fn generated_reports_round_trip_exactly() {
    for seed in 0..300u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let report = generated_report(&mut rng);
        let json = report.to_json();
        assert!(
            !json.bytes().any(|b| b < 0x20),
            "seed {seed}: control byte leaked into the encoding: {json:?}"
        );
        let decoded =
            ProgramReport::from_json(&json).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{json}"));
        assert_eq!(decoded, report, "seed {seed}");
        assert_eq!(decoded.to_json(), json, "seed {seed}: re-encode diverged");
    }
}

/// The same property through the full wire envelope: a `Response::Report`
/// line decodes back to an identical response, and re-encodes identically.
#[test]
fn generated_reports_round_trip_through_the_wire_envelope() {
    for seed in 300..400u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let response = Response::report(generated_report(&mut rng));
        let line = response.encode();
        assert!(!line.contains('\n'), "seed {seed}: framing would break");
        let decoded = Response::decode(&line).unwrap();
        assert_eq!(decoded, response, "seed {seed}");
        assert_eq!(decoded.encode(), line, "seed {seed}");
    }
}

/// Real reports (every workload, execution on) round-trip too — not just
/// synthetic ones.
#[test]
fn workload_reports_round_trip_exactly() {
    let engine = Engine::default();
    let options = ProcessOptions {
        execute: true,
        emit_parallel_source: true,
        ..ProcessOptions::default()
    };
    for workload in Workload::ALL {
        let src = workload.source(workload.test_size());
        let report = engine.process(&src, &options).unwrap();
        let json = report.to_json();
        let decoded = ProgramReport::from_json(&json).unwrap();
        assert_eq!(decoded, report, "{}", workload.name());
        assert_eq!(decoded.to_json(), json, "{}", workload.name());
    }
}

// ---------------------------------------------------------------------------
// Daemon tests: a real server on a temp socket
// ---------------------------------------------------------------------------

fn temp_socket(name: &str) -> Addr {
    let path = std::env::temp_dir().join(format!("sild-test-{}-{name}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    Addr::Unix(path)
}

fn spawn_daemon(name: &str, shards: usize) -> (Arc<ShardedService>, sil_engine::ServerHandle) {
    let service = Arc::new(ShardedService::new(shards, EngineConfig::default()));
    let server = Server::bind(&temp_socket(name), service.clone()).unwrap();
    (service, server.spawn())
}

/// Three concurrent clients drive cold and warm cycles over every
/// workload; every report matches the in-process oracle digest, warm
/// requests are served as program-cache hits, and routing keeps each
/// program's cache traffic on exactly one shard.
#[test]
fn concurrent_clients_get_oracle_results_and_shards_stay_disjoint() {
    let shard_count = 3;
    let (service, handle) = spawn_daemon("concurrent", shard_count);
    let addr = handle.addr().to_string();

    // In-process oracle: digest per workload from a fresh engine.
    let oracle = LocalService::new(EngineConfig::default());
    let sources: Vec<String> = Workload::ALL
        .iter()
        .map(|w| w.source(w.test_size()))
        .collect();
    let expected: Vec<ProgramReport> = sources
        .iter()
        .map(|src| {
            oracle
                .process_source(src, &ProcessOptions::default())
                .unwrap()
        })
        .collect();

    let rounds = 2; // first round cold, second warm
    std::thread::scope(|scope| {
        for client in 0..3 {
            let addr = &addr;
            let sources = &sources;
            let expected = &expected;
            scope.spawn(move || {
                let remote = RemoteService::connect(addr).unwrap();
                remote.handshake().unwrap();
                for round in 0..rounds {
                    for (src, want) in sources.iter().zip(expected) {
                        let got = remote
                            .process_source(src, &ProcessOptions::default())
                            .unwrap();
                        assert_eq!(
                            got.analysis_digest, want.analysis_digest,
                            "client {client} round {round}: daemon diverged from in-process"
                        );
                        assert_eq!(got.fingerprint, want.fingerprint);
                        assert_eq!(got.name, want.name);
                        assert_eq!(got.transforms, want.transforms);
                    }
                }
            });
        }
    });

    // Warm behavior: repeats hit the one shard that owns each program.
    // Concurrent cold clients may race a program's very first analysis
    // (each of the 3 clients can miss it once before the first insert
    // lands), so misses are bounded per client, not globally unique —
    // but every request after the cold window must be a hit.
    let clients = 3u64;
    let client_requests = clients * rounds * sources.len() as u64;
    let stats = service.shard_stats();
    let hits: u64 = stats.iter().map(|s| s.programs.hits).sum();
    let misses: u64 = stats.iter().map(|s| s.programs.misses).sum();
    assert_eq!(hits + misses, client_requests);
    assert!(
        (sources.len() as u64..=clients * sources.len() as u64).contains(&misses),
        "misses confined to the cold window: {misses}"
    );
    assert!(hits >= client_requests - clients * sources.len() as u64);

    // Per-shard traffic confinement: a foreign shard never sees a byte of
    // a program's traffic — if routing were not sticky, repeats would
    // scatter across shards.
    let mut homed = vec![0usize; shard_count];
    for src in &sources {
        homed[service.shard_for_source(src)] += 1;
    }
    for (index, shard) in stats.iter().enumerate() {
        let touched = shard.programs.hits + shard.programs.misses;
        if homed[index] == 0 {
            assert_eq!(touched, 0, "shard {index} must stay untouched");
        } else {
            assert_eq!(
                touched,
                clients * rounds * homed[index] as u64,
                "shard {index} serves all traffic for its homed programs"
            );
        }
    }
    // Residency lives in the one shared store: each program cached exactly
    // once, regardless of how many shards and clients touched it.
    let store = service.store().stats();
    assert_eq!(
        store.programs.entries,
        sources.len(),
        "each program cached exactly once in the shared store"
    );

    handle.shutdown();
}

/// The warm daemon serves a repeated request with a program-cache hit that
/// is visible in the `Stats` response (the acceptance criterion).
#[test]
fn warm_daemon_hit_is_visible_in_stats_response() {
    let (_service, handle) = spawn_daemon("warmstats", 2);
    let remote = RemoteService::connect(&handle.addr().to_string()).unwrap();
    let src = Workload::AddAndReverse.source(4);

    let cold = remote
        .process_source(&src, &ProcessOptions::default())
        .unwrap();
    assert!(!cold.cache_hit);
    let warm = remote
        .process_source(&src, &ProcessOptions::default())
        .unwrap();
    assert!(warm.cache_hit, "repeat must be served from the cache");
    assert_eq!(warm.analysis_digest, cold.analysis_digest);

    let (shards, total, store, server) = remote.service_stats().unwrap();
    assert_eq!(shards.len(), 2);
    assert_eq!(total.programs.hits, 1, "the warm hit shows in Stats");
    assert_eq!(total.programs.misses, 1);
    let hot_shards = shards.iter().filter(|s| s.programs.hits > 0).count();
    assert_eq!(hot_shards, 1, "the hit happened on the program's one shard");
    // The store's own counters travel too, with residency and the live
    // policy choice per namespace.
    assert_eq!(store.programs.entries, 1);
    assert_eq!(store.programs.totals.hits, 1);
    assert!(store.programs.capacity > 0);
    // The daemon decorates Stats with its own connection counters.
    let server = server.expect("a daemon must attach server stats");
    assert_eq!(server.kind, "threaded");
    assert_eq!(server.accepted, 1);
    assert_eq!(server.active, 1);

    handle.shutdown();
}

/// Version negotiation: a request speaking an unsupported version gets a
/// protocol error naming the supported version, and the daemon keeps
/// serving current-version requests on the same connection.
#[test]
fn protocol_version_mismatch_negotiation() {
    let (_service, handle) = spawn_daemon("version", 1);
    let remote = RemoteService::connect(&handle.addr().to_string()).unwrap();

    match remote.call(Request::stats().with_version(99)) {
        Response::Error { error, version } => {
            assert_eq!(error.kind, ErrorKind::Protocol);
            assert_eq!(version, PROTOCOL_VERSION, "the error names what we speak");
            assert!(error.message.contains("99"), "{}", error.message);
            assert!(
                error.message.contains(&PROTOCOL_VERSION.to_string()),
                "{}",
                error.message
            );
        }
        other => panic!("expected a protocol error, got {other:?}"),
    }

    // A wrong-version shutdown must NOT stop the daemon…
    match remote.call(Request::shutdown().with_version(0)) {
        Response::Error { error, .. } => assert_eq!(error.kind, ErrorKind::Protocol),
        other => panic!("{other:?}"),
    }
    // …and the connection still serves the supported version.
    assert!(remote.handshake().is_ok());
    let (_, total, _, _) = remote.service_stats().unwrap();
    assert_eq!(total.programs.misses, 0);

    handle.shutdown();
}

/// Malformed lines get a malformed-error response without poisoning the
/// connection.
#[test]
fn malformed_lines_are_answered_not_fatal() {
    use std::io::{BufRead, BufReader, Write};
    let (_service, handle) = spawn_daemon("malformed", 1);
    let Addr::Unix(path) = handle.addr().clone() else {
        panic!("expected a unix socket");
    };
    let mut stream = std::os::unix::net::UnixStream::connect(&path).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    stream.write_all(b"this is not json\n").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    match Response::decode(line.trim()).unwrap() {
        Response::Error { error, .. } => assert_eq!(error.kind, ErrorKind::Malformed),
        other => panic!("{other:?}"),
    }

    // The same connection still answers a well-formed request.
    stream
        .write_all((Request::stats().encode() + "\n").as_bytes())
        .unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(matches!(
        Response::decode(line.trim()).unwrap(),
        Response::Stats { .. }
    ));

    handle.shutdown();
}

/// Regression test for the parser nesting-depth cap: a hostile line of
/// thousands of `[` characters used to overflow the recursive-descent
/// parser's stack and kill the daemon.  It must now come back as an
/// ordinary malformed-error response, and the connection must survive.
#[test]
fn hostile_deep_nesting_is_a_parse_error_not_a_crash() {
    use std::io::{BufRead, BufReader, Write};
    let (_service, handle) = spawn_daemon("deep-nesting", 1);
    let Addr::Unix(path) = handle.addr().clone() else {
        panic!("expected a unix socket");
    };
    let mut stream = std::os::unix::net::UnixStream::connect(&path).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    // Well past the ~128 depth cap, far short of what blows the stack.
    let mut hostile = "[".repeat(4096);
    hostile.push('\n');
    stream.write_all(hostile.as_bytes()).unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    match Response::decode(line.trim()).unwrap() {
        Response::Error { error, .. } => assert_eq!(error.kind, ErrorKind::Malformed),
        other => panic!("{other:?}"),
    }

    // Mixed nesting is capped too, and the connection still works after.
    let mut mixed = "[{\"a\":".repeat(2048);
    mixed.push('\n');
    stream.write_all(mixed.as_bytes()).unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(matches!(
        Response::decode(line.trim()).unwrap(),
        Response::Error { .. }
    ));

    stream
        .write_all((Request::stats().encode() + "\n").as_bytes())
        .unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(matches!(
        Response::decode(line.trim()).unwrap(),
        Response::Stats { .. }
    ));

    handle.shutdown();
}

/// A client-sent shutdown request stops the accept loop and removes the
/// socket file.
#[test]
fn client_shutdown_request_stops_the_daemon() {
    let (_service, handle) = spawn_daemon("shutdown", 2);
    let addr = handle.addr().clone();
    let remote = RemoteService::connect(&addr.to_string()).unwrap();
    match remote.call(Request::shutdown()) {
        Response::ShuttingDown { version } => assert_eq!(version, PROTOCOL_VERSION),
        other => panic!("{other:?}"),
    }
    // The accept loop exits on its own (join would hang otherwise)…
    let thread = std::thread::spawn(move || handle.shutdown());
    thread.join().unwrap();
    // …and the socket file is gone.
    let Addr::Unix(path) = addr else {
        unreachable!()
    };
    assert!(!path.exists(), "socket file must be cleaned up");
}

/// The TCP transport serves the same protocol (port 0 → kernel-assigned).
#[test]
fn tcp_transport_works_end_to_end() {
    let service = Arc::new(ShardedService::new(2, EngineConfig::default()));
    let server = Server::bind(&Addr::Tcp("127.0.0.1:0".into()), service).unwrap();
    let handle = server.spawn();
    let remote = RemoteService::connect(&handle.addr().to_string()).unwrap();
    remote.handshake().unwrap();

    let src = Workload::ListSum.source(4);
    let report = remote
        .process_source(&src, &ProcessOptions::default())
        .unwrap();
    let oracle = Engine::default()
        .process(&src, &ProcessOptions::default())
        .unwrap();
    assert_eq!(report.analysis_digest, oracle.analysis_digest);

    handle.shutdown();
}

/// A batch request through the daemon matches per-source requests and
/// keeps input order, including error slots for broken sources.
#[test]
fn daemon_batches_keep_order_and_carry_per_item_errors() {
    let (_service, handle) = spawn_daemon("batch", 3);
    let remote = RemoteService::connect(&handle.addr().to_string()).unwrap();

    let mut sources: Vec<String> = Workload::ALL
        .iter()
        .take(4)
        .map(|w| w.source(w.test_size()))
        .collect();
    sources.insert(2, "program broken(".to_string());

    let items = remote
        .process_sources(sources.clone(), &ProcessOptions::default())
        .unwrap();
    assert_eq!(items.len(), sources.len());
    for (index, (src, item)) in sources.iter().zip(&items).enumerate() {
        if index == 2 {
            let error = item.as_ref().unwrap_err();
            assert_eq!(error.kind, ErrorKind::Frontend, "{error}");
        } else {
            let report = item.as_ref().unwrap();
            let oracle = Engine::default()
                .process(src, &ProcessOptions::default())
                .unwrap();
            assert_eq!(
                report.analysis_digest, oracle.analysis_digest,
                "slot {index}"
            );
        }
    }

    handle.shutdown();
}

/// A daemon that accepts but never answers must not hang a client that
/// asked for a timeout: the read fails fast with a transport error naming
/// the timeout, while an untimed control connection would block forever.
#[test]
fn remote_timeout_fails_fast_against_a_mute_daemon() {
    use std::time::{Duration, Instant};

    // A "daemon" that accepts connections and then ignores them.
    let Addr::Unix(path) = temp_socket("mute") else {
        unreachable!()
    };
    let listener = std::os::unix::net::UnixListener::bind(&path).unwrap();
    let mute = std::thread::spawn(move || {
        let mut held = Vec::new();
        while let Ok((stream, _)) = listener.accept() {
            held.push(stream); // keep the connection open, never respond
            if held.len() >= 2 {
                break;
            }
        }
        std::thread::sleep(Duration::from_secs(2));
    });

    let remote = RemoteService::connect_with_timeout(
        &format!("unix:{}", path.display()),
        Some(Duration::from_millis(100)),
    )
    .unwrap();
    let started = Instant::now();
    let error = remote
        .process_source("program p main() {}", &ProcessOptions::default())
        .unwrap_err();
    let elapsed = started.elapsed();
    assert_eq!(error.kind, ErrorKind::Transport, "{error}");
    assert!(
        error.message.contains("timed out after 100ms"),
        "{}",
        error.message
    );
    assert!(
        elapsed < Duration::from_secs(1),
        "must fail fast, took {elapsed:?}"
    );

    // The connection is poisoned after the timeout: a late response could
    // otherwise be mistaken for the next request's answer, so further
    // exchanges fail fast instead.
    let error = remote
        .process_source("program p main() {}", &ProcessOptions::default())
        .unwrap_err();
    assert_eq!(error.kind, ErrorKind::Transport);
    assert!(
        error
            .message
            .contains("broken after a previous transport failure"),
        "{}",
        error.message
    );

    // Unblock the mute daemon's accept loop and clean up.
    let _ = std::os::unix::net::UnixStream::connect(&path);
    mute.join().unwrap();
    let _ = std::fs::remove_file(&path);
}

/// The timeout guards TCP exchanges too: a TCP daemon that accepts and
/// then goes mute fails the client's read within the budget.
#[test]
fn remote_tcp_timeout_fails_fast() {
    use std::time::{Duration, Instant};
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let mute = std::thread::spawn(move || {
        let held: Vec<_> = listener.incoming().take(1).collect();
        std::thread::sleep(Duration::from_millis(500));
        drop(held);
    });

    let remote = RemoteService::connect_with_timeout(
        &format!("tcp:{addr}"),
        Some(Duration::from_millis(100)),
    )
    .unwrap();
    let started = Instant::now();
    let error = remote
        .process_source("program p main() {}", &ProcessOptions::default())
        .unwrap_err();
    let elapsed = started.elapsed();
    assert_eq!(error.kind, ErrorKind::Transport, "{error}");
    assert!(
        error.message.contains("timed out after 100ms"),
        "{}",
        error.message
    );
    assert!(
        elapsed < Duration::from_secs(1),
        "must fail fast, took {elapsed:?}"
    );
    mute.join().unwrap();
}

/// `ClearCaches` over the wire empties every shard.
#[test]
fn clear_caches_over_the_wire() {
    let (service, handle) = spawn_daemon("clear", 2);
    let remote = RemoteService::connect(&handle.addr().to_string()).unwrap();
    for workload in [Workload::TreeSum, Workload::Bisort, Workload::ListReverse] {
        remote
            .process_source(&workload.source(3), &ProcessOptions::default())
            .unwrap();
    }
    assert_eq!(service.store().stats().programs.entries, 3);
    assert!(matches!(
        remote.call(Request::clear_caches()),
        Response::Cleared { .. }
    ));
    assert_eq!(service.store().stats().programs.entries, 0);
    handle.shutdown();
}

/// Routing to a shard — single requests and batch partitioning alike —
/// shows up as `shard-dispatch` spans in the trace dump, attributed to
/// the requests that were routed.
#[test]
fn shard_routing_is_traced() {
    let service = ShardedService::new(2, EngineConfig::default());
    match service.call(Request::analyze(Workload::TreeSum.source(3))) {
        Response::Analyzed { .. } => {}
        other => panic!("unexpected: {other:?}"),
    }
    let sources = vec![Workload::Bisort.source(3), Workload::ListSum.source(3)];
    match service.call(Request::batch(sources, ProcessOptions::default())) {
        Response::Batch { .. } => {}
        other => panic!("unexpected: {other:?}"),
    }
    let spans = service.service_trace().unwrap();
    let dispatches: Vec<_> = spans
        .iter()
        .filter(|s| s.span == "shard-dispatch")
        .collect();
    assert_eq!(dispatches.len(), 2, "one per routed request: {spans:?}");
    assert!(
        dispatches.iter().all(|s| s.request != 0),
        "spans must carry the minted request id: {dispatches:?}"
    );
    // A single shard routes trivially and records no dispatch span.
    let single = ShardedService::new(1, EngineConfig::default());
    match single.call(Request::analyze(Workload::TreeSum.source(3))) {
        Response::Analyzed { .. } => {}
        other => panic!("unexpected: {other:?}"),
    }
    assert!(single
        .service_trace()
        .unwrap()
        .iter()
        .all(|s| s.span != "shard-dispatch"));
}
