//! Integration tests of the memoizing analysis engine: cache identity,
//! batch concurrency against the sequential oracle, eviction behavior at
//! tiny capacities, and the cold-vs-warm speedup the caches exist for.

use sil_analysis::analyze_program;
use sil_engine::{Engine, EngineConfig, EvictionPolicy};
use sil_lang::frontend;
use sil_workloads::generator::{GeneratorConfig, ProgramGenerator};
use sil_workloads::Workload;
use std::time::Instant;

fn generated_sources(count: u64) -> Vec<String> {
    (0..count)
        .map(|seed| {
            let mut generator = ProgramGenerator::new(GeneratorConfig {
                statements: 30,
                handle_vars: 5,
                int_vars: 3,
                seed,
            });
            sil_lang::pretty_program(&generator.generate())
        })
        .collect()
}

#[test]
fn warm_reanalysis_is_identical_to_cold() {
    let engine = Engine::default();
    for workload in Workload::ALL {
        let src = workload.source(workload.test_size());
        let (cold, cold_hit) = engine.analyze_source_traced(&src).unwrap();
        let (warm, warm_hit) = engine.analyze_source_traced(&src).unwrap();
        assert!(!cold_hit, "{}", workload.name());
        assert!(warm_hit, "{}", workload.name());
        assert_eq!(
            cold.analysis.digest(),
            warm.analysis.digest(),
            "{}: warm result differs from cold",
            workload.name()
        );
        assert_eq!(cold.fingerprint, warm.fingerprint);
    }
}

#[test]
fn concurrent_batch_matches_sequential_analysis_program_by_program() {
    let sources = generated_sources(50);
    assert!(sources.len() >= 50);

    let engine = Engine::new(EngineConfig {
        parallel: true,
        ..EngineConfig::default()
    });
    let batch = engine.analyze_batch(&sources);

    for (i, (src, result)) in sources.iter().zip(&batch).enumerate() {
        let entry = result
            .as_ref()
            .unwrap_or_else(|e| panic!("program {i}: {e}"));
        let (program, types) = frontend(src).unwrap();
        let oracle = analyze_program(&program, &types);
        assert_eq!(
            entry.analysis.digest(),
            oracle.digest(),
            "program {i}: concurrent engine result diverges from analyze_program"
        );
    }
}

#[test]
fn batch_results_come_back_in_input_order() {
    let sources = generated_sources(12);
    let engine = Engine::default();
    let batch = engine.analyze_batch(&sources);
    for (src, result) in sources.iter().zip(&batch) {
        let entry = result.as_ref().unwrap();
        let (program, _) = frontend(src).unwrap();
        assert_eq!(
            entry.fingerprint,
            sil_lang::program_fingerprint(&program),
            "result order must match input order"
        );
    }
}

#[test]
fn eviction_stats_behave_at_small_capacities() {
    for policy in [EvictionPolicy::Lru, EvictionPolicy::Lfu] {
        // One lock stripe: globally ordered eviction, so the counts below
        // are exact rather than per-stripe-distribution-dependent.
        let engine = Engine::new(EngineConfig {
            program_cache_capacity: 2,
            summary_cache_capacity: 4,
            eviction: policy,
            parallel: false,
            store_stripes: 1,
            ..EngineConfig::default()
        });
        let sources = generated_sources(8);
        for src in &sources {
            engine.analyze_source(src).unwrap();
        }
        let store = engine.store_stats();
        assert_eq!(store.programs.entries, 2, "{policy:?}: capacity bound");
        assert_eq!(store.programs.totals.insertions, 8, "{policy:?}");
        assert_eq!(
            store.programs.totals.evictions, 6,
            "{policy:?}: 8 inserted into 2 slots"
        );
        assert_eq!(
            engine.stats().programs.misses,
            8,
            "{policy:?}: all distinct programs miss"
        );
        assert!(
            store.summaries.entries <= 4,
            "{policy:?}: summary capacity bound"
        );

        // Re-analyzing an evicted program misses and re-inserts.
        engine.analyze_source(&sources[0]).unwrap();
        assert_eq!(engine.stats().programs.misses, 9, "{policy:?}");
        assert_eq!(
            engine.store_stats().programs.totals.evictions,
            7,
            "{policy:?}"
        );
    }
}

#[test]
fn lfu_protects_the_hot_program_lru_does_not() {
    // One hot program queried between every cold insertion, capacity 2:
    // under LFU the hot entry's use count keeps it resident for the final
    // lookup; under LRU it also survives (it is always the most recent),
    // so distinguish the policies through the miss pattern of the *cold*
    // entries instead: LFU evicts the fresh zero-use entries, LRU rotates.
    let hot = Workload::TreeSum.source(4);
    let colds = generated_sources(6);

    let run = |policy: EvictionPolicy| {
        let engine = Engine::new(EngineConfig {
            program_cache_capacity: 2,
            summary_cache_capacity: 64,
            eviction: policy,
            parallel: false,
            store_stripes: 1,
            ..EngineConfig::default()
        });
        engine.analyze_source(&hot).unwrap();
        for cold in &colds {
            engine.analyze_source(&hot).unwrap(); // keep it hot
            engine.analyze_source(cold).unwrap();
        }
        let (_, final_hit) = engine.analyze_source_traced(&hot).unwrap();
        (final_hit, engine.stats().programs)
    };

    let (lfu_hit, lfu_stats) = run(EvictionPolicy::Lfu);
    assert!(lfu_hit, "LFU keeps the hot program resident");
    assert_eq!(lfu_stats.misses as usize, 1 + colds.len());

    let (lru_hit, _) = run(EvictionPolicy::Lru);
    assert!(lru_hit, "LRU also keeps it (always most recent)");
}

/// Acceptance: warm-cache re-analysis of an unchanged workload program is
/// at least 5x faster than a cold analysis.  The warm path is a hash plus a
/// map lookup, so in practice the ratio is orders of magnitude; 5x leaves
/// plenty of headroom for noisy CI machines.
#[test]
fn warm_cache_reanalysis_is_at_least_5x_faster() {
    let src = Workload::AddAndReverse.source(8);
    let engine = Engine::default();
    let rounds = 10;

    // Cold: cleared caches before every request.
    let cold_start = Instant::now();
    for _ in 0..rounds {
        engine.clear_caches();
        engine.analyze_source(&src).unwrap();
    }
    let cold = cold_start.elapsed();

    // Warm: caches primed by the last cold round.
    let warm_start = Instant::now();
    for _ in 0..rounds {
        engine.analyze_source(&src).unwrap();
    }
    let warm = warm_start.elapsed();

    assert!(
        cold >= warm * 5,
        "expected >=5x warm speedup, got cold={cold:?} warm={warm:?} ({:.1}x)",
        cold.as_secs_f64() / warm.as_secs_f64().max(1e-12)
    );
}

/// Acceptance: `Engine::analyze_batch` over `Workload::ALL` produces
/// results identical to per-program `analyze_program`.
#[test]
fn batch_over_all_workloads_matches_analyze_program() {
    let sources: Vec<String> = Workload::ALL
        .iter()
        .map(|w| w.source(w.test_size()))
        .collect();
    let engine = Engine::default();
    let batch = engine.analyze_batch(&sources);
    for ((workload, src), result) in Workload::ALL.iter().zip(&sources).zip(&batch) {
        let entry = result.as_ref().unwrap();
        let (program, types) = frontend(src).unwrap();
        let oracle = analyze_program(&program, &types);
        assert_eq!(
            entry.analysis.digest(),
            oracle.digest(),
            "{}: batch result differs from analyze_program",
            workload.name()
        );
    }
}
