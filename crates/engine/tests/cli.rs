//! CLI-level tests: the `silp` and `sild` binaries themselves, including
//! the strict flag parser and the daemon/client round trip that must be
//! byte-identical to in-process output.

use std::path::PathBuf;
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

fn silp() -> Command {
    Command::new(env!("CARGO_BIN_EXE_silp"))
}

fn sild() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sild"))
}

fn stderr_of(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).to_string()
}

#[test]
fn unknown_flag_is_rejected_with_a_hint() {
    let output = silp()
        .args(["--jsno", "--workload", "tree_sum"])
        .output()
        .unwrap();
    assert!(!output.status.success(), "unknown flags must fail");
    let stderr = stderr_of(&output);
    assert!(stderr.contains("unknown option --jsno"), "{stderr}");
    assert!(stderr.contains("did you mean --json?"), "{stderr}");

    let output = silp()
        .args(["--exeucte", "--workload", "tree_sum"])
        .output()
        .unwrap();
    assert!(!output.status.success());
    assert!(stderr_of(&output).contains("did you mean --execute?"));
}

#[test]
fn hopeless_flags_get_no_hint_but_still_fail() {
    let output = silp().args(["--frobnicate-the-widgets"]).output().unwrap();
    assert!(!output.status.success());
    let stderr = stderr_of(&output);
    assert!(
        stderr.contains("unknown option --frobnicate-the-widgets"),
        "{stderr}"
    );
    assert!(!stderr.contains("did you mean"), "{stderr}");
}

#[test]
fn sild_rejects_unknown_flags_with_a_hint() {
    let output = sild()
        .args(["--listne", "unix:/tmp/x.sock"])
        .output()
        .unwrap();
    assert!(!output.status.success());
    let stderr = stderr_of(&output);
    assert!(stderr.contains("unknown option --listne"), "{stderr}");
    assert!(stderr.contains("did you mean --listen?"), "{stderr}");
}

#[test]
fn shutdown_without_connect_is_an_error() {
    let output = silp().args(["--shutdown"]).output().unwrap();
    assert!(!output.status.success());
    assert!(stderr_of(&output).contains("--shutdown only makes sense with --connect"));
}

struct Daemon {
    child: Child,
    addr: String,
    sock: PathBuf,
}

impl Daemon {
    /// Launch `sild` on a fresh temp unix socket and wait until it accepts.
    fn launch(name: &str, shards: &str) -> Daemon {
        Daemon::launch_with(name, shards, &[])
    }

    /// [`Daemon::launch`] with extra `sild` flags (e.g. `--async`).
    fn launch_with(name: &str, shards: &str, extra: &[&str]) -> Daemon {
        let sock =
            std::env::temp_dir().join(format!("sild-cli-{}-{name}.sock", std::process::id()));
        let _ = std::fs::remove_file(&sock);
        let addr = format!("unix:{}", sock.display());
        let child = sild()
            .args(["--listen", &addr, "--shards", shards, "--quiet"])
            .args(extra)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        while !sock.exists() {
            assert!(Instant::now() < deadline, "sild never bound {addr}");
            std::thread::sleep(Duration::from_millis(20));
        }
        Daemon { child, addr, sock }
    }

    fn stop(mut self) {
        let output = silp()
            .args(["--connect", &self.addr, "--shutdown"])
            .output()
            .unwrap();
        assert!(output.status.success(), "{}", stderr_of(&output));
        let status = self.child.wait().unwrap();
        assert!(status.success(), "sild must exit cleanly");
        let _ = std::fs::remove_file(&self.sock);
    }
}

/// The acceptance criterion: `silp --connect` against a running `sild`
/// produces byte-identical JSON (and text) to `silp --in-process` for
/// every built-in workload.
#[test]
fn connect_output_is_byte_identical_to_in_process() {
    // One fresh (cold) daemon per output mode: in-process runs are always
    // cold, so the comparison needs an equally cold daemon.
    for (name, extra) in [("diff-json", &["--json"][..]), ("diff-text", &[])] {
        let daemon = Daemon::launch(name, "4");
        let mut remote_args = vec!["--connect", daemon.addr.as_str(), "--workload", "all"];
        remote_args.extend_from_slice(extra);
        let mut local_args = vec!["--in-process", "--workload", "all"];
        local_args.extend_from_slice(extra);

        let remote = silp().args(&remote_args).output().unwrap();
        let local = silp().args(&local_args).output().unwrap();
        assert!(remote.status.success(), "{}", stderr_of(&remote));
        assert!(local.status.success(), "{}", stderr_of(&local));
        assert!(!remote.stdout.is_empty());
        assert_eq!(
            remote.stdout, local.stdout,
            "daemon and in-process output must be byte-identical ({extra:?})"
        );
        daemon.stop();
    }
}

/// A second client run against the same warm daemon is served from its
/// caches: the reports flip to `cache_hit:true` and the stats line shows
/// the hits.
#[test]
fn warm_daemon_serves_cache_hits_to_a_second_run() {
    let daemon = Daemon::launch("warm", "2");
    let args = [
        "--connect",
        daemon.addr.as_str(),
        "--workload",
        "all",
        "--json",
        "--stats",
    ];

    let cold = silp().args(args).output().unwrap();
    assert!(cold.status.success(), "{}", stderr_of(&cold));
    assert!(String::from_utf8_lossy(&cold.stdout).contains("\"cache_hit\":false"));

    let warm = silp().args(args).output().unwrap();
    assert!(warm.status.success());
    let stdout = String::from_utf8_lossy(&warm.stdout);
    assert!(
        !stdout.contains("\"cache_hit\":false"),
        "all inputs must hit"
    );
    assert!(stdout.contains("\"cache_hit\":true"));
    // Under --json the stats land on stderr as one wire-format JSON line:
    // two shard views plus the shared store's namespaces with their live
    // policy state.
    let stderr = stderr_of(&warm);
    assert!(stderr.contains("\"type\":\"stats\""), "{stderr}");
    assert!(stderr.contains("\"store\":{"), "{stderr}");
    assert!(stderr.contains("\"policy\":\"adaptive\""), "{stderr}");
    assert!(stderr.contains("\"current\":\""), "{stderr}");

    daemon.stop();
}

/// The text form of `--stats`: a per-namespace table (entries, hit rates,
/// evictions, live policy) plus one view line per shard.
#[test]
fn stats_table_renders_namespaces_and_shards() {
    let daemon = Daemon::launch("stats-table", "2");
    let output = silp()
        .args([
            "--connect",
            daemon.addr.as_str(),
            "--workload",
            "all",
            "--stats",
        ])
        .output()
        .unwrap();
    assert!(output.status.success(), "{}", stderr_of(&output));
    let stderr = stderr_of(&output);
    assert!(
        stderr.contains("2 shards over one shared store"),
        "{stderr}"
    );
    for namespace in ["programs", "summaries", "walks"] {
        assert!(stderr.contains(namespace), "{stderr}");
    }
    assert!(stderr.contains("adaptive(lru)"), "{stderr}");
    assert!(stderr.contains("shard 0"), "{stderr}");
    assert!(stderr.contains("shard 1"), "{stderr}");
    // The daemon's own counters render above the namespace table.
    assert!(stderr.contains("server: threaded"), "{stderr}");
    assert!(stderr.contains("accepted"), "{stderr}");
    daemon.stop();
}

/// The event-driven daemon (`sild --async`) is protocol-invariant: its
/// `silp --connect` output is byte-identical to `--in-process` (and thus
/// to the threaded daemon, which passes the same comparison above), and
/// its `--stats` line names the async server.
#[test]
fn async_daemon_output_is_byte_identical_to_in_process() {
    for (name, extra) in [("adiff-json", &["--json"][..]), ("adiff-text", &[])] {
        let daemon = Daemon::launch_with(name, "4", &["--async"]);
        let mut remote_args = vec!["--connect", daemon.addr.as_str(), "--workload", "all"];
        remote_args.extend_from_slice(extra);
        let mut local_args = vec!["--in-process", "--workload", "all"];
        local_args.extend_from_slice(extra);

        let remote = silp().args(&remote_args).output().unwrap();
        let local = silp().args(&local_args).output().unwrap();
        assert!(remote.status.success(), "{}", stderr_of(&remote));
        assert!(local.status.success(), "{}", stderr_of(&local));
        assert!(!remote.stdout.is_empty());
        assert_eq!(
            remote.stdout, local.stdout,
            "async daemon and in-process output must be byte-identical ({extra:?})"
        );
        daemon.stop();
    }

    if cfg!(target_os = "linux") {
        let daemon = Daemon::launch_with("astats", "2", &["--async"]);
        let output = silp()
            .args([
                "--connect",
                daemon.addr.as_str(),
                "--workload",
                "tree_sum",
                "--stats",
            ])
            .output()
            .unwrap();
        assert!(output.status.success(), "{}", stderr_of(&output));
        assert!(
            stderr_of(&output).contains("server: async"),
            "{}",
            stderr_of(&output)
        );
        daemon.stop();
    }
}

/// `sild --adapt-window/--adapt-threshold` are accepted and validated.
#[test]
fn sild_adapt_flags_parse_and_validate() {
    let daemon = Daemon::launch_with(
        "adapt",
        "2",
        &["--adapt-window", "64", "--adapt-threshold", "4"],
    );
    let output = silp()
        .args(["--connect", &daemon.addr, "--workload", "tree_sum"])
        .output()
        .unwrap();
    assert!(output.status.success(), "{}", stderr_of(&output));
    daemon.stop();

    for bad in [
        &["--adapt-window", "0"][..],
        &["--adapt-threshold", "0"],
        &["--adapt-window", "many"],
        &["--workers", "0"],
    ] {
        let output = sild()
            .args(["--listen", "unix:/tmp/never-bound.sock"])
            .args(bad)
            .output()
            .unwrap();
        assert!(!output.status.success(), "{bad:?} must be rejected");
        assert!(
            stderr_of(&output).contains("must be"),
            "{bad:?}: {}",
            stderr_of(&output)
        );
    }
}

/// Contradictory `sild` flag pairs are rejected with an error that names
/// both flags, instead of one silently overriding the other.
#[test]
fn sild_rejects_contradictory_flag_pairs() {
    let cases: &[(&[&str], &str)] = &[
        (
            &["--data-dir", "/tmp/sild-contradiction", "--no-durable"],
            "--data-dir and --no-durable contradict each other",
        ),
        (
            &["--peer", "unix:/tmp/peer.sock", "--no-peer-serve"],
            "--peer and --no-peer-serve contradict each other",
        ),
        (
            &["--gossip-interval", "500"],
            "--gossip-interval needs at least one --peer",
        ),
    ];
    for (bad, want) in cases {
        let output = sild()
            .args(["--listen", "unix:/tmp/never-bound.sock"])
            .args(*bad)
            .output()
            .unwrap();
        assert!(!output.status.success(), "{bad:?} must be rejected");
        let stderr = stderr_of(&output);
        assert!(stderr.contains(want), "{bad:?}: {stderr}");
    }
}

/// `silp --timeout` is validated: it needs `--connect`, a sane value, and
/// it travels to the transport (a dead address still fails cleanly).
#[test]
fn silp_timeout_flag_is_validated() {
    let output = silp()
        .args(["--timeout", "100", "--workload", "tree_sum"])
        .output()
        .unwrap();
    assert!(!output.status.success());
    assert!(
        stderr_of(&output).contains("--timeout only makes sense with --connect"),
        "{}",
        stderr_of(&output)
    );

    let output = silp()
        .args([
            "--connect",
            "unix:/tmp/definitely-not-a-sild.sock",
            "--timeout",
            "0",
            "--workload",
            "tree_sum",
        ])
        .output()
        .unwrap();
    assert!(!output.status.success());
    assert!(
        stderr_of(&output).contains("--timeout must be at least 1"),
        "{}",
        stderr_of(&output)
    );

    let output = silp()
        .args([
            "--connect",
            "unix:/tmp/definitely-not-a-sild.sock",
            "--timeout",
            "100",
            "--workload",
            "tree_sum",
        ])
        .output()
        .unwrap();
    assert!(!output.status.success());
    assert!(
        stderr_of(&output).contains("cannot reach daemon"),
        "{}",
        stderr_of(&output)
    );
}

#[test]
fn connect_to_nothing_fails_cleanly() {
    let output = silp()
        .args([
            "--connect",
            "unix:/tmp/definitely-not-a-sild.sock",
            "--workload",
            "tree_sum",
        ])
        .output()
        .unwrap();
    assert!(!output.status.success());
    assert!(
        stderr_of(&output).contains("cannot reach daemon"),
        "{}",
        stderr_of(&output)
    );
}

/// Frontend errors travel the wire and render exactly like in-process
/// errors (same stderr line, same JSON error object, same exit status).
#[test]
fn remote_errors_render_like_local_errors() {
    let daemon = Daemon::launch("errors", "2");
    let dir = std::env::temp_dir();
    let bad = dir.join(format!("silp-bad-{}.sil", std::process::id()));
    std::fs::write(&bad, "program broken (").unwrap();
    let bad_path = bad.to_str().unwrap();

    let remote = silp()
        .args(["--connect", &daemon.addr, "--json", bad_path])
        .output()
        .unwrap();
    let local = silp().args(["--json", bad_path]).output().unwrap();
    assert!(!remote.status.success());
    assert!(!local.status.success());
    assert_eq!(remote.stdout, local.stdout, "error JSON must match");
    assert!(String::from_utf8_lossy(&remote.stdout).contains("\"error\":\"frontend:"));

    let _ = std::fs::remove_file(&bad);
    daemon.stop();
}

/// A namespace nobody has looked up yet renders a real `0.0%` hit rate,
/// not the old `-` placeholder (a single non-incremental run never
/// consults the walks cache, so its row is guaranteed cold).
#[test]
fn cold_namespaces_report_a_zero_hit_rate() {
    let output = silp()
        .args(["--workload", "tree_sum", "--stats"])
        .output()
        .unwrap();
    assert!(output.status.success(), "{}", stderr_of(&output));
    let stderr = stderr_of(&output);
    let walks_row = stderr
        .lines()
        .find(|line| line.trim_start().starts_with("walks"))
        .unwrap_or_else(|| panic!("no walks namespace row in:\n{stderr}"));
    assert!(walks_row.contains("0.0%"), "{walks_row}");
    assert!(
        !stderr.contains("    -"),
        "placeholder hit rates must be gone:\n{stderr}"
    );
}

/// The deterministic rows of a `--metrics` table (engine/store counters
/// and gauges) survive the wire round-trip byte-identically: the same
/// workload against a daemon renders the same lines as in process, and the
/// daemon additionally splices in its own `server.*` namespace.
#[test]
fn metrics_round_trip_matches_in_process() {
    let daemon = Daemon::launch("metrics", "1");
    let remote = silp()
        .args([
            "--connect",
            daemon.addr.as_str(),
            "--workload",
            "tree_sum",
            "--metrics",
        ])
        .output()
        .unwrap();
    // sild shards run incremental engines by default; mirror that in
    // process so the walk-cache counters are comparable.
    let local = silp()
        .args([
            "--in-process",
            "--incremental",
            "--workload",
            "tree_sum",
            "--metrics",
        ])
        .output()
        .unwrap();
    assert!(remote.status.success(), "{}", stderr_of(&remote));
    assert!(local.status.success(), "{}", stderr_of(&local));

    // Timing histograms are nondeterministic; every counter and gauge row
    // in the engine/store namespaces is not, and must cross the wire
    // byte-for-byte.
    let deterministic = |text: &str| -> Vec<String> {
        text.lines()
            .filter(|line| {
                let name = line.trim_start();
                (name.starts_with("engine.") || name.starts_with("store.")) && !name.contains("_us")
            })
            .map(str::to_string)
            .collect()
    };
    let remote_rows = deterministic(&stderr_of(&remote));
    let local_rows = deterministic(&stderr_of(&local));
    assert!(!remote_rows.is_empty());
    assert_eq!(remote_rows, local_rows, "wire round-trip must be lossless");

    // The table is rendered in sorted name order, so any filtered
    // subsequence of it must already be sorted — byte-stable output.
    let mut sorted_rows = remote_rows.clone();
    sorted_rows.sort();
    assert_eq!(remote_rows, sorted_rows, "metric rows must be name-sorted");

    // Only the daemon has a server layer to report.
    let remote_err = stderr_of(&remote);
    assert!(remote_err.contains("server.accepted"), "{remote_err}");
    assert!(remote_err.contains("server.serve_us"), "{remote_err}");
    assert!(remote_err.contains("server.queue_depth"), "{remote_err}");
    assert!(!stderr_of(&local).contains("server."));

    // --json emits the raw wire form of the same response.
    let json = silp()
        .args(["--connect", daemon.addr.as_str(), "--metrics", "--json"])
        .output()
        .unwrap();
    assert!(json.status.success(), "{}", stderr_of(&json));
    let line = stderr_of(&json);
    assert!(line.contains("\"type\":\"metrics\""), "{line}");
    assert!(line.contains("\"server.accepted\""), "{line}");
    daemon.stop();
}

/// `--metrics` reports the path-matrix representation gauges: the interner
/// population and the high-water single-matrix footprint.  After analyzing
/// any real workload both are non-trivial.
#[test]
fn metrics_include_analysis_representation_gauges() {
    let output = silp()
        .args(["--in-process", "--workload", "tree_sum", "--metrics"])
        .output()
        .unwrap();
    assert!(output.status.success(), "{}", stderr_of(&output));
    let stderr = stderr_of(&output);
    let gauge = |name: &str| -> i64 {
        stderr
            .lines()
            .find(|line| line.trim_start().starts_with(name))
            .unwrap_or_else(|| panic!("no {name} row in:\n{stderr}"))
            .split_whitespace()
            .nth(1)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("unparseable {name} row in:\n{stderr}"))
    };
    assert!(gauge("analysis.interned_symbols") > 0, "{stderr}");
    assert!(gauge("analysis.matrix_bytes") > 0, "{stderr}");
}

/// `--trace-dump` prints the daemon's retained spans as ndjson: the
/// server's own parse/encode spans interleaved with the engine's, all
/// attributed to minted request ids.
#[test]
fn trace_dump_emits_ndjson_spans() {
    let daemon = Daemon::launch("trace", "2");
    let warmup = silp()
        .args(["--connect", daemon.addr.as_str(), "--workload", "tree_sum"])
        .output()
        .unwrap();
    assert!(warmup.status.success(), "{}", stderr_of(&warmup));

    let output = silp()
        .args(["--connect", daemon.addr.as_str(), "--trace-dump"])
        .output()
        .unwrap();
    assert!(output.status.success(), "{}", stderr_of(&output));
    let stdout = String::from_utf8_lossy(&output.stdout).to_string();
    assert!(!stdout.is_empty(), "a served request must leave spans");
    for line in stdout.lines() {
        assert!(
            line.starts_with("{\"request\":") && line.contains("\"duration_us\":"),
            "not an ndjson span: {line}"
        );
    }
    for span in [
        "\"span\":\"parse\"",
        "\"span\":\"fixpoint\"",
        "\"span\":\"encode\"",
    ] {
        assert!(stdout.contains(span), "missing {span} in:\n{stdout}");
    }
    daemon.stop();
}

/// The tracer's health counters ride every `--metrics` table: the ring's
/// overflow count and the slow-capture count are visible whether the
/// service is in-process or a daemon.
#[test]
fn metrics_include_trace_health_counters() {
    let output = silp()
        .args(["--metrics", "--workload", "tree_sum"])
        .output()
        .unwrap();
    assert!(output.status.success(), "{}", stderr_of(&output));
    let stderr = stderr_of(&output);
    assert!(stderr.contains("trace.dropped_spans"), "{stderr}");
    assert!(stderr.contains("trace.slow_captures"), "{stderr}");
}

/// `--trace <req>` renders one request's span tree: a header naming the
/// trace, the `serve` root covering the service call, and the engine's
/// spans indented beneath it with per-hop durations.
#[test]
fn silp_trace_renders_an_indented_tree() {
    let daemon = Daemon::launch("tree", "2");
    let warmup = silp()
        .args(["--connect", daemon.addr.as_str(), "--workload", "tree_sum"])
        .output()
        .unwrap();
    assert!(warmup.status.success(), "{}", stderr_of(&warmup));

    // Pick the request id of the analyze out of the dump — the request
    // whose fixpoint span the engine recorded (the handshake's stats
    // request is served and traced too, but does no analysis).
    let dump = silp()
        .args(["--connect", daemon.addr.as_str(), "--trace-dump"])
        .output()
        .unwrap();
    assert!(dump.status.success(), "{}", stderr_of(&dump));
    let dump = String::from_utf8_lossy(&dump.stdout).to_string();
    let request = dump
        .lines()
        .find(|line| line.contains("\"span\":\"fixpoint\""))
        .and_then(|line| line.strip_prefix("{\"request\":"))
        .and_then(|rest| rest.split(',').next())
        .expect("a fixpoint span in the dump")
        .to_string();

    let output = silp()
        .args(["--connect", daemon.addr.as_str(), "--trace", &request])
        .output()
        .unwrap();
    assert!(output.status.success(), "{}", stderr_of(&output));
    let stdout = String::from_utf8_lossy(&output.stdout).to_string();
    assert!(
        stdout.starts_with("trace "),
        "daemon-served requests are traced:\n{stdout}"
    );
    assert!(stdout.contains(&format!("request {request}")), "{stdout}");
    let indent = |name: &str| {
        stdout
            .lines()
            .find(|line| line.trim_start().starts_with(name))
            .map(|line| line.len() - line.trim_start().len())
            .unwrap_or_else(|| panic!("missing {name} in:\n{stdout}"))
    };
    assert!(
        indent("fixpoint") > indent("serve"),
        "engine spans nest under the serve root:\n{stdout}"
    );
    assert!(stdout.contains("µs"), "per-hop durations render: {stdout}");
    daemon.stop();
}

/// `--top` against a live daemon: with a fast recorder interval, two
/// frames render rates and per-interval quantiles computed as deltas
/// between at least two flight-recorder samples.
#[test]
fn silp_top_renders_live_recorder_deltas() {
    let daemon = Daemon::launch_with("top", "2", &["--recorder-interval", "50"]);
    let warmup = silp()
        .args(["--connect", daemon.addr.as_str(), "--workload", "tree_sum"])
        .output()
        .unwrap();
    assert!(warmup.status.success(), "{}", stderr_of(&warmup));

    let output = silp()
        .args([
            "--connect",
            daemon.addr.as_str(),
            "--top",
            "--refresh",
            "60",
            "--iterations",
            "2",
        ])
        .output()
        .unwrap();
    assert!(output.status.success(), "{}", stderr_of(&output));
    let stdout = String::from_utf8_lossy(&output.stdout).to_string();
    assert_eq!(
        stdout.matches("sild top —").count(),
        2,
        "two frames:\n{stdout}"
    );
    assert!(stdout.contains("req/s"), "{stdout}");
    assert!(stdout.contains("serve p99"), "{stdout}");
    assert!(stdout.contains("queue depth"), "{stdout}");
    // Every frame names its sample window, proving the frame was computed
    // from at least two recorder samples rather than lifetime totals.
    assert_eq!(stdout.matches("samples, window").count(), 2, "{stdout}");
    daemon.stop();
}

/// `--top` without a daemon is a parse error: only daemons host recorders.
#[test]
fn silp_top_requires_connect() {
    let output = silp().args(["--top"]).output().unwrap();
    assert!(!output.status.success());
    assert!(stderr_of(&output).contains("--top needs --connect"));
}
