//! Soak and fault-injection tests of the event-driven (silio/epoll)
//! server: many concurrent clients over Unix and TCP sockets, verified
//! against a sequential in-process oracle, plus hostile clients that must
//! not wedge the event loop.
//!
//! Everything here is Linux-only in substance (the async server falls
//! back to the threaded one elsewhere), but the assertions are the same
//! either way: `Server::bind_with` resolves the kind, and the responses
//! must match the oracle byte for byte regardless.

use sil_engine::service::{
    ErrorKind, LocalService, RemoteService, Request, Response, Server, ServerKind, ServerOptions,
    Service, ShardedService,
};
use sil_engine::{Addr, EngineConfig, ProcessOptions, ProgramReport, ServerHandle};
use sil_workloads::Workload;
use std::io::{BufRead, BufReader, Write};
use std::sync::Arc;
use std::time::Duration;

fn temp_socket(name: &str) -> Addr {
    let path = std::env::temp_dir().join(format!("silio-test-{}-{name}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    Addr::Unix(path)
}

fn spawn_async(addr: &Addr, shards: usize) -> (Arc<ShardedService>, ServerHandle, ServerKind) {
    let service = Arc::new(ShardedService::new(shards, EngineConfig::default()));
    let server = Server::bind_with(
        addr,
        service.clone(),
        ServerOptions {
            kind: ServerKind::Async,
            workers: 0,
            ..ServerOptions::default()
        },
    )
    .unwrap();
    let kind = server.kind();
    if silio::SUPPORTED {
        assert_eq!(kind, ServerKind::Async, "Linux must select the event loop");
    }
    (service, server.spawn(), kind)
}

/// A small but varied request set: a few workloads at small sizes, with
/// one repeated so warm hits occur under concurrency.
fn soak_sources() -> Vec<String> {
    let mut sources: Vec<String> = [
        Workload::TreeSum,
        Workload::ListSum,
        Workload::AddAndReverse,
        Workload::Bisort,
    ]
    .iter()
    .map(|w| w.source(3))
    .collect();
    sources.push(Workload::TreeSum.source(3)); // repeat: a guaranteed warm hit
    sources
}

fn oracle_reports(sources: &[String]) -> Vec<ProgramReport> {
    let oracle = LocalService::new(EngineConfig::default());
    sources
        .iter()
        .map(|src| {
            oracle
                .process_source(src, &ProcessOptions::default())
                .unwrap()
        })
        .collect()
}

/// Drive `clients` concurrent connections through the daemon at `addr`,
/// asserting every response digest-matches the oracle.
fn soak(addr: &str, clients: usize) {
    let sources = soak_sources();
    let expected = oracle_reports(&sources);
    std::thread::scope(|scope| {
        for client in 0..clients {
            let addr = &addr;
            let sources = &sources;
            let expected = &expected;
            scope.spawn(move || {
                let remote =
                    RemoteService::connect_with_timeout(addr, Some(Duration::from_secs(60)))
                        .unwrap();
                for (index, (src, want)) in sources.iter().zip(expected).enumerate() {
                    let got = remote
                        .process_source(src, &ProcessOptions::default())
                        .unwrap();
                    assert_eq!(
                        got.analysis_digest, want.analysis_digest,
                        "client {client} request {index} diverged from the oracle"
                    );
                    assert_eq!(got.fingerprint, want.fingerprint);
                    assert_eq!(got.name, want.name);
                }
            });
        }
    });
}

/// ≥64 concurrent clients over a Unix socket: every response matches the
/// sequential oracle, the server's connection counters add up, and the
/// socket file is removed on shutdown.
#[test]
fn async_soak_unix_64_clients_match_oracle() {
    let addr = temp_socket("soak64");
    let (_service, handle, kind) = spawn_async(&addr, 4);
    let clients = 64;
    soak(&handle.addr().to_string(), clients);

    // Server stats travel in-band and account for every soak connection.
    let remote = RemoteService::connect(&handle.addr().to_string()).unwrap();
    let (_, _, _, server) = remote.service_stats().unwrap();
    let server = server.expect("daemon stats carry server counters");
    assert_eq!(server.kind, kind.name());
    assert!(
        server.accepted >= clients as u64,
        "{} accepted",
        server.accepted
    );
    assert!(server.active >= 1, "this stats connection is active");
    drop(remote);

    handle.shutdown();
    let Addr::Unix(path) = addr else {
        unreachable!()
    };
    assert!(!path.exists(), "socket file must be cleaned up");
}

/// The same soak over TCP.
#[test]
fn async_soak_tcp_64_clients_match_oracle() {
    let service = Arc::new(ShardedService::new(2, EngineConfig::default()));
    let server = Server::bind_with(
        &Addr::Tcp("127.0.0.1:0".into()),
        service,
        ServerOptions {
            kind: ServerKind::Async,
            workers: 0,
            ..ServerOptions::default()
        },
    )
    .unwrap();
    let handle = server.spawn();
    soak(&handle.addr().to_string(), 64);
    handle.shutdown();
}

/// Hostile clients: malformed lines are answered in place, partial lines
/// followed by a disconnect tear down only their own connection, and a
/// clean client still gets oracle-identical answers afterwards.
#[test]
fn async_faults_do_not_wedge_the_event_loop() {
    let addr = temp_socket("faults");
    let (_service, handle, _) = spawn_async(&addr, 2);
    let Addr::Unix(path) = handle.addr().clone() else {
        unreachable!()
    };

    // 1. Malformed line: answered with a malformed error, connection
    //    still serves a well-formed request afterwards.
    {
        let mut stream = std::os::unix::net::UnixStream::connect(&path).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        stream.write_all(b"this is not json\n").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        match Response::decode(line.trim()).unwrap() {
            Response::Error { error, .. } => assert_eq!(error.kind, ErrorKind::Malformed),
            other => panic!("{other:?}"),
        }
        stream
            .write_all((Request::stats().encode() + "\n").as_bytes())
            .unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(matches!(
            Response::decode(line.trim()).unwrap(),
            Response::Stats { .. }
        ));
    }

    // 2. Mid-request disconnects: a partial line with no newline, a valid
    //    request followed by an immediate hangup (the worker's response
    //    finds the connection gone), and a bare connect-then-drop.
    for _ in 0..8 {
        let mut stream = std::os::unix::net::UnixStream::connect(&path).unwrap();
        stream.write_all(b"{\"protocol_version\":2,\"ty").unwrap();
        drop(stream);

        let mut stream = std::os::unix::net::UnixStream::connect(&path).unwrap();
        let request = Request::analyze(Workload::TreeSum.source(3)).encode() + "\n";
        stream.write_all(request.as_bytes()).unwrap();
        drop(stream);

        let _ = std::os::unix::net::UnixStream::connect(&path).unwrap();
    }

    // 3. A pipelined burst on one connection: responses come back one per
    //    request, in order (the per-connection FIFO).
    {
        let mut stream = std::os::unix::net::UnixStream::connect(&path).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let sources = soak_sources();
        let mut burst = String::new();
        for src in &sources {
            burst.push_str(&Request::process(src, ProcessOptions::default()).encode());
            burst.push('\n');
        }
        stream.write_all(burst.as_bytes()).unwrap();
        let expected = oracle_reports(&sources);
        for (index, want) in expected.iter().enumerate() {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            match Response::decode(line.trim()).unwrap() {
                Response::Report { report, .. } => {
                    assert_eq!(
                        report.analysis_digest, want.analysis_digest,
                        "pipelined slot {index} out of order or wrong"
                    );
                    assert_eq!(report.name, want.name, "slot {index}");
                }
                other => panic!("slot {index}: {other:?}"),
            }
        }
    }

    // 4. After all that, a clean client still matches the oracle.
    soak(&handle.addr().to_string(), 3);
    handle.shutdown();
    assert!(!path.exists(), "socket file must be cleaned up");
}

/// Protocol negotiation and shutdown semantics through the async server:
/// wrong-version shutdowns are refused, a well-versioned shutdown stops
/// the daemon after acknowledging.
#[test]
fn async_shutdown_and_version_negotiation() {
    let addr = temp_socket("shutdown");
    let (_service, handle, _) = spawn_async(&addr, 1);
    let remote = RemoteService::connect(&handle.addr().to_string()).unwrap();

    match remote.call(Request::shutdown().with_version(0)) {
        Response::Error { error, .. } => assert_eq!(error.kind, ErrorKind::Protocol),
        other => panic!("{other:?}"),
    }
    assert!(
        remote.handshake().is_ok(),
        "the daemon must survive a wrong-version shutdown"
    );

    match remote.call(Request::shutdown()) {
        Response::ShuttingDown { .. } => {}
        other => panic!("{other:?}"),
    }
    let joiner = std::thread::spawn(move || handle.shutdown());
    joiner.join().unwrap();
    let Addr::Unix(path) = addr else {
        unreachable!()
    };
    assert!(!path.exists());
}

/// The async and threaded servers answer byte-identical response lines
/// for the same requests (the protocol-invariance acceptance criterion,
/// also CI-checked end-to-end through the binaries).
#[test]
fn async_and_threaded_answer_identical_bytes() {
    let make = |kind: ServerKind, name: &str| {
        let service = Arc::new(ShardedService::new(2, EngineConfig::default()));
        let server = Server::bind_with(
            &temp_socket(name),
            service,
            ServerOptions {
                kind,
                workers: 0,
                ..ServerOptions::default()
            },
        )
        .unwrap();
        server.spawn()
    };
    let threaded = make(ServerKind::Threaded, "bytes-threaded");
    let asynced = make(ServerKind::Async, "bytes-async");

    let exchange = |handle: &ServerHandle, lines: &[String]| -> Vec<String> {
        let Addr::Unix(path) = handle.addr().clone() else {
            unreachable!()
        };
        let mut stream = std::os::unix::net::UnixStream::connect(&path).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut replies = Vec::new();
        for line in lines {
            stream.write_all((line.clone() + "\n").as_bytes()).unwrap();
            let mut reply = String::new();
            reader.read_line(&mut reply).unwrap();
            replies.push(reply.trim_end().to_string());
        }
        replies
    };

    let mut requests: Vec<String> = Workload::ALL
        .iter()
        .take(5)
        .map(|w| Request::process(w.source(3), ProcessOptions::default()).encode())
        .collect();
    requests.push("garbage that is not json".to_string());
    requests.push(Request::analyze("program broken(").encode());
    requests.push(Request::stats().with_version(99).encode());

    let from_threaded = exchange(&threaded, &requests);
    let from_async = exchange(&asynced, &requests);
    assert_eq!(
        from_threaded, from_async,
        "the two servers must answer identical bytes"
    );

    threaded.shutdown();
    asynced.shutdown();
}
