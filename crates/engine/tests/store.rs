//! Integration tests of the shared [`SummaryStore`]: cross-shard summary
//! reuse (the headline of the store refactor), mixed-traffic contention
//! against a sequential oracle, and the shared-vs-private capacity
//! argument in miniature.

use sil_engine::service::{route_fingerprint, Request, Response, Service, ShardedService};
use sil_engine::{Engine, EngineConfig, EvictionPolicy, ProcessOptions};
use sil_workloads::Workload;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Two *different* programs sharing a call-graph cone, homed to two
/// *different* shards of `service`.  `tree_sum` variants differ only in
/// `main`, so every pair shares the `build`/`sum` cones; the sizes are
/// scanned until the fingerprints land on distinct shards.
fn cross_shard_pair(service: &ShardedService) -> (String, String) {
    let sizes: Vec<u32> = (3..24).collect();
    for (i, &a) in sizes.iter().enumerate() {
        for &b in &sizes[i + 1..] {
            let src_a = Workload::TreeSum.source(a);
            let src_b = Workload::TreeSum.source(b);
            if service.shard_for_source(&src_a) != service.shard_for_source(&src_b) {
                return (src_a, src_b);
            }
        }
    }
    panic!("no tree_sum pair routes to two different shards");
}

/// The acceptance criterion of the store refactor: a program fingerprinted
/// to shard B replays summaries and walks first produced via shard A —
/// shard B's warm-hit view counters increase, and the result is
/// digest-identical to a scratch analysis.
#[test]
fn cone_analyzed_on_shard_a_warm_hits_on_shard_b() {
    let service = ShardedService::new(4, EngineConfig::default());
    let (src_a, src_b) = cross_shard_pair(&service);
    let shard_b = service.shard_for_source(&src_b);

    // Analyze A: its cones (shared `build`/`sum` among them) land in the
    // shared store via shard A's engine.
    match service.call(Request::analyze(src_a.clone())) {
        Response::Analyzed { summary, .. } => assert!(!summary.cache_hit),
        other => panic!("{other:?}"),
    }
    let b_before = service.shard(shard_b).stats();
    assert_eq!(b_before.summaries.hits, 0, "shard B has served nothing yet");
    assert_eq!(b_before.walks.hits, 0);

    // Analyze B through its own shard: the shared cones must warm-hit.
    let digest = match service.call(Request::analyze(src_b.clone())) {
        Response::Analyzed { summary, .. } => {
            assert!(!summary.cache_hit, "B itself was never analyzed");
            summary.analysis_digest
        }
        other => panic!("{other:?}"),
    };
    let b_after = service.shard(shard_b).stats();
    assert!(
        b_after.summaries.hits > b_before.summaries.hits,
        "shard B must reuse summaries produced via shard A: {b_after:?}"
    );
    assert!(
        b_after.walks.hits > b_before.walks.hits,
        "shard B must replay walks recorded via shard A: {b_after:?}"
    );

    // Reuse changed nothing observable: a scratch engine agrees exactly.
    let scratch = Engine::default().analyze_source(&src_b).unwrap();
    assert_eq!(digest, scratch.analysis.digest(), "reuse must be invisible");
}

/// N threads × mixed analyze/process/clear traffic through a
/// `ShardedService` over one shared store: every digest matches a
/// sequential single-engine oracle, whatever interleaving and cache state
/// each request happened to see.
#[test]
fn mixed_traffic_under_contention_matches_the_sequential_oracle() {
    let sources: Vec<String> = Workload::ALL
        .iter()
        .map(|w| w.source(w.test_size()))
        .collect();

    // Sequential oracle: one fresh engine, one program at a time.
    let oracle_engine = Engine::new(EngineConfig::default().with_parallel(false));
    let oracle: Vec<u64> = sources
        .iter()
        .map(|src| oracle_engine.analyze_source(src).unwrap().analysis.digest())
        .collect();

    let service = ShardedService::new(4, EngineConfig::default());
    let cleared = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for worker in 0..4usize {
            let service = &service;
            let sources = &sources;
            let oracle = &oracle;
            let cleared = &cleared;
            scope.spawn(move || {
                for round in 0..3usize {
                    for (index, src) in sources.iter().enumerate() {
                        // Interleave the three request kinds so analyses
                        // race processes and cache clears.
                        match (index + round + worker) % 5 {
                            0 => {
                                let report = service
                                    .process_source(src, &ProcessOptions::default())
                                    .unwrap();
                                assert_eq!(
                                    report.analysis_digest, oracle[index],
                                    "worker {worker} round {round}: process diverged"
                                );
                            }
                            1 if worker == 0 => {
                                // Only one worker clears, rarely — enough
                                // to race evictions without making every
                                // request cold.
                                assert!(matches!(
                                    service.call(Request::clear_caches()),
                                    Response::Cleared { .. }
                                ));
                                cleared.fetch_add(1, Ordering::Relaxed);
                            }
                            _ => match service.call(Request::analyze(src.clone())) {
                                Response::Analyzed { summary, .. } => {
                                    assert_eq!(
                                        summary.analysis_digest, oracle[index],
                                        "worker {worker} round {round}: analyze diverged"
                                    );
                                }
                                other => panic!("{other:?}"),
                            },
                        }
                    }
                }
            });
        }
    });
    assert!(
        cleared.load(Ordering::Relaxed) > 0,
        "clears must have raced"
    );

    // The store survived the abuse in a consistent state: one final warm
    // pass still agrees with the oracle and is served as hits.
    for (index, src) in sources.iter().enumerate() {
        match service.call(Request::analyze(src.clone())) {
            Response::Analyzed { summary, .. } => {
                assert_eq!(summary.analysis_digest, oracle[index])
            }
            other => panic!("{other:?}"),
        }
    }
}

/// The capacity argument for the shared tier, in miniature: at equal total
/// capacity, a 4-shard service over one shared store serves a repeating
/// request stream at least as well as a single engine, while private
/// per-shard stores of the same total capacity fragment it.
#[test]
fn shared_store_at_fixed_total_capacity_matches_the_single_engine_baseline() {
    let corpus: Vec<String> = (3..11).map(|d| Workload::TreeSum.source(d)).collect();
    // A deterministic skewed stream: the first programs repeat often, the
    // tail appears rarely (Zipf-like without the rand dependency).
    let stream: Vec<usize> = (0..120).map(|i| (i * i + i / 3) % corpus.len()).collect();
    let capacity = 4usize;

    let drive_shared = |shards: usize| -> f64 {
        let config = EngineConfig::default()
            .with_program_cache_capacity(capacity)
            .with_eviction(EvictionPolicy::Lru)
            .with_store_stripes(1)
            .with_incremental(false);
        let service = ShardedService::new(shards, config);
        for &rank in &stream {
            service.call(Request::analyze(corpus[rank].clone()));
        }
        let mut hits = 0;
        let mut misses = 0;
        for stats in service.shard_stats() {
            hits += stats.programs.hits;
            misses += stats.programs.misses;
        }
        hits as f64 / (hits + misses) as f64
    };

    let drive_private = |shards: usize| -> f64 {
        let config = EngineConfig::default()
            .with_program_cache_capacity((capacity / shards).max(1))
            .with_eviction(EvictionPolicy::Lru)
            .with_store_stripes(1)
            .with_incremental(false);
        let engines: Vec<Engine> = (0..shards).map(|_| Engine::new(config.clone())).collect();
        for &rank in &stream {
            let shard = (route_fingerprint(&corpus[rank]) % shards as u64) as usize;
            engines[shard].analyze_source(&corpus[rank]).unwrap();
        }
        let mut hits = 0;
        let mut misses = 0;
        for engine in &engines {
            let stats = engine.stats();
            hits += stats.programs.hits;
            misses += stats.programs.misses;
        }
        hits as f64 / (hits + misses) as f64
    };

    let baseline = drive_private(1); // a single engine at full capacity
    for shards in [4usize, 8] {
        let shared = drive_shared(shards);
        assert!(
            shared + 1e-9 >= baseline,
            "{shards} shards over one shared store must not lose to the \
             single-engine baseline: shared={shared:.3} baseline={baseline:.3}"
        );
    }
}
