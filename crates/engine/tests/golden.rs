//! Digest-pinned golden suite over the 64-program corpus.
//!
//! The pinned digests in `golden/digests.txt` were generated with the
//! original string-keyed path-matrix representation.  Any change to the
//! representation (interning, inline paths, dense matrices) must reproduce
//! every digest byte-identically — the digest hashes the rendered matrix
//! tables, program-point states, warnings, and summaries, so it is a tight
//! proxy for "the analysis output did not change at all".
//!
//! To regenerate after an *intentional* analysis change:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test -p sil-engine --test golden
//! ```

use sil_analysis::analyze_program;
use sil_lang::frontend;
use sil_workloads::Workload;

const GOLDEN: &str = include_str!("golden/digests.txt");

/// The same 64-program corpus `silbench` drives: every workload at sizes
/// 3..=9, truncated to 64 programs.
fn corpus() -> Vec<(String, String)> {
    let mut out = Vec::new();
    for size in 3..=9u32 {
        for workload in Workload::ALL {
            out.push((format!("{}@{size}", workload.name()), workload.source(size)));
            if out.len() == 64 {
                return out;
            }
        }
    }
    out
}

fn current_digests() -> Vec<(String, u64)> {
    corpus()
        .into_iter()
        .map(|(name, src)| {
            let (program, types) = frontend(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
            (name, analyze_program(&program, &types).digest())
        })
        .collect()
}

fn render(digests: &[(String, u64)]) -> String {
    let mut out = String::new();
    for (name, digest) in digests {
        out.push_str(&format!("{name} {digest:016x}\n"));
    }
    out
}

#[test]
fn corpus_digests_match_golden_file() {
    let current = current_digests();
    assert_eq!(current.len(), 64, "corpus must stay at 64 programs");
    let rendered = render(&current);
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/digests.txt");
        std::fs::write(path, &rendered).expect("write golden file");
        return;
    }
    let golden: Vec<&str> = GOLDEN.lines().collect();
    let fresh: Vec<&str> = rendered.lines().collect();
    assert_eq!(
        golden.len(),
        fresh.len(),
        "golden file has {} entries, corpus produced {}",
        golden.len(),
        fresh.len()
    );
    for (want, got) in golden.iter().zip(fresh.iter()) {
        assert_eq!(want, got, "analysis digest drifted from the pinned golden");
    }
}
