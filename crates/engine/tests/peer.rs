//! Integration tests of summary-cache peering: small clusters of daemons
//! on temp unix sockets gossiping inventories and serving each other's
//! cache misses — plus the failure half (breaker trips, kill -9'd peers,
//! half-open connections, loop prevention).

use sil_engine::service::{
    json, route_fingerprint, ErrorKind, Json, PeerNamespace, RemoteService, Request, Response,
    Server, Service, ShardedService,
};
use sil_engine::{Addr, EngineConfig, PeerConfig, PeerRing, ServerHandle};
use sil_workloads::Workload;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn temp_socket(name: &str) -> Addr {
    let path = std::env::temp_dir().join(format!("sil-peer-{}-{name}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    Addr::Unix(path)
}

/// A daemon on a temp unix socket, returning its service handle too so
/// tests can inspect its store directly.
fn spawn_daemon(name: &str) -> (Arc<ShardedService>, ServerHandle) {
    let service = Arc::new(ShardedService::new(2, EngineConfig::default()));
    let server = Server::bind(&temp_socket(name), service.clone()).unwrap();
    (service, server.spawn())
}

/// A ring with test-friendly timings: fast fetch deadline, no background
/// loop (tests drive gossip explicitly).
fn test_ring(service: &ShardedService, peers: Vec<Addr>) -> Arc<PeerRing> {
    let config = PeerConfig::new(peers)
        .with_fetch_timeout(Duration::from_millis(500))
        .with_failure_threshold(2)
        .with_quarantine(Duration::from_millis(300));
    let ring = Arc::new(PeerRing::new(config, service.tracer().clone()));
    service.store().attach_peers(ring.clone());
    ring
}

fn analyze(service: &ShardedService, source: &str) -> sil_engine::service::AnalyzeSummary {
    match service.call(Request::analyze(source)) {
        Response::Analyzed { summary, .. } => summary,
        other => panic!("expected an analyzed response, got {other:?}"),
    }
}

/// The tentpole acceptance path: a cold daemon peered to a warm one serves
/// the warm daemon's programs as peer hits — byte-identical analysis
/// digests, visible `store.peer.hits`, and zero local fixpoint work.
#[test]
fn cold_daemon_serves_peer_hits_without_recomputing() {
    let (warm_service, warm_handle) = spawn_daemon("warm");
    let sources: Vec<String> = Workload::ALL
        .iter()
        .take(3)
        .map(|w| w.source(w.test_size()))
        .collect();
    let warm_digests: Vec<u64> = sources
        .iter()
        .map(|src| analyze(&warm_service, src).analysis_digest)
        .collect();

    let cold_service = ShardedService::new(2, EngineConfig::default());
    let ring = test_ring(&cold_service, vec![warm_handle.addr().clone()]);
    ring.gossip_once();
    // The inventory advertises summary fingerprints alongside the 3
    // programs, so the known-key count is a floor, not an exact figure.
    assert!(
        ring.stats(0, 0).known_keys >= 3,
        "gossip learned the keys: {:?}",
        ring.stats(0, 0)
    );

    for (src, want) in sources.iter().zip(&warm_digests) {
        let summary = analyze(&cold_service, src);
        assert_eq!(
            summary.analysis_digest, *want,
            "peer-served digest must be byte-identical"
        );
        assert!(summary.cache_hit, "a peer fetch serves as a cache hit");
    }
    let stats = cold_service.store().stats().peer.expect("peer stats");
    assert_eq!(stats.hits, 3, "every miss was served by the peer");
    assert_eq!(stats.misses, 0);
    assert!(stats.bytes_in > 0);

    // Zero fixpoint recomputation on the cold daemon: the analysis
    // latency histogram never recorded a sample.
    let metrics = cold_service.service_metrics().unwrap();
    for (name, histogram) in &metrics.histograms {
        if name == "engine.fixpoint_us" {
            assert_eq!(histogram.count, 0, "cold daemon must not recompute");
        }
    }
    // The warm daemon saw and counted the serves.
    let served = warm_service.store().stats().peer.expect("serve stats");
    assert!(served.serves >= 4, "inventory + three fetches");
    assert!(served.bytes_out > 0);

    warm_handle.shutdown();
}

/// A thundering herd on one cone issues one fetch: concurrent misses on
/// the same key elect a single-flight leader and share its result.
#[test]
fn single_flight_collapses_a_thundering_herd() {
    let (warm_service, warm_handle) = spawn_daemon("herd");
    let src = Workload::TreeSum.source(4);
    let want = analyze(&warm_service, &src).analysis_digest;
    let key = route_fingerprint(&src);

    let cold_service = ShardedService::new(1, EngineConfig::default());
    let ring = test_ring(&cold_service, vec![warm_handle.addr().clone()]);
    ring.gossip_once();

    let threads = 8;
    let barrier = std::sync::Barrier::new(threads);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let (ring, barrier) = (&ring, &barrier);
            scope.spawn(move || {
                barrier.wait();
                let entry = ring.fetch_program(key).expect("fetch must hit");
                assert_eq!(entry.analysis.digest(), want);
            });
        }
    });
    let stats = ring.stats(0, 0);
    assert_eq!(stats.misses, 0);
    assert!(
        stats.hits < threads as u64,
        "{} callers must share flights, saw {} fetches",
        threads,
        stats.hits
    );

    warm_handle.shutdown();
}

/// The failure breaker: consecutive transport failures quarantine a dead
/// peer (fetches then skip it without waiting), and a probe after the
/// quarantine window brings a revived peer back.
#[test]
fn breaker_trips_on_a_dead_peer_and_recovers() {
    let addr = temp_socket("breaker");
    let service = ShardedService::new(1, EngineConfig::default());
    let ring = test_ring(&service, vec![addr.clone()]);

    // Two gossip rounds against nothing: one failure each, tripping the
    // threshold-2 breaker.
    ring.gossip_once();
    ring.gossip_once();
    let stats = ring.stats(0, 0);
    assert_eq!(stats.quarantined, 1, "{stats:?}");
    assert_eq!(stats.quarantines, 1, "{stats:?}");
    assert_eq!(stats.gossip_rounds, 2);

    // A fetch during quarantine skips the peer entirely — a clean miss,
    // effectively instant (no dial, no deadline wait).
    let started = Instant::now();
    assert!(ring.fetch_program(0xdead_beef).is_none());
    assert!(started.elapsed() < Duration::from_millis(200));
    assert_eq!(ring.stats(0, 0).misses, 1);

    // Revive the peer on the same address, wait out the quarantine, and
    // let the next gossip round double as the probe.
    let revived = Arc::new(ShardedService::new(1, EngineConfig::default()));
    let src = Workload::ListSum.source(4);
    analyze(&revived, &src);
    let handle = Server::bind(&addr, revived).unwrap().spawn();
    std::thread::sleep(Duration::from_millis(400));
    ring.gossip_once();
    let stats = ring.stats(0, 0);
    assert_eq!(stats.quarantined, 0, "the probe closed the breaker");
    assert!(stats.known_keys > 0, "gossip resumed: {stats:?}");
    assert!(ring.fetch_program(route_fingerprint(&src)).is_some());

    handle.shutdown();
}

/// kill -9 a peer daemon mid-cluster: the survivor's fetches fail fast,
/// the breaker quarantines the corpse, and the survivor keeps answering
/// by recomputing.
#[test]
fn survivor_keeps_serving_after_a_peer_is_killed_dash_nine() {
    let sock = std::env::temp_dir().join(format!("sil-peer-{}-kill9.sock", std::process::id()));
    let _ = std::fs::remove_file(&sock);
    let addr = format!("unix:{}", sock.display());
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_sild"))
        .args(["--listen", &addr, "--shards", "2", "--quiet"])
        .spawn()
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while !sock.exists() {
        assert!(Instant::now() < deadline, "sild never bound {addr}");
        std::thread::sleep(Duration::from_millis(20));
    }

    // Warm the doomed daemon and fetch from it once, proving the ring is
    // genuinely wired up before the kill.
    let warm_src = Workload::TreeSum.source(4);
    let remote = RemoteService::connect(&addr).unwrap();
    let warmed = match remote.call(Request::analyze(&warm_src)) {
        Response::Analyzed { summary, .. } => summary,
        other => panic!("{other:?}"),
    };
    let survivor = ShardedService::new(1, EngineConfig::default());
    let ring = test_ring(&survivor, vec![Addr::parse(&addr).unwrap()]);
    ring.gossip_once();
    let summary = analyze(&survivor, &warm_src);
    assert!(summary.cache_hit, "pre-kill fetch must hit the peer");
    assert_eq!(summary.analysis_digest, warmed.analysis_digest);

    // SIGKILL — no clean shutdown, the socket file stays behind.
    child.kill().unwrap();
    child.wait().unwrap();

    // Gossip against the corpse books failures; the survivor still
    // answers a brand-new program by recomputing it locally.
    ring.gossip_once();
    ring.gossip_once();
    assert_eq!(ring.stats(0, 0).quarantined, 1, "corpse quarantined");
    let fresh = Workload::Bisort.source(4);
    let summary = analyze(&survivor, &fresh);
    assert!(!summary.cache_hit, "no peer left: recomputed locally");
    assert_eq!(ring.stats(0, 0).hits, 1, "only the pre-kill fetch hit");

    let _ = std::fs::remove_file(&sock);
}

/// Loop prevention: a daemon answers `peer_fetch` from its own store
/// only.  A cold daemon with a warm peer of its own must answer a miss —
/// never forward the fetch around the ring.
#[test]
fn peer_fetch_is_never_reforwarded() {
    let (warm_service, warm_handle) = spawn_daemon("noloop-warm");
    let src = Workload::TreeSum.source(4);
    analyze(&warm_service, &src);
    let key = route_fingerprint(&src);

    // `middle` is cold but *could* fetch the key from `warm` — a
    // peer-originated request must not make it do so.
    let middle = ShardedService::new(1, EngineConfig::default());
    let ring = test_ring(&middle, vec![warm_handle.addr().clone()]);
    ring.gossip_once();
    match middle.call(Request::peer_fetch(PeerNamespace::Programs, key)) {
        Response::PeerEntry { body, .. } => {
            assert!(body.is_none(), "a peer fetch must not be re-forwarded");
        }
        other => panic!("{other:?}"),
    }
    let stats = ring.stats(0, 0);
    assert_eq!(
        (stats.hits, stats.misses),
        (0, 0),
        "the ring stayed idle: {stats:?}"
    );
    // An ordinary client-originated analyze on the same daemon does use
    // the ring — the distinction is who is asking, not what is asked.
    assert!(analyze(&middle, &src).cache_hit);
    assert_eq!(ring.stats(0, 0).hits, 1);

    warm_handle.shutdown();
}

/// `--no-peer-serve`: the daemon answers peer kinds with a malformed
/// error, and a fetching ring marks it unsupported — alive, not
/// quarantined, never advertising keys.
#[test]
fn no_peer_serve_daemon_is_flagged_unsupported_not_dead() {
    let service = Arc::new(ShardedService::new(1, EngineConfig::default()).with_peer_serve(false));
    let src = Workload::TreeSum.source(4);
    analyze(&service, &src);
    let handle = Server::bind(&temp_socket("noserve"), service.clone())
        .unwrap()
        .spawn();

    match service.call(Request::peer_inventory()) {
        Response::Error { error, .. } => assert_eq!(error.kind, ErrorKind::Malformed),
        other => panic!("{other:?}"),
    }

    let fetcher = ShardedService::new(1, EngineConfig::default());
    let ring = test_ring(&fetcher, vec![handle.addr().clone()]);
    ring.gossip_once();
    ring.gossip_once();
    ring.gossip_once();
    let stats = ring.stats(0, 0);
    assert_eq!(stats.quarantined, 0, "unsupported is not a breaker event");
    assert_eq!(stats.quarantines, 0);
    assert_eq!(stats.known_keys, 0, "nothing advertised");
    // Fetches skip the unsupported peer outright.
    assert!(ring.fetch_program(route_fingerprint(&src)).is_none());

    handle.shutdown();
}

/// Half-open connections (the satellite): a peer that accepts and then
/// never replies fails the exchange within the configured deadline,
/// naming it — at the raw `RemoteService` level and through the ring.
#[test]
fn half_open_peer_fails_within_the_deadline_naming_it() {
    let Addr::Unix(path) = temp_socket("halfopen") else {
        unreachable!()
    };
    let listener = std::os::unix::net::UnixListener::bind(&path).unwrap();
    let mute = std::thread::spawn(move || {
        let mut held = Vec::new();
        while let Ok((stream, _)) = listener.accept() {
            held.push(stream); // accept, never reply
            if held.len() >= 3 {
                break;
            }
        }
    });
    let addr = Addr::Unix(path.clone());

    // Raw exchange: `call` returns a transport error naming the timeout
    // instead of hanging (peer kinds behave like every other kind here).
    let remote =
        RemoteService::connect_with_timeout(&addr.to_string(), Some(Duration::from_millis(100)))
            .unwrap();
    let started = Instant::now();
    match remote.call(Request::peer_inventory()) {
        Response::Error { error, .. } => {
            assert_eq!(error.kind, ErrorKind::Transport, "{error}");
            assert!(
                error.message.contains("timed out after 100ms"),
                "{}",
                error.message
            );
        }
        other => panic!("{other:?}"),
    }
    assert!(started.elapsed() < Duration::from_secs(2), "must fail fast");

    // Through the ring: a fetch against the mute peer comes back a miss
    // within the deadline (plus slack), and the breaker counted it.
    let service = ShardedService::new(1, EngineConfig::default());
    let config = PeerConfig::new(vec![addr])
        .with_fetch_timeout(Duration::from_millis(100))
        .with_failure_threshold(1);
    let ring = Arc::new(PeerRing::new(config, service.tracer().clone()));
    let started = Instant::now();
    assert!(ring.fetch_program(0xfeed_f00d).is_none());
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "the deadline must bound a half-open fetch, took {:?}",
        started.elapsed()
    );
    let stats = ring.stats(0, 0);
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.quarantined, 1, "threshold 1 trips immediately");

    // Unblock the mute listener's accept loop and clean up.
    let _ = std::os::unix::net::UnixStream::connect(&path);
    mute.join().unwrap();
    let _ = std::fs::remove_file(&path);
}

/// The trust model, adversarially: a peer that answers a summary fetch
/// with a *forged* table — well-formed JSON, but encoded for a different
/// cone (or with a digest its content does not reproduce) — is refused.
/// The fetch degrades to a miss; nothing is admitted to the store.
#[test]
fn forged_summary_bodies_from_a_lying_peer_are_refused() {
    let Addr::Unix(path) = temp_socket("liar") else {
        unreachable!()
    };
    let requested_key: u64 = 0x00c0_ffee;
    let other_cone: u64 = 0x0bad_cafe;
    // A minimal daemon that speaks just enough protocol to lie: every
    // request line is answered with a peer_entry holding an empty-but-
    // well-formed summary table that was encoded for a *different* cone.
    let listener = std::os::unix::net::UnixListener::bind(&path).unwrap();
    let liar = std::thread::spawn(move || {
        use std::io::{BufRead, BufReader, Write};
        let (stream, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut stream = stream;
        let mut line = String::new();
        while reader.read_line(&mut line).is_ok_and(|n| n > 0) {
            let forged = Json::obj(vec![
                ("v", Json::Int(2)),
                ("fingerprint", json::hex64(other_cone)),
                ("digest", json::hex64(0)),
                ("summaries", Json::Arr(vec![])),
            ]);
            let reply =
                Response::peer_entry(PeerNamespace::Summaries, requested_key, 0, Some(forged));
            if stream
                .write_all(format!("{}\n", reply.encode()).as_bytes())
                .is_err()
            {
                break;
            }
            line.clear();
        }
    });

    let service = ShardedService::new(1, EngineConfig::default());
    let ring = test_ring(&service, vec![Addr::Unix(path.clone())]);
    assert!(
        ring.fetch_summaries(requested_key).is_none(),
        "a table encoded for another cone must not be admitted"
    );
    let stats = ring.stats(0, 0);
    assert_eq!(stats.hits, 0, "a refused forgery is not a hit: {stats:?}");
    assert_eq!(stats.misses, 1);
    assert!(stats.bytes_in > 0, "the reply line itself was metered");

    // The store holds the other Arc of the ring; drop both so the cached
    // connection closes and the liar's read loop ends.
    drop(ring);
    drop(service);
    liar.join().unwrap();
    let _ = std::fs::remove_file(&path);
}

/// The generation counter is enforced, not just gossiped: clearing a
/// warm peer bumps its generation, and the very next fetch reply makes
/// the ring discard that peer's entire advertised snapshot instead of
/// trusting keys from a store that no longer exists.
#[test]
fn cleared_peer_generation_discards_the_stale_advertisement_snapshot() {
    let (warm_service, warm_handle) = spawn_daemon("genclear");
    let src = Workload::TreeSum.source(4);
    analyze(&warm_service, &src);
    let key = route_fingerprint(&src);

    let cold_service = ShardedService::new(1, EngineConfig::default());
    let ring = test_ring(&cold_service, vec![warm_handle.addr().clone()]);
    ring.gossip_once();
    assert!(ring.stats(0, 0).known_keys > 0, "gossip learned the keys");

    // Clear the warm daemon: its generation bumps and its stores empty,
    // but the ring's advertisement snapshot still names the old keys.
    match warm_service.call(Request::clear_caches()) {
        Response::Cleared { .. } => {}
        other => panic!("{other:?}"),
    }

    // The fetch misses (the entry is gone) — and the mismatched
    // generation on the reply retires the whole stale snapshot at once,
    // without waiting for the next gossip round.
    assert!(ring.fetch_program(key).is_none());
    let stats = ring.stats(0, 0);
    assert_eq!(stats.misses, 1);
    assert_eq!(
        stats.known_keys, 0,
        "a cleared store's advertisements are dead: {stats:?}"
    );

    warm_handle.shutdown();
}

/// Gossip keeps running in the background: a spawned ring learns a warm
/// peer's inventory without anyone calling `gossip_once`, and `shutdown`
/// stops the loop promptly.
#[test]
fn background_gossip_loop_learns_and_shuts_down() {
    let (warm_service, warm_handle) = spawn_daemon("bg-gossip");
    analyze(&warm_service, &Workload::TreeSum.source(4));

    let cold = ShardedService::new(1, EngineConfig::default());
    let config = PeerConfig::new(vec![warm_handle.addr().clone()])
        .with_gossip_interval(Duration::from_millis(25));
    let ring = PeerRing::spawn(config, cold.tracer().clone());
    cold.store().attach_peers(ring.clone());

    let deadline = Instant::now() + Duration::from_secs(5);
    while ring.stats(0, 0).known_keys == 0 {
        assert!(Instant::now() < deadline, "gossip loop never learned");
        std::thread::sleep(Duration::from_millis(10));
    }
    ring.shutdown();
    let rounds = ring.stats(0, 0).gossip_rounds;
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(
        ring.stats(0, 0).gossip_rounds,
        rounds,
        "no rounds after shutdown"
    );

    warm_handle.shutdown();
}

/// The trace-tree acceptance path: a client request served by an origin
/// daemon, routed through a shard, missing locally and fetched from a warm
/// peer, leaves ONE assembled span tree on the origin — the origin's
/// `serve` root, its `peer-fetch` hop, and under that hop the peer's own
/// `serve` span, adopted off the wire and tagged with the peer's address.
#[test]
fn traced_peer_fetch_assembles_one_cross_daemon_tree() {
    use sil_engine::service::TraceSpan;

    let (warm_service, warm_handle) = spawn_daemon("trace-warm");
    let src = Workload::TreeSum.source(5);
    analyze(&warm_service, &src);

    // The origin is a full daemon (its server mints the trace), peered to
    // the warm one.
    let origin_service = Arc::new(ShardedService::new(2, EngineConfig::default()));
    let ring = test_ring(&origin_service, vec![warm_handle.addr().clone()]);
    ring.gossip_once();
    let origin_server = Server::bind(&temp_socket("trace-origin"), origin_service).unwrap();
    let origin_addr = origin_server.addr().to_string();
    let warm_addr = warm_handle.addr().to_string();
    let origin_handle = origin_server.spawn();

    let client = RemoteService::connect(&origin_addr).unwrap();
    match client.call(Request::analyze(&src)) {
        Response::Analyzed { summary, .. } => {
            assert!(summary.cache_hit, "the peer fetch serves as a hit")
        }
        other => panic!("expected analyzed, got {other:?}"),
    }

    let spans: Vec<TraceSpan> = match client.call(Request::trace_dump()) {
        Response::Trace { spans, .. } => spans,
        other => panic!("expected trace, got {other:?}"),
    };

    // The origin's serve root for the analyze, and the trace it minted.
    let serve = spans
        .iter()
        .find(|s| s.span == "serve" && s.origin == origin_addr)
        .expect("the origin's serve root is in its dump");
    assert_ne!(serve.trace, 0, "daemon-served requests are traced");
    let tree: Vec<&TraceSpan> = spans.iter().filter(|s| s.trace == serve.trace).collect();

    let fetch = tree
        .iter()
        .find(|s| s.span == "peer-fetch")
        .expect("the fetch hop joins the tree");
    assert_eq!(fetch.origin, origin_addr, "the hop ran on the origin");

    // The peer's serve span came back piggybacked on the peer_entry
    // response and was adopted: same trace, parented under the origin's
    // peer-fetch span, tagged with the peer's listen address.
    let remote = tree
        .iter()
        .find(|s| s.span == "serve" && s.origin == warm_addr)
        .expect("the peer's serve span was adopted into the origin's dump");
    assert_eq!(
        remote.parent, fetch.span_id,
        "the remote hop nests under the origin's peer-fetch span"
    );
    assert_ne!(remote.span_id, 0);
    assert!(remote.end_us >= remote.start_us);

    // One tree, not two: every span of the trace reaches the serve root
    // by walking parents within the trace (or is the root itself).
    for span in &tree {
        let mut cursor = *span;
        let mut hops = 0;
        while cursor.span_id != serve.span_id {
            let Some(parent) = tree.iter().find(|s| s.span_id == cursor.parent) else {
                panic!(
                    "span {} (origin {}) does not reach the serve root",
                    cursor.span, cursor.origin
                );
            };
            cursor = parent;
            hops += 1;
            assert!(hops < 64, "parent cycle in the assembled tree");
        }
    }

    origin_handle.shutdown();
    warm_handle.shutdown();
}
