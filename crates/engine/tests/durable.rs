//! Crash-safety and restart-warm tests of the durable store tier.
//!
//! The property the tier sells: whatever a crash leaves behind on disk,
//! recovery loads every intact prefix entry, never panics, reports what
//! it dropped — and a restarted daemon serves previously analyzed
//! programs from disk with digests byte-identical to a fresh analysis.

use sil_analysis::{ArgMode, ProcSummary};
use sil_engine::store::segment::{self, SegmentWriter};
use sil_engine::{DurableConfig, Engine, EngineConfig, SummaryStore};
use sil_workloads::generator::{GeneratorConfig, ProgramGenerator};
use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::sync::Arc;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sil-durable-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn generated_sources(count: u64) -> Vec<String> {
    (0..count)
        .map(|seed| {
            let mut generator = ProgramGenerator::new(GeneratorConfig {
                statements: 30,
                handle_vars: 5,
                int_vars: 3,
                seed,
            });
            sil_lang::pretty_program(&generator.generate())
        })
        .collect()
}

fn sample_table() -> Arc<HashMap<String, ProcSummary>> {
    let mut table = HashMap::new();
    table.insert(
        "main".to_string(),
        ProcSummary {
            name: "main".to_string(),
            handle_args: BTreeMap::from([
                ("t".to_string(), ArgMode::StructUpdate),
                ("u".to_string(), ArgMode::ReadOnly),
            ]),
            arg_modes: vec![Some(ArgMode::StructUpdate), None, Some(ArgMode::ReadOnly)],
        },
    );
    Arc::new(table)
}

fn durable_store(dir: &std::path::Path) -> SummaryStore {
    SummaryStore::new(sil_engine::StoreConfig::default().with_durable(Some(DurableConfig::at(dir))))
}

/// The headline property: a second engine over the same data directory
/// (a "restarted daemon") serves previously analyzed programs as cache
/// hits with byte-identical digests, visibly from the disk tier.
#[test]
fn restart_warm_engine_serves_from_disk_with_identical_digests() {
    let dir = temp_dir("restart");
    let sources = generated_sources(4);
    let config = EngineConfig::default().with_durable(Some(DurableConfig::at(&dir)));

    let digests: Vec<u64> = {
        let engine = Engine::new(config.clone());
        let digests = sources
            .iter()
            .map(|src| {
                let (entry, hit) = engine.analyze_source_traced(src).unwrap();
                assert!(!hit, "cold analysis must miss");
                entry.analysis.digest()
            })
            .collect();
        engine.store().flush();
        digests
    };

    let engine = Engine::new(config);
    for (src, &expected) in sources.iter().zip(&digests) {
        let (entry, hit) = engine.analyze_source_traced(src).unwrap();
        assert!(hit, "restarted engine must serve the program warm");
        assert_eq!(
            entry.analysis.digest(),
            expected,
            "disk-served analysis must be byte-identical to the original"
        );
    }
    let disk = engine.store().stats().disk.expect("disk tier configured");
    assert_eq!(disk.hits, sources.len() as u64);
    // Recovery loads the program entries *and* the per-SCC summary
    // tables the first engine persisted alongside them.
    assert!(disk.recovered_entries >= sources.len() as u64);
    assert_eq!(disk.dropped_bytes, 0);

    let _ = std::fs::remove_dir_all(&dir);
}

/// A crash mid-append leaves a torn final entry; recovery keeps every
/// entry before it and reports the dropped bytes.
#[test]
fn torn_final_entry_is_dropped_and_the_prefix_survives() {
    let dir = temp_dir("torn");
    {
        let store = durable_store(&dir);
        for key in 1..=5u64 {
            store.store_summaries(key, sample_table());
        }
        store.flush();
    }
    // Simulate the crash: half an entry header at the end of the segment.
    let segment = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|ext| ext == "sil"))
        .expect("a segment file");
    let mut bytes = std::fs::read(&segment).unwrap();
    bytes.extend_from_slice(&[0x40, 0x00, 0x00]);
    std::fs::write(&segment, &bytes).unwrap();

    let store = durable_store(&dir);
    let disk = store.stats().disk.unwrap();
    assert_eq!(disk.recovered_entries, 5);
    assert_eq!(disk.dropped_bytes, 3);
    for key in 1..=5u64 {
        let table = store
            .lookup_summaries(key)
            .expect("intact prefix entry must be served");
        assert_eq!(*table, *sample_table());
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// Truncate a segment at every byte boundary: recovery must never panic
/// and must load exactly the entries that fit entirely in the prefix.
#[test]
fn truncation_at_every_byte_boundary_recovers_the_intact_prefix() {
    let dir = temp_dir("truncate");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("seg-000001.sil");
    let mut writer = SegmentWriter::create(&path).unwrap();
    let originals = [
        writer.append(0, 11, b"first body").unwrap(),
        writer.append(1, 22, b"").unwrap(),
        writer.append(0, 33, b"third, a little longer").unwrap(),
    ];
    drop(writer);
    let full = std::fs::read(&path).unwrap();

    let cut = dir.join("cut.sil");
    for len in 0..=full.len() {
        std::fs::write(&cut, &full[..len]).unwrap();
        let report = segment::scan(&cut).unwrap();
        let expected: Vec<_> = originals
            .iter()
            .copied()
            .filter(|e| e.offset + e.stored_bytes() <= len as u64)
            .collect();
        assert_eq!(report.entries, expected, "truncated to {len} bytes");
        assert_eq!(report.dropped, report.dropped_bytes > 0);
        if len >= segment::MAGIC.len() {
            assert_eq!(
                report.dropped_bytes as usize,
                len - report.valid_len as usize
            );
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// Flip one bit in every byte of a segment: recovery must never panic,
/// must keep every entry before the corrupted one, and must drop the
/// corrupted entry and everything after it.
#[test]
fn single_bit_corruption_never_panics_and_keeps_the_prefix() {
    let dir = temp_dir("bitflip");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("seg-000001.sil");
    let mut writer = SegmentWriter::create(&path).unwrap();
    let originals = [
        writer.append(0, 101, b"alpha").unwrap(),
        writer.append(1, 102, b"beta beta").unwrap(),
        writer.append(0, 103, b"gamma gamma gamma").unwrap(),
    ];
    drop(writer);
    let full = std::fs::read(&path).unwrap();

    let flipped = dir.join("flipped.sil");
    for byte in 0..full.len() {
        let mut bytes = full.clone();
        bytes[byte] ^= 1 << (byte % 8);
        std::fs::write(&flipped, &bytes).unwrap();
        let report = segment::scan(&flipped).unwrap();
        if byte < segment::MAGIC.len() {
            assert!(report.entries.is_empty(), "flip in magic at byte {byte}");
            assert_eq!(report.valid_len, 0);
            continue;
        }
        // The entry whose stored bytes contain the flipped byte is the
        // first casualty; everything before it must survive verbatim.
        let casualty = originals
            .iter()
            .position(|e| (e.offset..e.offset + e.stored_bytes()).contains(&(byte as u64)))
            .expect("every non-magic byte belongs to an entry");
        assert_eq!(report.entries, originals[..casualty], "flip at byte {byte}");
        assert!(report.dropped, "flip at byte {byte} must report a drop");
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// `clear()` truncates the disk tier too, and discards writes that were
/// still queued when the clear happened — a cleared store stays cleared.
#[test]
fn clear_truncates_disk_and_discards_stale_queued_writes() {
    let dir = temp_dir("clear");
    let store = durable_store(&dir);
    store.store_summaries(7, sample_table());
    store.flush();
    assert!(store.lookup_summaries(7).is_some());

    // Enqueue a write, then clear before it can be flushed: the write
    // must not resurrect after the clear.
    store.store_summaries(8, sample_table());
    store.clear();
    store.flush();

    let disk = store.stats().disk.unwrap();
    assert_eq!(disk.entries, 0);
    assert_eq!(disk.live_bytes, 0);
    assert!(store.lookup_summaries(7).is_none());
    assert!(store.lookup_summaries(8).is_none());

    let _ = std::fs::remove_dir_all(&dir);
}

/// Rewriting the same keys over and over leaves sealed segments full of
/// dead entries; compaction folds the live ones forward and deletes the
/// dead files, keeping disk usage proportional to live data.
#[test]
fn compaction_reclaims_mostly_dead_segments() {
    let dir = temp_dir("compact");
    let store = SummaryStore::new(
        sil_engine::StoreConfig::default()
            .with_durable(Some(DurableConfig::at(&dir).with_segment_bytes(512))),
    );
    for _ in 0..60 {
        store.store_summaries(1, sample_table());
        store.store_summaries(2, sample_table());
        store.flush();
    }
    let disk = store.stats().disk.unwrap();
    assert!(disk.compactions > 0, "rewrites must trigger compaction");
    assert_eq!(disk.entries, 2);
    assert!(
        disk.segments <= 3,
        "dead segments must be deleted (still {} on disk)",
        disk.segments
    );
    assert!(store.lookup_summaries(1).is_some());
    assert!(store.lookup_summaries(2).is_some());

    let _ = std::fs::remove_dir_all(&dir);
}

/// The byte budget sheds the coldest entries instead of growing forever.
#[test]
fn byte_budget_evicts_cold_entries() {
    let dir = temp_dir("budget");
    let store = SummaryStore::new(
        sil_engine::StoreConfig::default()
            .with_durable(Some(DurableConfig::at(&dir).with_byte_budget(1024))),
    );
    for key in 1..=64u64 {
        store.store_summaries(key, sample_table());
    }
    store.flush();
    let disk = store.stats().disk.unwrap();
    assert!(disk.evictions > 0, "the budget must shed entries");
    assert!(disk.live_bytes <= 1024);
    assert!(disk.entries < 64);

    let _ = std::fs::remove_dir_all(&dir);
}

/// A store whose data directory cannot be created degrades to
/// memory-only instead of failing construction.
#[test]
fn unopenable_data_dir_degrades_to_memory_only() {
    let file =
        std::env::temp_dir().join(format!("sil-durable-test-{}-not-a-dir", std::process::id()));
    std::fs::write(&file, b"occupied").unwrap();
    let store = durable_store(&file.join("sub"));
    assert!(store.stats().disk.is_none());
    store.store_summaries(1, sample_table());
    assert!(store.lookup_summaries(1).is_some());
    let _ = std::fs::remove_file(&file);
}
