//! # sil-engine
//!
//! A long-lived, batched, memoizing analysis/parallelization service over
//! the Hendren & Nicolau path-matrix stack.
//!
//! The paper's analysis is a pure function of program text, which makes it
//! an ideal memoization target for a service that sees the same programs
//! over and over (editors re-checking a buffer, CI re-analyzing a corpus,
//! a compiler farm).  All memoized state lives in one content-addressed
//! [`SummaryStore`] with three typed namespaces, each keyed by stable
//! fingerprints of the normalized AST (`sil_lang::hash`):
//!
//! * **program namespace** — whole [`AnalysisResult`]s keyed by the
//!   program fingerprint: a resubmitted program costs one hash + one map
//!   lookup;
//! * **scc-summary namespace** — per-SCC argument-mode summaries keyed by
//!   the *cone fingerprint* (the SCC's content plus everything it
//!   transitively calls — see
//!   [`sil_analysis::CallGraph::cone_fingerprints`]): programs that share
//!   procedures reuse each other's summary work even when the
//!   whole-program entry misses;
//! * **walk-record namespace** — the interprocedural fixpoint's recorded
//!   body walks, keyed by cone fingerprint, which make re-analysis of
//!   edited programs incremental.
//!
//! An [`Engine`] is a *view* over an `Arc<SummaryStore>`: several engines
//! (the shards of a [`service::ShardedService`], for instance) can share
//! one store, so a cone analyzed through any of them is a warm hit for all
//! of them.  Each namespace is lock-striped, capacity-bounded, and evicts
//! per a pluggable [`EvictionPolicy`] — including the default
//! [`EvictionPolicy::Adaptive`], which switches LRU↔LFU from its own live
//! [`CacheStats`] counters.
//!
//! Work inside the engine is concurrent on two axes: a batch fans out
//! across programs via rayon, and within one program the call graph is
//! condensed into SCCs whose independent components are scheduled in
//! parallel, level by level.
//!
//! ```
//! use sil_engine::{Engine, EngineConfig};
//! use sil_workloads::Workload;
//!
//! let engine = Engine::new(EngineConfig::default());
//! let src = Workload::TreeSum.source(4);
//!
//! let cold = engine.analyze_source(&src).unwrap();
//! let warm = engine.analyze_source(&src).unwrap();   // served from the store
//! assert_eq!(cold.analysis.digest(), warm.analysis.digest());
//! assert_eq!(engine.stats().programs.hits, 1);
//! assert_eq!(engine.store_stats().programs.entries, 1);
//! ```

pub mod cli;
pub mod peer;
pub mod report;
pub mod service;
pub mod store;

pub use peer::{PeerConfig, PeerRing, PeerStats};
pub use report::{ExecutionReport, IncrementalReport, ProcessOptions, ProgramReport};
pub use service::{
    Addr, LocalService, RemoteService, Request, Response, Server, ServerHandle, ServerStats,
    Service, ServiceError, ShardedService, PROTOCOL_VERSION,
};
pub use store::{
    AdaptConfig, CacheStats, DiskStats, DurableConfig, DurableTier, EvictionPolicy, Namespace,
    NamespaceCache, NamespaceStats, PolicyChoice, StoreConfig, StoreStats, SummaryStore,
};

use rayon::prelude::*;
use sil_analysis::{
    analyze_program_with_options, compute_scc_summaries, AnalysisResult, AnalysisSnapshot,
    AnalyzeOptions, CallGraph, IncrementalStats, ProcSummary, WalkRecord,
};
use sil_lang::hash::program_fingerprint;
use sil_lang::types::ProgramTypes;
use sil_lang::{frontend, pretty_program, Program, SilError};
use sil_parallelizer::{pack_program_with_analysis, verify_parallel_program, PackOptions};
use sil_runtime::{Interpreter, RunConfig};
use silobs::{Counter, RawMetrics, Registry, ShardedHistogram, Tracer};
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::Arc;

/// Engine construction parameters.  The cache-shaped fields describe the
/// [`SummaryStore`] an [`Engine::new`] builds for itself; an engine
/// attached to an existing store via [`Engine::with_store`] inherits that
/// store's shape instead.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Capacity of the whole-program namespace.
    pub program_cache_capacity: usize,
    /// Capacity of the per-SCC summary namespace.
    pub summary_cache_capacity: usize,
    /// Capacity (in cones) of the walk-record namespace that backs
    /// incremental re-analysis.
    pub procedure_cache_capacity: usize,
    /// Eviction policy shared by all namespaces (default:
    /// [`EvictionPolicy::Adaptive`]).
    pub eviction: EvictionPolicy,
    /// Adaptation window/threshold shared by all namespaces (a
    /// [`StoreConfig`] built directly can still shape each namespace
    /// independently).
    pub adapt: AdaptConfig,
    /// Lock stripes per store namespace.
    pub store_stripes: usize,
    /// Schedule batches and independent call-graph SCCs across rayon.
    pub parallel: bool,
    /// Record body walks and re-analyze edited programs incrementally: on a
    /// program-cache miss, every procedure whose cone fingerprint matches a
    /// retained one replays its recorded walks, and only the stale cone of
    /// the edit is re-walked.  The result is bit-identical to a full
    /// analysis (same digests); this only trades memory for time.
    pub incremental: bool,
    /// Durable disk tier under the in-memory store (`None` = memory-only).
    pub durable: Option<DurableConfig>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            program_cache_capacity: 256,
            summary_cache_capacity: 1024,
            procedure_cache_capacity: 512,
            eviction: EvictionPolicy::default(),
            adapt: AdaptConfig::default(),
            store_stripes: store::DEFAULT_STRIPES,
            parallel: true,
            incremental: true,
            durable: None,
        }
    }
}

/// Builder-style setters: `EngineConfig::default().with_eviction(Lfu)
/// .with_incremental(false)` reads better at construction sites than
/// struct-update syntax and keeps working if fields grow defaults.
impl EngineConfig {
    pub fn with_program_cache_capacity(mut self, capacity: usize) -> Self {
        self.program_cache_capacity = capacity;
        self
    }

    pub fn with_summary_cache_capacity(mut self, capacity: usize) -> Self {
        self.summary_cache_capacity = capacity;
        self
    }

    pub fn with_procedure_cache_capacity(mut self, capacity: usize) -> Self {
        self.procedure_cache_capacity = capacity;
        self
    }

    pub fn with_eviction(mut self, eviction: EvictionPolicy) -> Self {
        self.eviction = eviction;
        self
    }

    pub fn with_adapt_window(mut self, window: u64) -> Self {
        self.adapt.window = window;
        self
    }

    pub fn with_adapt_threshold(mut self, threshold: u64) -> Self {
        self.adapt.threshold = threshold;
        self
    }

    pub fn with_store_stripes(mut self, stripes: usize) -> Self {
        self.store_stripes = stripes;
        self
    }

    pub fn with_parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    pub fn with_incremental(mut self, incremental: bool) -> Self {
        self.incremental = incremental;
        self
    }

    /// Put a durable disk tier under the store (or remove it with `None`).
    pub fn with_durable(mut self, durable: Option<DurableConfig>) -> Self {
        self.durable = durable;
        self
    }

    /// Shorthand: a durable tier with default sizing rooted at `data_dir`.
    pub fn with_data_dir(self, data_dir: impl Into<std::path::PathBuf>) -> Self {
        self.with_durable(Some(DurableConfig::at(data_dir)))
    }

    /// The shape of the [`SummaryStore`] this config describes.
    pub fn store_config(&self) -> StoreConfig {
        StoreConfig {
            program_capacity: self.program_cache_capacity,
            summary_capacity: self.summary_cache_capacity,
            walk_capacity: self.procedure_cache_capacity,
            program_policy: self.eviction,
            summary_policy: self.eviction,
            walk_policy: self.eviction,
            program_adapt: self.adapt,
            summary_adapt: self.adapt,
            walk_adapt: self.adapt,
            stripes: self.store_stripes,
            durable: self.durable.clone(),
        }
    }
}

/// Everything the engine derives from one program.
#[derive(Debug)]
pub struct AnalyzedProgram {
    /// Content fingerprint of the normalized program (the cache key).
    pub fingerprint: u64,
    /// The normalized, type-checked program.
    pub program: Program,
    pub types: ProgramTypes,
    /// The whole-program path-matrix analysis.
    pub analysis: Arc<AnalysisResult>,
    /// Incremental-reuse counters of the analysis that produced this entry
    /// (`None` when the engine runs with `incremental: false`, or when the
    /// entry was served from the program cache).
    pub incremental: Option<IncrementalStats>,
}

/// Why a request failed.
#[derive(Debug)]
pub enum EngineError {
    /// The source did not parse or type check.
    Frontend(SilError),
    /// Execution was requested and the interpreter rejected the program.
    Runtime(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Frontend(e) => write!(f, "frontend: {e}"),
            EngineError::Runtime(e) => write!(f, "runtime: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<SilError> for EngineError {
    fn from(e: SilError) -> EngineError {
        EngineError::Frontend(e)
    }
}

/// One engine's *view counters* over the shared store: the lookups this
/// engine made, per namespace.  The store's own [`StoreStats`] are the
/// authoritative cache counters (including evictions and residency); the
/// per-engine view is what makes shard-level accounting meaningful when
/// several engines share one store — and it is how a cross-shard warm hit
/// shows up: shard B's view records a hit on an entry only shard A ever
/// inserted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Whole-program lookups through this engine.
    pub programs: CacheStats,
    /// Per-SCC summary lookups through this engine.
    pub summaries: CacheStats,
    /// Walk-record (cone) lookups through this engine: a hit means a
    /// procedure's retained walks were available for incremental replay
    /// ("reused"), a miss means its cone was stale.
    pub walks: CacheStats,
}

impl EngineStats {
    /// Field-wise accumulate (aggregating shards of a
    /// [`service::ShardedService`]).
    pub fn absorb(&mut self, other: &EngineStats) {
        self.programs.absorb(&other.programs);
        self.summaries.absorb(&other.summaries);
        self.walks.absorb(&other.walks);
    }
}

/// Hit/miss/insertion counters of one namespace view, registered on the
/// engine's observability [`Registry`] (so `engine.<ns>.hits` etc. appear
/// in `Metrics` responses) — the [`EngineStats`] snapshot is a
/// byte-compatible *view* over the same atomics.  Evictions are a
/// store-side phenomenon (a view cannot know which engine's insert
/// displaced an entry), so the snapshot always reports 0 evictions.
#[derive(Debug)]
struct ViewCounters {
    hits: Counter,
    misses: Counter,
    insertions: Counter,
}

impl ViewCounters {
    fn register(registry: &Registry, namespace: &str) -> ViewCounters {
        ViewCounters {
            hits: registry.counter(&format!("engine.{namespace}.hits")),
            misses: registry.counter(&format!("engine.{namespace}.misses")),
            insertions: registry.counter(&format!("engine.{namespace}.insertions")),
        }
    }

    fn hit(&self) {
        self.hits.incr();
    }

    fn miss(&self) {
        self.misses.incr();
    }

    fn insertion(&self) {
        self.insertions.incr();
    }

    fn snapshot(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            insertions: self.insertions.get(),
            evictions: 0,
        }
    }
}

#[derive(Debug)]
struct StoreView {
    programs: ViewCounters,
    summaries: ViewCounters,
    walks: ViewCounters,
}

impl StoreView {
    fn register(registry: &Registry) -> StoreView {
        StoreView {
            programs: ViewCounters::register(registry, "programs"),
            summaries: ViewCounters::register(registry, "summaries"),
            walks: ViewCounters::register(registry, "walks"),
        }
    }
}

/// Fold a [`StoreStats`] snapshot into `raw` as `store.*` counters and
/// gauges, making the store's authoritative numbers (including evictions
/// and ghost hits, which no engine view can see) part of one `Metrics`
/// response.  Callers sharing a store across shards must fold it exactly
/// once.
pub fn export_store_metrics(stats: &StoreStats, raw: &mut RawMetrics) {
    for (name, namespace) in [
        ("programs", &stats.programs),
        ("summaries", &stats.summaries),
        ("walks", &stats.walks),
    ] {
        raw.push_counter(&format!("store.{name}.hits"), namespace.totals.hits);
        raw.push_counter(&format!("store.{name}.misses"), namespace.totals.misses);
        raw.push_counter(
            &format!("store.{name}.insertions"),
            namespace.totals.insertions,
        );
        raw.push_counter(
            &format!("store.{name}.evictions"),
            namespace.totals.evictions,
        );
        raw.push_counter(&format!("store.{name}.ghost_hits"), namespace.ghost_hits);
        raw.push_counter(&format!("store.{name}.policy_switches"), namespace.switches);
        raw.push_gauge(&format!("store.{name}.entries"), namespace.entries as i64);
        raw.push_gauge(&format!("store.{name}.capacity"), namespace.capacity as i64);
    }
    if let Some(disk) = &stats.disk {
        raw.push_counter("store.disk.hits", disk.hits);
        raw.push_counter("store.disk.misses", disk.misses);
        raw.push_counter("store.disk.read_bytes", disk.read_bytes);
        raw.push_counter("store.disk.written_bytes", disk.written_bytes);
        raw.push_counter("store.disk.flushes", disk.flushes);
        raw.push_counter("store.disk.compactions", disk.compactions);
        raw.push_counter("store.disk.evictions", disk.evictions);
        raw.push_counter("store.disk.recovered_entries", disk.recovered_entries);
        raw.push_counter("store.disk.dropped_bytes", disk.dropped_bytes);
        raw.push_gauge("store.disk.entries", disk.entries as i64);
        raw.push_gauge("store.disk.live_bytes", disk.live_bytes as i64);
        raw.push_gauge("store.disk.segments", disk.segments as i64);
    }
    if let Some(peer) = &stats.peer {
        raw.push_counter("store.peer.hits", peer.hits);
        raw.push_counter("store.peer.misses", peer.misses);
        raw.push_counter("store.peer.gossip_rounds", peer.gossip_rounds);
        raw.push_counter("store.peer.quarantines", peer.quarantines);
        raw.push_counter("store.peer.bytes_in", peer.bytes_in);
        raw.push_counter("store.peer.bytes_out", peer.bytes_out);
        raw.push_counter("store.peer.serves", peer.serves);
        raw.push_gauge("store.peer.peers", peer.peers as i64);
        raw.push_gauge("store.peer.quarantined", peer.quarantined as i64);
        raw.push_gauge("store.peer.known_keys", peer.known_keys as i64);
    }
}

/// Fold the process-wide path-matrix representation gauges into `raw`:
/// `analysis.interned_symbols` (distinct handle names in the global
/// interner) and `analysis.matrix_bytes` (high-water footprint of the
/// largest single path matrix observed at a join).  Like
/// [`export_store_metrics`], fold exactly once per `Metrics` response —
/// the interner is process-global, so per-shard folding would double-count.
pub fn export_analysis_metrics(raw: &mut RawMetrics) {
    raw.push_gauge(
        "analysis.interned_symbols",
        sil_pathmatrix::symbol_count() as i64,
    );
    raw.push_gauge(
        "analysis.matrix_bytes",
        sil_pathmatrix::matrix_bytes_high_water() as i64,
    );
}

/// How many walk records one cone may retain.  A record exists per (round ×
/// distinct entry context) of a procedure, so a handful of edits produce a
/// handful of records; the cap only guards against a pathological client
/// cycling a cone through endlessly distinct contexts.
const RECORDS_PER_CONE: usize = 64;

/// The memoizing analysis service.  `Engine` is `Sync`: one instance serves
/// concurrent callers, and all its methods take `&self`.
///
/// An engine is a view over an [`Arc<SummaryStore>`]: [`Engine::new`]
/// builds a private store from its config, [`Engine::with_store`] attaches
/// to a shared one (the [`service::ShardedService`] constructor does this
/// for every shard, which is what makes summaries cross shard boundaries).
#[derive(Debug)]
pub struct Engine {
    config: EngineConfig,
    store: Arc<SummaryStore>,
    view: StoreView,
    registry: Registry,
    tracer: Arc<Tracer>,
    fixpoint_us: Arc<ShardedHistogram>,
    summaries_us: Arc<ShardedHistogram>,
    walks_performed: Counter,
    walks_reused: Counter,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new(EngineConfig::default())
    }
}

impl Engine {
    /// An engine over its own private store, shaped by `config`.
    pub fn new(config: EngineConfig) -> Engine {
        let store = SummaryStore::shared(config.store_config());
        Engine::with_store(config, store)
    }

    /// An engine over an existing (typically shared) store.  The config's
    /// cache-shaped fields are ignored — the store was already built —
    /// only `parallel` and `incremental` govern this view.
    pub fn with_store(config: EngineConfig, store: Arc<SummaryStore>) -> Engine {
        let registry = Registry::new();
        // Adopt the store's durable-tier tracer when there is one, so the
        // flusher's `disk-*` spans surface in this engine's trace dumps.
        let tracer = store
            .durable()
            .map(|tier| tier.tracer().clone())
            .unwrap_or_else(|| Arc::new(Tracer::default()));
        Engine {
            view: StoreView::register(&registry),
            fixpoint_us: registry.histogram("engine.fixpoint_us"),
            summaries_us: registry.histogram("engine.summaries_us"),
            walks_performed: registry.counter("engine.walks.performed"),
            walks_reused: registry.counter("engine.walks.reused"),
            tracer,
            config,
            store,
            registry,
        }
    }

    /// Share a span ring with other engines (the sharded service hands
    /// every shard the same tracer, so one `TraceDump` sees the whole
    /// request's spans regardless of which shard executed it).
    pub fn with_tracer(mut self, tracer: Arc<Tracer>) -> Engine {
        self.tracer = tracer;
        self
    }

    /// This engine's span ring.
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    /// This engine's observability registry, in mergeable raw form
    /// (`engine.*` lookup counters and timing histograms).  The shared
    /// store's `store.*` entries are folded in separately via
    /// [`export_store_metrics`] — exactly once per store, however many
    /// engines share it.
    pub fn metrics_raw(&self) -> RawMetrics {
        self.registry.collect()
    }

    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The store this engine is a view over.
    pub fn store(&self) -> &Arc<SummaryStore> {
        &self.store
    }

    /// Parse, type check, and analyze one program, serving the analysis
    /// from the program namespace when its content fingerprint hits.
    ///
    /// Compatibility wrapper: the service-facing entry point is the
    /// unified [`Engine::serve`]`(Request) -> Response` path (this method
    /// is its `Request::Analyze` arm with the in-process extras — the
    /// `Arc`'d program — that do not travel over a wire).
    pub fn analyze_source(&self, src: &str) -> Result<Arc<AnalyzedProgram>, EngineError> {
        self.analyze_source_traced(src).map(|(entry, _)| entry)
    }

    /// Like [`Engine::analyze_source`], also reporting whether the program
    /// namespace served the request.
    pub fn analyze_source_traced(
        &self,
        src: &str,
    ) -> Result<(Arc<AnalyzedProgram>, bool), EngineError> {
        let parsed = {
            let _span = self.tracer.start("parse");
            frontend(src)
        };
        let (program, types) = parsed?;
        Ok(self.analyze_normalized(program, types))
    }

    /// Analyze an already-normalized, type-checked program.
    ///
    /// On a program-cache miss the analysis is (with
    /// [`EngineConfig::incremental`]) seeded from the walk records of every
    /// cone this program shares with previously analyzed ones — whether
    /// those were produced through this engine or any other view of the
    /// same store — so an edited variant of a cached program only
    /// re-analyzes the edit's stale cone.
    pub fn analyze_normalized(
        &self,
        program: Program,
        types: ProgramTypes,
    ) -> (Arc<AnalyzedProgram>, bool) {
        let fingerprint = program_fingerprint(&program);
        let looked_up = {
            let _span = self.tracer.start("store-lookup");
            self.store.lookup_program(fingerprint)
        };
        if let Some(hit) = looked_up {
            self.view.programs.hit();
            return (hit, true);
        }
        self.view.programs.miss();
        let graph = CallGraph::of_program(&program);
        let summaries = self.summaries_for(&program, &types, &graph);

        let (analysis, incremental) = if self.config.incremental {
            let cones = graph.cone_fingerprints(&program);
            let mut distinct: Vec<u64> = cones.values().copied().collect();
            distinct.sort_unstable();
            distinct.dedup();
            let mut reuse = AnalysisSnapshot::new();
            let mut retained: std::collections::HashSet<u64> = std::collections::HashSet::new();
            for &cone in &distinct {
                match self.store.walks().get(cone) {
                    Some(records) => {
                        self.view.walks.hit();
                        retained.insert(cone);
                        for record in records.iter() {
                            reuse.insert(record.clone());
                        }
                    }
                    None => self.view.walks.miss(),
                }
            }
            let options = AnalyzeOptions {
                parallel: self.config.parallel,
                record: true,
                reuse: Some(&reuse),
            };
            let fixpoint_start = silobs::ticks();
            let (analysis, snapshot, mut stats) = {
                let _span = self.tracer.start("fixpoint");
                analyze_program_with_options(&program, &types, summaries, &options)
            };
            self.fixpoint_us
                .record(silobs::ticks().saturating_sub(fixpoint_start));
            self.walks_performed.add(stats.walks_performed as u64);
            self.walks_reused.add(stats.walks_reused as u64);
            for (name, cone) in &cones {
                // Only classify procedures the fixpoint actually walked:
                // dead code (unreachable from `main`) never records walks,
                // so its cone would otherwise count as "stale" forever.
                if analysis.procedure(name).is_none() {
                    continue;
                }
                if retained.contains(cone) {
                    stats.procedures_reused += 1;
                } else {
                    stats.procedures_stale += 1;
                }
            }
            // Persist this run's walks for the next edit, grouped by cone.
            let snapshot = snapshot.expect("recording was requested");
            let mut by_cone: HashMap<u64, Vec<Arc<WalkRecord>>> = HashMap::new();
            for record in snapshot.records() {
                by_cone.entry(record.cone).or_default().push(record.clone());
            }
            for (cone, fresh) in by_cone {
                self.view.walks.insertion();
                // Merge under the stripe lock: fresh records win, surviving
                // older records (other entry contexts of the same cone) ride
                // along up to the per-cone cap.  Concurrent analyses sharing
                // a cone cannot drop each other's freshly recorded walks.
                self.store.walks().merge(cone, |existing| {
                    let mut merged = fresh;
                    let mut seen: std::collections::HashSet<u64> =
                        merged.iter().map(|r| r.key).collect();
                    if let Some(existing) = existing {
                        for record in existing.iter() {
                            if merged.len() >= RECORDS_PER_CONE {
                                break;
                            }
                            if seen.insert(record.key) {
                                merged.push(record.clone());
                            }
                        }
                    }
                    merged.truncate(RECORDS_PER_CONE);
                    Arc::new(merged)
                });
            }
            (analysis, Some(stats))
        } else {
            let options = AnalyzeOptions {
                parallel: self.config.parallel,
                ..AnalyzeOptions::default()
            };
            let fixpoint_start = silobs::ticks();
            let (analysis, _, stats) = {
                let _span = self.tracer.start("fixpoint");
                analyze_program_with_options(&program, &types, summaries, &options)
            };
            self.fixpoint_us
                .record(silobs::ticks().saturating_sub(fixpoint_start));
            self.walks_performed.add(stats.walks_performed as u64);
            (analysis, None)
        };

        let entry = Arc::new(AnalyzedProgram {
            fingerprint,
            program,
            types,
            analysis: Arc::new(analysis),
            incremental,
        });
        self.view.programs.insertion();
        self.store.store_program(fingerprint, entry.clone());
        (entry, false)
    }

    /// Argument-mode summaries for every procedure, reusing cached per-SCC
    /// results and computing the misses level-by-level, independent SCCs of
    /// one level in parallel.
    fn summaries_for(
        &self,
        program: &Program,
        types: &ProgramTypes,
        graph: &CallGraph,
    ) -> HashMap<String, ProcSummary> {
        let start = silobs::ticks();
        let resolved = self.summaries_for_inner(program, types, graph);
        self.summaries_us
            .record(silobs::ticks().saturating_sub(start));
        resolved
    }

    fn summaries_for_inner(
        &self,
        program: &Program,
        types: &ProgramTypes,
        graph: &CallGraph,
    ) -> HashMap<String, ProcSummary> {
        let cones = graph.cone_fingerprints(program);
        let mut resolved: HashMap<String, ProcSummary> = HashMap::new();
        for level in graph.scc_levels() {
            let computed: Vec<HashMap<String, ProcSummary>> =
                if self.config.parallel && level.len() > 1 {
                    // Pool workers have no thread-local trace context of
                    // their own; forward this thread's so their spans stay
                    // in the request's trace tree.
                    let ctx = silobs::current_context();
                    level
                        .par_iter()
                        .map(|scc| {
                            silobs::with_context_opt(ctx, || {
                                self.scc_summaries(program, types, scc, &cones, &resolved)
                            })
                        })
                        .collect()
                } else {
                    level
                        .iter()
                        .map(|scc| self.scc_summaries(program, types, scc, &cones, &resolved))
                        .collect()
                };
            for summaries in computed {
                resolved.extend(summaries);
            }
        }
        resolved
    }

    fn scc_summaries(
        &self,
        program: &Program,
        types: &ProgramTypes,
        members: &[String],
        cones: &HashMap<String, u64>,
        resolved: &HashMap<String, ProcSummary>,
    ) -> HashMap<String, ProcSummary> {
        let key = members
            .first()
            .and_then(|m| cones.get(m).copied())
            .unwrap_or_default();
        if let Some(hit) = self.store.lookup_summaries(key) {
            self.view.summaries.hit();
            return (*hit).clone();
        }
        self.view.summaries.miss();
        let computed = compute_scc_summaries(program, types, members, resolved);
        self.view.summaries.insertion();
        self.store.store_summaries(key, Arc::new(computed.clone()));
        computed
    }

    /// Analyze a batch of programs.  With [`EngineConfig::parallel`] the
    /// batch fans out across rayon; results come back in input order.
    pub fn analyze_batch<S: AsRef<str> + Sync>(
        &self,
        sources: &[S],
    ) -> Vec<Result<Arc<AnalyzedProgram>, EngineError>> {
        if self.config.parallel && sources.len() > 1 {
            let ctx = silobs::current_context();
            sources
                .par_iter()
                .map(|src| silobs::with_context_opt(ctx, || self.analyze_source(src.as_ref())))
                .collect()
        } else {
            sources
                .iter()
                .map(|src| self.analyze_source(src.as_ref()))
                .collect()
        }
    }

    /// Run the full pipeline over one program: analyze (cached), then per
    /// `options` parallelize, verify, and execute, producing a report.
    ///
    /// Compatibility wrapper: equivalent to [`Engine::serve`] with
    /// [`Request::Process`], unwrapped to a Rust `Result`.
    pub fn process(
        &self,
        src: &str,
        options: &ProcessOptions,
    ) -> Result<ProgramReport, EngineError> {
        let (entry, cache_hit) = self.analyze_source_traced(src)?;
        let analysis = &entry.analysis;
        let structure = analysis
            .procedure("main")
            .map(|p| p.exit.structure.to_string())
            .unwrap_or_else(|| "UNKNOWN".to_string());

        let mut report = ProgramReport {
            name: entry.program.name.clone(),
            fingerprint: entry.fingerprint,
            cache_hit,
            structure,
            preserves_tree: analysis.preserves_tree(),
            warnings: analysis.warnings.iter().map(|w| w.to_string()).collect(),
            rounds: analysis.rounds,
            analysis_digest: analysis.digest(),
            incremental: entry.incremental.map(|s| IncrementalReport {
                procedures_reused: s.procedures_reused,
                procedures_stale: s.procedures_stale,
                walks_performed: s.walks_performed,
                walks_reused: s.walks_reused,
            }),
            transforms: None,
            violations: Vec::new(),
            parallel_source: None,
            sequential_execution: None,
            parallel_execution: None,
        };

        let mut parallel_frontend: Option<(Program, ProgramTypes)> = None;
        if options.parallelize {
            // Reuse the (possibly cached) analysis instead of letting the
            // packer recompute it — on a warm hit the whole parallelization
            // step costs only the packing walk.
            let (parallel, transform_report) = pack_program_with_analysis(
                &entry.program,
                &entry.types,
                analysis,
                &PackOptions::default(),
            );
            report.transforms = Some(transform_report.count());
            let printed = pretty_program(&parallel);
            let reparsed = frontend(&printed)?;
            if options.verify {
                report.violations = verify_parallel_program(&reparsed.0, &reparsed.1)
                    .iter()
                    .map(|v| v.to_string())
                    .collect();
            }
            if options.emit_parallel_source {
                report.parallel_source = Some(printed);
            }
            parallel_frontend = Some(reparsed);
        }

        if options.execute {
            let config = RunConfig {
                store_capacity: options.store_capacity,
                ..RunConfig::default()
            };
            report.sequential_execution =
                Some(run_program(&entry.program, &entry.types, config.clone())?);
            if let Some((par_program, par_types)) = &parallel_frontend {
                report.parallel_execution = Some(run_program(par_program, par_types, config)?);
            }
        }
        Ok(report)
    }

    /// [`Engine::process`] over a batch, fanning out across rayon.
    pub fn process_batch<S: AsRef<str> + Sync>(
        &self,
        sources: &[S],
        options: &ProcessOptions,
    ) -> Vec<Result<ProgramReport, EngineError>> {
        if self.config.parallel && sources.len() > 1 {
            let ctx = silobs::current_context();
            sources
                .par_iter()
                .map(|src| silobs::with_context_opt(ctx, || self.process(src.as_ref(), options)))
                .collect()
        } else {
            sources
                .iter()
                .map(|src| self.process(src.as_ref(), options))
                .collect()
        }
    }

    /// This engine's view counters (lookups made through *this* engine).
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            programs: self.view.programs.snapshot(),
            summaries: self.view.summaries.snapshot(),
            walks: self.view.walks.snapshot(),
        }
    }

    /// The shared store's authoritative counters: per-namespace and
    /// per-stripe hits/misses/evictions, residency, and the live state of
    /// each namespace's eviction policy.
    pub fn store_stats(&self) -> StoreStats {
        self.store.stats()
    }

    /// Drop all cached entries from the store (counters survive; useful
    /// for cold-vs-warm measurements).  Affects every engine sharing the
    /// store.
    pub fn clear_caches(&self) {
        self.store.clear();
    }

    /// Drop only the whole-program namespace, keeping the summary and walk
    /// namespaces warm — the warm-incremental side of cold-vs-incremental
    /// measurements re-analyzes a program with full cone reuse.
    pub fn clear_program_cache(&self) {
        self.store.programs().clear();
    }

    /// Open a session: a lightweight client handle that tracks its own
    /// request count and cache-hit delta on top of the shared engine.
    pub fn session(&self) -> Session<'_> {
        Session {
            engine: self,
            requests: Cell::new(0),
            baseline: self.stats(),
        }
    }
}

/// Per-client view of a shared [`Engine`].
///
/// Sessions are cheap (two counters and a stats snapshot) and borrow the
/// engine, so a server can hand one to every connection while all sessions
/// share the same caches.
pub struct Session<'e> {
    engine: &'e Engine,
    requests: Cell<u64>,
    baseline: EngineStats,
}

/// What one session observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionReport {
    /// Requests submitted through this session.
    pub requests: u64,
    /// Program-cache hits across the engine since the session opened.
    pub program_hits: u64,
    /// Program-cache misses across the engine since the session opened.
    pub program_misses: u64,
    /// Summary-cache hits across the engine since the session opened.
    pub summary_hits: u64,
}

impl Session<'_> {
    pub fn engine(&self) -> &Engine {
        self.engine
    }

    pub fn analyze(&self, src: &str) -> Result<Arc<AnalyzedProgram>, EngineError> {
        self.requests.set(self.requests.get() + 1);
        self.engine.analyze_source(src)
    }

    pub fn process(
        &self,
        src: &str,
        options: &ProcessOptions,
    ) -> Result<ProgramReport, EngineError> {
        self.requests.set(self.requests.get() + 1);
        self.engine.process(src, options)
    }

    pub fn report(&self) -> SessionReport {
        let now = self.engine.stats();
        SessionReport {
            requests: self.requests.get(),
            program_hits: now.programs.hits - self.baseline.programs.hits,
            program_misses: now.programs.misses - self.baseline.programs.misses,
            summary_hits: now.summaries.hits - self.baseline.summaries.hits,
        }
    }
}

fn run_program(
    program: &Program,
    types: &ProgramTypes,
    config: RunConfig,
) -> Result<ExecutionReport, EngineError> {
    let mut interp = Interpreter::with_config(program, types, config);
    let outcome = interp
        .run()
        .map_err(|e| EngineError::Runtime(e.to_string()))?;
    Ok(ExecutionReport {
        work: outcome.cost.work,
        span: outcome.cost.span,
        parallelism: outcome.cost.parallelism(),
        allocated_nodes: outcome.allocated_nodes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sil_analysis::analyze_program;
    use sil_workloads::Workload;

    #[test]
    fn warm_hit_returns_the_same_arc() {
        let engine = Engine::default();
        let src = Workload::TreeSum.source(4);
        let (cold, hit0) = engine.analyze_source_traced(&src).unwrap();
        let (warm, hit1) = engine.analyze_source_traced(&src).unwrap();
        assert!(!hit0);
        assert!(hit1);
        assert!(Arc::ptr_eq(&cold, &warm));
        let stats = engine.stats();
        assert_eq!(stats.programs.hits, 1);
        assert_eq!(stats.programs.misses, 1);
        assert_eq!(engine.store_stats().programs.entries, 1);
    }

    #[test]
    fn engine_matches_direct_analysis() {
        let engine = Engine::default();
        for workload in Workload::ALL {
            let src = workload.source(workload.test_size());
            let entry = engine.analyze_source(&src).unwrap();
            let direct = {
                let (program, types) = frontend(&src).unwrap();
                analyze_program(&program, &types)
            };
            assert_eq!(
                entry.analysis.digest(),
                direct.digest(),
                "{} diverges from analyze_program",
                workload.name()
            );
        }
    }

    #[test]
    fn summary_cache_is_shared_across_programs() {
        let engine = Engine::default();
        // Two different programs with an identical `build`+`sum` cone: the
        // second program's summary lookups hit.
        let a = Workload::TreeSum.source(4);
        let b = Workload::TreeSum.source(5); // differs only in main
        engine.analyze_source(&a).unwrap();
        let before = engine.stats().summaries.hits;
        engine.analyze_source(&b).unwrap();
        let after = engine.stats().summaries.hits;
        assert!(
            after > before,
            "expected shared-cone summary hits ({before} -> {after})"
        );
    }

    #[test]
    fn two_engines_over_one_store_share_their_summaries() {
        let store = SummaryStore::shared(EngineConfig::default().store_config());
        let a = Engine::with_store(EngineConfig::default(), store.clone());
        let b = Engine::with_store(EngineConfig::default(), store);

        let src = Workload::TreeSum.source(4);
        a.analyze_source(&src).unwrap();
        // The *same program* through the other view is a whole-program hit
        // even though engine `b` never analyzed anything.
        let (_, hit) = b.analyze_source_traced(&src).unwrap();
        assert!(hit, "engine b must warm-hit engine a's store entry");
        assert_eq!(b.stats().programs.hits, 1);
        assert_eq!(b.stats().programs.misses, 0);
        assert_eq!(a.stats().programs.hits, 0, "a's view saw none of b's hits");

        // A *variant* through the other view reuses summaries and walks.
        let variant = Workload::TreeSum.source(5);
        let (_, variant_hit) = b.analyze_source_traced(&variant).unwrap();
        assert!(!variant_hit);
        assert!(b.stats().summaries.hits > 0, "cross-engine summary reuse");
        assert!(b.stats().walks.hits > 0, "cross-engine walk reuse");
    }

    #[test]
    fn parse_errors_are_reported() {
        let engine = Engine::default();
        let err = engine
            .analyze_source("program broken procedure")
            .unwrap_err();
        assert!(matches!(err, EngineError::Frontend(_)));
        assert!(err.to_string().contains("frontend"));
    }

    #[test]
    fn sessions_track_their_requests() {
        let engine = Engine::default();
        let src = Workload::Leftmost.source(3);
        let session = engine.session();
        session.analyze(&src).unwrap();
        session.analyze(&src).unwrap();
        let report = session.report();
        assert_eq!(report.requests, 2);
        assert_eq!(report.program_hits, 1);
        assert_eq!(report.program_misses, 1);
    }

    #[test]
    fn process_produces_a_full_report() {
        let engine = Engine::default();
        let src = Workload::AddAndReverse.source(4);
        let options = ProcessOptions {
            execute: true,
            emit_parallel_source: true,
            ..ProcessOptions::default()
        };
        let report = engine.process(&src, &options).unwrap();
        assert_eq!(report.name, "add_and_reverse");
        assert!(report.transforms.unwrap() >= 6, "Figure 8 parallelism");
        assert!(report.violations.is_empty());
        let seq = report.sequential_execution.as_ref().unwrap();
        let par = report.parallel_execution.as_ref().unwrap();
        assert_eq!(seq.work, par.work);
        assert!(par.span < seq.span);
        assert!(report.parallel_source.as_deref().unwrap().contains("||"));
        let json = report.to_json();
        assert!(json.contains("\"name\":\"add_and_reverse\""));
    }
}
