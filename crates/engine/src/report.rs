//! Request options and result reports for the engine pipeline.
//!
//! A [`ProgramReport`] is the JSON-serializable summary of one program's
//! trip through parse → analyze → parallelize → verify → (optionally)
//! execute.  Reports encode to JSON through the service layer's value
//! module ([`crate::service::json`]) and — unlike the write-only renderer
//! this file used to hold — decode back: `from_json_value(to_json_value(r))
//! == r` exactly, which is what lets a `sild` daemon ship reports to a
//! remote `silp` that then renders byte-identical output to an in-process
//! run.

use crate::service::json::{escape, hex64, parse_hex64, Json};
use std::fmt::Write as _;

/// What the pipeline should do beyond the (always-run) analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessOptions {
    /// Run the packing parallelizer and include its transform count.
    pub parallelize: bool,
    /// Statically verify the parallelized output.
    pub verify: bool,
    /// Execute the program(s) on the deterministic interpreter and report
    /// work/span.
    pub execute: bool,
    /// Include the pretty-printed parallelized source in the report.
    pub emit_parallel_source: bool,
    /// Node-store capacity for execution.
    pub store_capacity: usize,
}

impl Default for ProcessOptions {
    fn default() -> Self {
        ProcessOptions {
            parallelize: true,
            verify: true,
            execute: false,
            emit_parallel_source: false,
            store_capacity: 1 << 18,
        }
    }
}

impl ProcessOptions {
    pub fn to_json_value(&self) -> Json {
        Json::obj(vec![
            ("parallelize", Json::Bool(self.parallelize)),
            ("verify", Json::Bool(self.verify)),
            ("execute", Json::Bool(self.execute)),
            (
                "emit_parallel_source",
                Json::Bool(self.emit_parallel_source),
            ),
            ("store_capacity", Json::Int(self.store_capacity as i64)),
        ])
    }

    pub fn from_json_value(value: &Json) -> Result<ProcessOptions, String> {
        let flag = |key: &str| -> Result<bool, String> {
            field(value, key)?
                .as_bool()
                .ok_or_else(|| format!("\"{key}\" must be a bool"))
        };
        Ok(ProcessOptions {
            parallelize: flag("parallelize")?,
            verify: flag("verify")?,
            execute: flag("execute")?,
            emit_parallel_source: flag("emit_parallel_source")?,
            store_capacity: field(value, "store_capacity")?
                .as_u64()
                .ok_or("\"store_capacity\" must be a count")? as usize,
        })
    }
}

/// Work/span accounting of one execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionReport {
    pub work: u64,
    pub span: u64,
    pub parallelism: f64,
    pub allocated_nodes: usize,
}

impl ExecutionReport {
    fn to_json_value(&self) -> Json {
        Json::obj(vec![
            ("work", Json::Int(self.work as i64)),
            ("span", Json::Int(self.span as i64)),
            ("parallelism", Json::Float(self.parallelism)),
            ("allocated_nodes", Json::Int(self.allocated_nodes as i64)),
        ])
    }

    fn from_json_value(value: &Json) -> Result<ExecutionReport, String> {
        Ok(ExecutionReport {
            work: field(value, "work")?
                .as_u64()
                .ok_or("work must be a count")?,
            span: field(value, "span")?
                .as_u64()
                .ok_or("span must be a count")?,
            parallelism: field(value, "parallelism")?
                .as_f64()
                .ok_or("parallelism must be a number")?,
            allocated_nodes: field(value, "allocated_nodes")?
                .as_u64()
                .ok_or("allocated_nodes must be a count")? as usize,
        })
    }
}

/// What incremental re-analysis reused for one program (present when the
/// engine runs in incremental mode and the program missed the whole-program
/// cache).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IncrementalReport {
    /// Procedures whose cone fingerprint had retained walks available.
    pub procedures_reused: usize,
    /// Procedures analyzed with no retained state (the stale cone).
    pub procedures_stale: usize,
    /// Fixpoint body walks actually performed.
    pub walks_performed: usize,
    /// Fixpoint body walks replayed from retained records.
    pub walks_reused: usize,
}

impl IncrementalReport {
    fn to_json_value(self) -> Json {
        Json::obj(vec![
            (
                "procedures_reused",
                Json::Int(self.procedures_reused as i64),
            ),
            ("procedures_stale", Json::Int(self.procedures_stale as i64)),
            ("walks_performed", Json::Int(self.walks_performed as i64)),
            ("walks_reused", Json::Int(self.walks_reused as i64)),
        ])
    }

    fn from_json_value(value: &Json) -> Result<IncrementalReport, String> {
        let count = |key: &str| -> Result<usize, String> {
            field(value, key)?
                .as_u64()
                .map(|v| v as usize)
                .ok_or_else(|| format!("\"{key}\" must be a count"))
        };
        Ok(IncrementalReport {
            procedures_reused: count("procedures_reused")?,
            procedures_stale: count("procedures_stale")?,
            walks_performed: count("walks_performed")?,
            walks_reused: count("walks_reused")?,
        })
    }
}

/// The full pipeline result for one program.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramReport {
    /// The program's declared name.
    pub name: String,
    /// Content fingerprint of the normalized AST (the cache key).
    pub fingerprint: u64,
    /// Whether the analysis was served from the program cache.
    pub cache_hit: bool,
    /// Structural classification at `main`'s exit (TREE / DAG / CYCLE).
    pub structure: String,
    /// No statement ever degraded the structure below TREE.
    pub preserves_tree: bool,
    /// Structure warnings, rendered.
    pub warnings: Vec<String>,
    /// Rounds the interprocedural analysis needed.
    pub rounds: usize,
    /// Stable digest of the full analysis result.
    pub analysis_digest: u64,
    /// Incremental-reuse counters (engine in incremental mode, program
    /// cache missed).
    pub incremental: Option<IncrementalReport>,
    /// Number of parallelizing transformations applied (when requested).
    pub transforms: Option<usize>,
    /// Static verifier findings on the parallelized output (when requested).
    pub violations: Vec<String>,
    /// The parallelized program text (only when requested).
    pub parallel_source: Option<String>,
    /// Sequential execution metrics (when requested).
    pub sequential_execution: Option<ExecutionReport>,
    /// Parallelized execution metrics (when requested and parallelized).
    pub parallel_execution: Option<ExecutionReport>,
}

/// Escape a string for embedding in a JSON string literal.
///
/// Thin wrapper kept for compatibility; new code should build
/// [`Json`] values instead of splicing strings.
pub fn json_escape(s: &str) -> String {
    escape(s)
}

pub(crate) fn field<'a>(value: &'a Json, key: &str) -> Result<&'a Json, String> {
    value.get(key).ok_or_else(|| format!("missing \"{key}\""))
}

pub(crate) fn string_list(value: &Json) -> Result<Vec<String>, String> {
    value
        .as_arr()
        .ok_or("expected an array of strings")?
        .iter()
        .map(|item| {
            item.as_str()
                .map(str::to_string)
                .ok_or_else(|| "expected a string".to_string())
        })
        .collect()
}

fn string_list_json(items: &[String]) -> Json {
    Json::Arr(items.iter().map(|s| Json::Str(s.clone())).collect())
}

impl ProgramReport {
    /// The report as a JSON value.  Optional fields are omitted (not
    /// `null`) when absent, and the member order is stable.
    pub fn to_json_value(&self) -> Json {
        let mut fields: Vec<(&str, Json)> = vec![
            ("name", Json::Str(self.name.clone())),
            ("fingerprint", hex64(self.fingerprint)),
            ("cache_hit", Json::Bool(self.cache_hit)),
            ("structure", Json::Str(self.structure.clone())),
            ("preserves_tree", Json::Bool(self.preserves_tree)),
            ("warnings", string_list_json(&self.warnings)),
            ("rounds", Json::Int(self.rounds as i64)),
            ("analysis_digest", hex64(self.analysis_digest)),
        ];
        if let Some(incremental) = self.incremental {
            fields.push(("incremental", incremental.to_json_value()));
        }
        if let Some(transforms) = self.transforms {
            fields.push(("transforms", Json::Int(transforms as i64)));
        }
        fields.push(("violations", string_list_json(&self.violations)));
        if let Some(src) = &self.parallel_source {
            fields.push(("parallel_source", Json::Str(src.clone())));
        }
        if let Some(seq) = &self.sequential_execution {
            fields.push(("sequential_execution", seq.to_json_value()));
        }
        if let Some(par) = &self.parallel_execution {
            fields.push(("parallel_execution", par.to_json_value()));
        }
        Json::obj(fields)
    }

    /// Decode a report encoded by [`ProgramReport::to_json_value`].
    pub fn from_json_value(value: &Json) -> Result<ProgramReport, String> {
        Ok(ProgramReport {
            name: field(value, "name")?
                .as_str()
                .ok_or("name must be a string")?
                .to_string(),
            fingerprint: parse_hex64(field(value, "fingerprint")?)?,
            cache_hit: field(value, "cache_hit")?
                .as_bool()
                .ok_or("cache_hit must be a bool")?,
            structure: field(value, "structure")?
                .as_str()
                .ok_or("structure must be a string")?
                .to_string(),
            preserves_tree: field(value, "preserves_tree")?
                .as_bool()
                .ok_or("preserves_tree must be a bool")?,
            warnings: string_list(field(value, "warnings")?)?,
            rounds: field(value, "rounds")?
                .as_u64()
                .ok_or("rounds must be a count")? as usize,
            analysis_digest: parse_hex64(field(value, "analysis_digest")?)?,
            incremental: value
                .get("incremental")
                .map(IncrementalReport::from_json_value)
                .transpose()?,
            transforms: value
                .get("transforms")
                .map(|t| {
                    t.as_u64()
                        .map(|v| v as usize)
                        .ok_or("transforms must be a count")
                })
                .transpose()?,
            violations: string_list(field(value, "violations")?)?,
            parallel_source: value
                .get("parallel_source")
                .map(|s| {
                    s.as_str()
                        .map(str::to_string)
                        .ok_or("parallel_source must be a string")
                })
                .transpose()?,
            sequential_execution: value
                .get("sequential_execution")
                .map(ExecutionReport::from_json_value)
                .transpose()?,
            parallel_execution: value
                .get("parallel_execution")
                .map(ExecutionReport::from_json_value)
                .transpose()?,
        })
    }

    /// Render the report as a single JSON object.
    pub fn to_json(&self) -> String {
        self.to_json_value().encode()
    }

    /// Parse a report rendered by [`ProgramReport::to_json`].
    pub fn from_json(src: &str) -> Result<ProgramReport, String> {
        let value = Json::parse(src).map_err(|e| e.to_string())?;
        ProgramReport::from_json_value(&value)
    }

    /// Render the report as a short human-readable block.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} [{}{:016x}]",
            self.name,
            if self.cache_hit { "cached " } else { "" },
            self.fingerprint
        );
        let _ = writeln!(
            out,
            "  structure: {} ({} warnings), {} rounds",
            self.structure,
            self.warnings.len(),
            self.rounds
        );
        if let Some(inc) = self.incremental {
            let _ = writeln!(
                out,
                "  incremental: {} procedures reused / {} stale, {} walks replayed / {} performed",
                inc.procedures_reused, inc.procedures_stale, inc.walks_reused, inc.walks_performed
            );
        }
        if let Some(transforms) = self.transforms {
            let _ = writeln!(out, "  parallelized: {transforms} transforms");
        }
        if !self.violations.is_empty() {
            let _ = writeln!(out, "  VIOLATIONS: {}", self.violations.join("; "));
        }
        if let Some(seq) = &self.sequential_execution {
            let _ = writeln!(
                out,
                "  sequential: work={} span={} parallelism={:.2}",
                seq.work, seq.span, seq.parallelism
            );
        }
        if let Some(par) = &self.parallel_execution {
            let _ = writeln!(
                out,
                "  parallel:   work={} span={} parallelism={:.2}",
                par.work, par.span, par.parallelism
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> ProgramReport {
        ProgramReport {
            name: "t".into(),
            fingerprint: 0xabcd,
            cache_hit: true,
            structure: "TREE".into(),
            preserves_tree: true,
            warnings: vec!["w \"quoted\"".into()],
            rounds: 2,
            analysis_digest: 1,
            incremental: Some(IncrementalReport {
                procedures_reused: 3,
                procedures_stale: 1,
                walks_performed: 2,
                walks_reused: 6,
            }),
            transforms: Some(3),
            violations: vec![],
            parallel_source: None,
            sequential_execution: Some(ExecutionReport {
                work: 10,
                span: 5,
                parallelism: 2.0,
                allocated_nodes: 7,
            }),
            parallel_execution: None,
        }
    }

    #[test]
    fn json_escaping_covers_controls_and_quotes() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn report_renders_the_stable_shape() {
        let json = sample_report().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"name\":\"t\""));
        assert!(json.contains("\"fingerprint\":\"000000000000abcd\""));
        assert!(json.contains("\"cache_hit\":true"));
        assert!(json.contains("\"incremental\":{\"procedures_reused\":3"));
        assert!(json.contains("\"walks_reused\":6"));
        assert!(json.contains("\"transforms\":3"));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"work\":10"));
        assert!(json.contains("\"parallelism\":2.0"));
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = sample_report();
        let json = report.to_json();
        let back = ProgramReport::from_json(&json).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.to_json(), json, "encode ∘ parse ∘ encode is identity");
    }

    #[test]
    fn absent_optional_fields_stay_absent() {
        let report = ProgramReport {
            incremental: None,
            transforms: None,
            sequential_execution: None,
            ..sample_report()
        };
        let json = report.to_json();
        assert!(!json.contains("incremental"));
        assert!(!json.contains("transforms"));
        assert!(!json.contains("null"));
        let back = ProgramReport::from_json(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn process_options_round_trip() {
        let options = ProcessOptions {
            parallelize: false,
            verify: true,
            execute: true,
            emit_parallel_source: true,
            store_capacity: 123,
        };
        let back = ProcessOptions::from_json_value(&options.to_json_value()).unwrap();
        assert_eq!(back, options);
    }

    #[test]
    fn decoding_rejects_missing_fields() {
        let err = ProgramReport::from_json("{\"name\":\"x\"}").unwrap_err();
        assert!(err.contains("missing"), "{err}");
        assert!(ProgramReport::from_json("not json").is_err());
    }
}
