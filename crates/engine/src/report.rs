//! Request options and result reports for the engine pipeline.
//!
//! A [`ProgramReport`] is the JSON-serializable summary of one program's
//! trip through parse → analyze → parallelize → verify → (optionally)
//! execute.  JSON is rendered by hand — the environment has no serde — but
//! the shape is stable and documented on each field.

use std::fmt::Write as _;

/// What the pipeline should do beyond the (always-run) analysis.
#[derive(Debug, Clone)]
pub struct ProcessOptions {
    /// Run the packing parallelizer and include its transform count.
    pub parallelize: bool,
    /// Statically verify the parallelized output.
    pub verify: bool,
    /// Execute the program(s) on the deterministic interpreter and report
    /// work/span.
    pub execute: bool,
    /// Include the pretty-printed parallelized source in the report.
    pub emit_parallel_source: bool,
    /// Node-store capacity for execution.
    pub store_capacity: usize,
}

impl Default for ProcessOptions {
    fn default() -> Self {
        ProcessOptions {
            parallelize: true,
            verify: true,
            execute: false,
            emit_parallel_source: false,
            store_capacity: 1 << 18,
        }
    }
}

/// Work/span accounting of one execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionReport {
    pub work: u64,
    pub span: u64,
    pub parallelism: f64,
    pub allocated_nodes: usize,
}

/// What incremental re-analysis reused for one program (present when the
/// engine runs in incremental mode and the program missed the whole-program
/// cache).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IncrementalReport {
    /// Procedures whose cone fingerprint had retained walks available.
    pub procedures_reused: usize,
    /// Procedures analyzed with no retained state (the stale cone).
    pub procedures_stale: usize,
    /// Fixpoint body walks actually performed.
    pub walks_performed: usize,
    /// Fixpoint body walks replayed from retained records.
    pub walks_reused: usize,
}

impl IncrementalReport {
    fn to_json(self) -> String {
        format!(
            "{{\"procedures_reused\":{},\"procedures_stale\":{},\
             \"walks_performed\":{},\"walks_reused\":{}}}",
            self.procedures_reused, self.procedures_stale, self.walks_performed, self.walks_reused
        )
    }
}

/// The full pipeline result for one program.
#[derive(Debug, Clone)]
pub struct ProgramReport {
    /// The program's declared name.
    pub name: String,
    /// Content fingerprint of the normalized AST (the cache key).
    pub fingerprint: u64,
    /// Whether the analysis was served from the program cache.
    pub cache_hit: bool,
    /// Structural classification at `main`'s exit (TREE / DAG / CYCLE).
    pub structure: String,
    /// No statement ever degraded the structure below TREE.
    pub preserves_tree: bool,
    /// Structure warnings, rendered.
    pub warnings: Vec<String>,
    /// Rounds the interprocedural analysis needed.
    pub rounds: usize,
    /// Stable digest of the full analysis result.
    pub analysis_digest: u64,
    /// Incremental-reuse counters (engine in incremental mode, program
    /// cache missed).
    pub incremental: Option<IncrementalReport>,
    /// Number of parallelizing transformations applied (when requested).
    pub transforms: Option<usize>,
    /// Static verifier findings on the parallelized output (when requested).
    pub violations: Vec<String>,
    /// The parallelized program text (only when requested).
    pub parallel_source: Option<String>,
    /// Sequential execution metrics (when requested).
    pub sequential_execution: Option<ExecutionReport>,
    /// Parallelized execution metrics (when requested and parallelized).
    pub parallel_execution: Option<ExecutionReport>,
}

/// Escape a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_str_list(items: &[String]) -> String {
    let rendered: Vec<String> = items
        .iter()
        .map(|s| format!("\"{}\"", json_escape(s)))
        .collect();
    format!("[{}]", rendered.join(","))
}

impl ExecutionReport {
    fn to_json(&self) -> String {
        format!(
            "{{\"work\":{},\"span\":{},\"parallelism\":{:.4},\"allocated_nodes\":{}}}",
            self.work, self.span, self.parallelism, self.allocated_nodes
        )
    }
}

impl ProgramReport {
    /// Render the report as a single JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"fingerprint\":\"{:016x}\",\"cache_hit\":{},\
             \"structure\":\"{}\",\"preserves_tree\":{},\"warnings\":{},\"rounds\":{},\
             \"analysis_digest\":\"{:016x}\"",
            json_escape(&self.name),
            self.fingerprint,
            self.cache_hit,
            json_escape(&self.structure),
            self.preserves_tree,
            json_str_list(&self.warnings),
            self.rounds,
            self.analysis_digest,
        );
        if let Some(incremental) = self.incremental {
            let _ = write!(out, ",\"incremental\":{}", incremental.to_json());
        }
        if let Some(transforms) = self.transforms {
            let _ = write!(out, ",\"transforms\":{transforms}");
        }
        let _ = write!(out, ",\"violations\":{}", json_str_list(&self.violations));
        if let Some(src) = &self.parallel_source {
            let _ = write!(out, ",\"parallel_source\":\"{}\"", json_escape(src));
        }
        if let Some(seq) = &self.sequential_execution {
            let _ = write!(out, ",\"sequential_execution\":{}", seq.to_json());
        }
        if let Some(par) = &self.parallel_execution {
            let _ = write!(out, ",\"parallel_execution\":{}", par.to_json());
        }
        out.push('}');
        out
    }

    /// Render the report as a short human-readable block.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} [{}{:016x}]",
            self.name,
            if self.cache_hit { "cached " } else { "" },
            self.fingerprint
        );
        let _ = writeln!(
            out,
            "  structure: {} ({} warnings), {} rounds",
            self.structure,
            self.warnings.len(),
            self.rounds
        );
        if let Some(inc) = self.incremental {
            let _ = writeln!(
                out,
                "  incremental: {} procedures reused / {} stale, {} walks replayed / {} performed",
                inc.procedures_reused, inc.procedures_stale, inc.walks_reused, inc.walks_performed
            );
        }
        if let Some(transforms) = self.transforms {
            let _ = writeln!(out, "  parallelized: {transforms} transforms");
        }
        if !self.violations.is_empty() {
            let _ = writeln!(out, "  VIOLATIONS: {}", self.violations.join("; "));
        }
        if let Some(seq) = &self.sequential_execution {
            let _ = writeln!(
                out,
                "  sequential: work={} span={} parallelism={:.2}",
                seq.work, seq.span, seq.parallelism
            );
        }
        if let Some(par) = &self.parallel_execution {
            let _ = writeln!(
                out,
                "  parallel:   work={} span={} parallelism={:.2}",
                par.work, par.span, par.parallelism
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_covers_controls_and_quotes() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn report_renders_valid_enough_json() {
        let report = ProgramReport {
            name: "t".into(),
            fingerprint: 0xabcd,
            cache_hit: true,
            structure: "TREE".into(),
            preserves_tree: true,
            warnings: vec!["w \"quoted\"".into()],
            rounds: 2,
            analysis_digest: 1,
            incremental: Some(IncrementalReport {
                procedures_reused: 3,
                procedures_stale: 1,
                walks_performed: 2,
                walks_reused: 6,
            }),
            transforms: Some(3),
            violations: vec![],
            parallel_source: None,
            sequential_execution: Some(ExecutionReport {
                work: 10,
                span: 5,
                parallelism: 2.0,
                allocated_nodes: 7,
            }),
            parallel_execution: None,
        };
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"cache_hit\":true"));
        assert!(json.contains("\"incremental\":{\"procedures_reused\":3"));
        assert!(json.contains("\"walks_reused\":6"));
        assert!(json.contains("\"transforms\":3"));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"work\":10"));
    }
}
