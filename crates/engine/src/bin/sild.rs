//! `sild` — the SIL analysis daemon.
//!
//! Hosts a [`ShardedService`]: N memoizing engines behind one socket, all
//! views over **one shared, lock-striped summary store**, with requests
//! routed to shards by stable program fingerprint.  Routing concentrates
//! each program's traffic on one shard; the shared store lets a cone
//! analyzed on one shard warm-hit every other.  Clients (`silp --connect`,
//! or anything that can write a line of JSON) speak the newline-delimited
//! protocol of `sil_engine::service::proto`; one thread serves each
//! connection.
//!
//! ```text
//! sild --listen unix:/tmp/sild.sock               4 shards on a unix socket
//! sild --listen tcp:127.0.0.1:7777 --shards 8     8 shards on TCP
//! silp --connect unix:/tmp/sild.sock --workload all
//! ```
//!
//! The daemon runs until it receives a `shutdown` request (`silp
//! --shutdown` or a raw `{"protocol_version":2,"type":"shutdown"}` line).

use sil_engine::cli::unknown_flag_error;
use sil_engine::service::{Addr, Server, ShardedService};
use sil_engine::{EngineConfig, EvictionPolicy};
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "\
usage: sild --listen <addr> [options]

options:
  --listen <addr>   address to serve: unix:<path> or tcp:<host:port>
                    (tcp:host:0 picks a free port and prints it)
  --shards <n>      number of engine shards (default: 4); requests are
                    routed by program fingerprint, shard = fingerprint % n
  --lfu             evict least-frequently-used cache entries
                    (default: adaptive, which switches LRU/LFU from the
                    store's own live counters)
  --lru             evict least-recently-used cache entries
  --stripes <n>     lock stripes per store namespace (default: 8)
  --no-incremental  disable incremental re-analysis inside the shards
  --no-parallel     analyze sequentially inside each shard
  --quiet           no startup/shutdown log lines on stderr
  -h, --help        this message
";

const KNOWN_FLAGS: &[&str] = &[
    "--listen",
    "--shards",
    "--lfu",
    "--lru",
    "--stripes",
    "--no-incremental",
    "--no-parallel",
    "--quiet",
    "--help",
];

struct Cli {
    listen: Addr,
    shards: usize,
    config: EngineConfig,
    quiet: bool,
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut listen: Option<Addr> = None;
    let mut shards = 4usize;
    let mut config = EngineConfig::default();
    let mut quiet = false;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--listen" => {
                i += 1;
                let raw = args.get(i).ok_or("--listen needs an address")?;
                listen = Some(Addr::parse(raw)?);
            }
            "--shards" => {
                i += 1;
                shards = args
                    .get(i)
                    .ok_or("--shards needs a value")?
                    .parse()
                    .map_err(|_| "--shards must be an integer".to_string())?;
                if shards == 0 {
                    return Err("--shards must be at least 1".to_string());
                }
            }
            "--lfu" => config = config.with_eviction(EvictionPolicy::Lfu),
            "--lru" => config = config.with_eviction(EvictionPolicy::Lru),
            "--stripes" => {
                i += 1;
                let stripes: usize = args
                    .get(i)
                    .ok_or("--stripes needs a value")?
                    .parse()
                    .map_err(|_| "--stripes must be an integer".to_string())?;
                if stripes == 0 {
                    return Err("--stripes must be at least 1".to_string());
                }
                config = config.with_store_stripes(stripes);
            }
            "--no-incremental" => config = config.with_incremental(false),
            "--no-parallel" => config = config.with_parallel(false),
            "--quiet" => quiet = true,
            "-h" | "--help" => return Err(String::new()),
            flag => return Err(unknown_flag_error(flag, KNOWN_FLAGS)),
        }
        i += 1;
    }
    let listen = listen.ok_or("--listen is required")?;
    Ok(Cli {
        listen,
        shards,
        config,
        quiet,
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(message) => {
            if message.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("sild: {message}");
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let service = Arc::new(ShardedService::new(cli.shards, cli.config));
    let server = match Server::bind(&cli.listen, service) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("sild: cannot listen on {}: {e}", cli.listen);
            return ExitCode::FAILURE;
        }
    };
    if !cli.quiet {
        eprintln!(
            "sild: listening on {} with {} shard{}",
            server.addr(),
            cli.shards,
            if cli.shards == 1 { "" } else { "s" }
        );
    }
    server.run();
    if !cli.quiet {
        eprintln!("sild: shut down");
    }
    ExitCode::SUCCESS
}
