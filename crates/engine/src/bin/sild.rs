//! `sild` — the SIL analysis daemon.
//!
//! Hosts a [`ShardedService`]: N memoizing engines behind one socket, all
//! views over **one shared, lock-striped summary store**, with requests
//! routed to shards by stable program fingerprint.  Routing concentrates
//! each program's traffic on one shard; the shared store lets a cone
//! analyzed on one shard warm-hit every other.  Clients (`silp --connect`,
//! or anything that can write a line of JSON) speak the newline-delimited
//! protocol of `sil_engine::service::proto`; one thread serves each
//! connection.
//!
//! ```text
//! sild --listen unix:/tmp/sild.sock               4 shards on a unix socket
//! sild --listen tcp:127.0.0.1:7777 --shards 8     8 shards on TCP
//! sild --listen unix:/tmp/sild.sock --async       silio event loop (Linux)
//! silp --connect unix:/tmp/sild.sock --workload all
//! ```
//!
//! With `--async` (Linux) the daemon serves every connection from one
//! silio/epoll event loop plus a small worker pool instead of one thread
//! per connection — same protocol, byte-identical responses, but 10k
//! mostly-idle clients cost file descriptors rather than stacks.
//!
//! The daemon runs until it receives a `shutdown` request (`silp
//! --shutdown` or a raw `{"protocol_version":2,"type":"shutdown"}` line).

use sil_engine::cli::unknown_flag_error;
use sil_engine::service::{Addr, Server, ServerKind, ServerOptions, ShardedService};
use sil_engine::{DurableConfig, EngineConfig, EvictionPolicy, PeerConfig, PeerRing};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "\
usage: sild --listen <addr> [options]

options:
  --listen <addr>     address to serve: unix:<path> or tcp:<host:port>
                      (tcp:host:0 picks a free port and prints it)
  --shards <n>        number of engine shards (default: 4); requests are
                      routed by program fingerprint, shard = fingerprint % n
  --async             serve with the event-driven (epoll) server instead of
                      one thread per connection (Linux; falls back to the
                      threaded server elsewhere)
  --workers <n>       worker threads of the async server's pool
                      (default: sized from the machine's parallelism)
  --lfu               evict least-frequently-used cache entries
                      (default: adaptive, which switches LRU/LFU from the
                      store's own live counters)
  --lru               evict least-recently-used cache entries
  --adapt-window <n>     lookups per adaptive-eviction evaluation window
                         (default: 256)
  --adapt-threshold <n>  ghost hits within one window that switch the
                         adaptive policy (default: 8)
  --stripes <n>       lock stripes per store namespace (default: 8)
  --data-dir <path>   persist the summary store in append-only segment
                      files under <path>; a restarted daemon recovers the
                      intact prefix of every segment and serves warm
                      (visible as store.disk.* in `silp --metrics`)
  --fsync             sync every flush batch to stable storage (with
                      --data-dir; slower, survives power loss)
  --no-durable        run memory-only (contradicts --data-dir: passing both
                      is an error, not a silent override)
  --peer <addr>       a peer daemon (unix:<path> or tcp:<host:port>) to
                      gossip digest inventories with and fetch cache misses
                      from before recomputing; repeatable
  --gossip-interval <ms>  how often to exchange inventories with peers
                      (default: 2000; needs --peer)
  --no-peer-serve     refuse to answer peer_inventory/peer_fetch requests
                      (incompatible with --peer: a daemon that fetches from
                      the cluster must serve it back)
  --slow-us <n>       capture the span tree of any request whose service
                      call outlasts <n> microseconds into a dedicated slow
                      buffer that survives trace-ring churn (visible in
                      `silp --trace-dump`, counted as trace.slow_captures)
  --recorder-interval <ms>  flight-recorder sampling interval (default:
                      1000 — one metrics snapshot per second into a bounded
                      ring served via `silp --top`)
  --recorder-capacity <n>   samples the flight recorder retains
                      (default: 256)
  --no-incremental    disable incremental re-analysis inside the shards
  --no-parallel       analyze sequentially inside each shard
  --quiet             no startup/shutdown log lines on stderr
  -h, --help          this message
";

const KNOWN_FLAGS: &[&str] = &[
    "--listen",
    "--shards",
    "--async",
    "--workers",
    "--lfu",
    "--lru",
    "--adapt-window",
    "--adapt-threshold",
    "--stripes",
    "--data-dir",
    "--fsync",
    "--no-durable",
    "--peer",
    "--gossip-interval",
    "--no-peer-serve",
    "--slow-us",
    "--recorder-interval",
    "--recorder-capacity",
    "--no-incremental",
    "--no-parallel",
    "--quiet",
    "--help",
];

struct Cli {
    listen: Addr,
    shards: usize,
    config: EngineConfig,
    server: ServerOptions,
    quiet: bool,
    peers: Vec<Addr>,
    gossip_interval: Option<u64>,
    no_peer_serve: bool,
}

/// Parse the next argument as `flag`'s value: a strictly positive integer.
fn positive_count(args: &[String], i: &mut usize, flag: &str) -> Result<u64, String> {
    *i += 1;
    let value: u64 = args
        .get(*i)
        .ok_or_else(|| format!("{flag} needs a value"))?
        .parse()
        .map_err(|_| format!("{flag} must be an integer"))?;
    if value == 0 {
        return Err(format!("{flag} must be at least 1"));
    }
    Ok(value)
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut listen: Option<Addr> = None;
    let mut shards = 4usize;
    let mut config = EngineConfig::default();
    let mut server = ServerOptions::default();
    let mut quiet = false;
    let mut data_dir: Option<String> = None;
    let mut fsync = false;
    let mut no_durable = false;
    let mut peers: Vec<Addr> = Vec::new();
    let mut gossip_interval: Option<u64> = None;
    let mut no_peer_serve = false;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--listen" => {
                i += 1;
                let raw = args.get(i).ok_or("--listen needs an address")?;
                listen = Some(Addr::parse(raw)?);
            }
            flag @ "--shards" => shards = positive_count(args, &mut i, flag)? as usize,
            "--async" => server.kind = ServerKind::Async,
            flag @ "--workers" => server.workers = positive_count(args, &mut i, flag)? as usize,
            "--lfu" => config = config.with_eviction(EvictionPolicy::Lfu),
            "--lru" => config = config.with_eviction(EvictionPolicy::Lru),
            flag @ "--adapt-window" => {
                config = config.with_adapt_window(positive_count(args, &mut i, flag)?);
            }
            flag @ "--adapt-threshold" => {
                config = config.with_adapt_threshold(positive_count(args, &mut i, flag)?);
            }
            flag @ "--stripes" => {
                config = config.with_store_stripes(positive_count(args, &mut i, flag)? as usize);
            }
            "--data-dir" => {
                i += 1;
                data_dir = Some(args.get(i).ok_or("--data-dir needs a path")?.clone());
            }
            "--fsync" => fsync = true,
            "--no-durable" => no_durable = true,
            "--peer" => {
                i += 1;
                let raw = args.get(i).ok_or("--peer needs an address")?;
                peers.push(Addr::parse(raw)?);
            }
            flag @ "--gossip-interval" => {
                gossip_interval = Some(positive_count(args, &mut i, flag)?);
            }
            "--no-peer-serve" => no_peer_serve = true,
            flag @ "--slow-us" => server.slow_us = positive_count(args, &mut i, flag)?,
            flag @ "--recorder-interval" => {
                server.recorder_interval_ms = positive_count(args, &mut i, flag)?;
            }
            flag @ "--recorder-capacity" => {
                server.recorder_capacity = positive_count(args, &mut i, flag)? as usize;
            }
            "--no-incremental" => config = config.with_incremental(false),
            "--no-parallel" => config = config.with_parallel(false),
            "--quiet" => quiet = true,
            "-h" | "--help" => return Err(String::new()),
            flag => return Err(unknown_flag_error(flag, KNOWN_FLAGS)),
        }
        i += 1;
    }
    let listen = listen.ok_or("--listen is required")?;
    if fsync && data_dir.is_none() {
        return Err("--fsync needs --data-dir".to_string());
    }
    // Contradictory flags are errors, not silent overrides: a daemon asked
    // to persist *and* to run memory-only is a misconfiguration someone
    // should hear about before it loses their warm cache.
    if no_durable && data_dir.is_some() {
        return Err("--data-dir and --no-durable contradict each other: \
             drop one (remove --no-durable to persist, or --data-dir to run memory-only)"
            .to_string());
    }
    if no_peer_serve && !peers.is_empty() {
        return Err(
            "--peer and --no-peer-serve contradict each other: a daemon that \
             fetches from the cluster must answer the cluster's fetches too"
                .to_string(),
        );
    }
    if gossip_interval.is_some() && peers.is_empty() {
        return Err("--gossip-interval needs at least one --peer".to_string());
    }
    if let Some(dir) = data_dir {
        config = config.with_durable(Some(DurableConfig::at(dir).with_fsync(fsync)));
    }
    Ok(Cli {
        listen,
        shards,
        config,
        server,
        quiet,
        peers,
        gossip_interval,
        no_peer_serve,
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(message) => {
            if message.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("sild: {message}");
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let service =
        Arc::new(ShardedService::new(cli.shards, cli.config).with_peer_serve(!cli.no_peer_serve));
    let ring = if cli.peers.is_empty() {
        None
    } else {
        let mut peer_config = PeerConfig::new(cli.peers.clone());
        if let Some(ms) = cli.gossip_interval {
            peer_config = peer_config.with_gossip_interval(Duration::from_millis(ms));
        }
        let ring = PeerRing::spawn(peer_config, service.tracer().clone());
        service.store().attach_peers(ring.clone());
        Some(ring)
    };
    let server = match Server::bind_with(&cli.listen, service, cli.server) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("sild: cannot listen on {}: {e}", cli.listen);
            return ExitCode::FAILURE;
        }
    };
    if !cli.quiet {
        if cli.server.kind == ServerKind::Async && server.kind() != ServerKind::Async {
            eprintln!("sild: --async is not supported on this platform; serving threaded");
        }
        eprintln!(
            "sild: listening on {} with {} shard{} ({} server){}",
            server.addr(),
            cli.shards,
            if cli.shards == 1 { "" } else { "s" },
            server.kind().name(),
            match cli.peers.len() {
                0 => String::new(),
                n => format!(", peered with {n} daemon{}", if n == 1 { "" } else { "s" }),
            },
        );
    }
    server.run();
    if let Some(ring) = ring {
        ring.shutdown();
    }
    if !cli.quiet {
        eprintln!("sild: shut down");
    }
    ExitCode::SUCCESS
}
