//! `silp` — the SIL pipeline CLI, backed by the memoizing engine.
//!
//! ```text
//! silp file.sil ...                 analyze + parallelize + verify files
//! silp --workload tree_sum          run a built-in workload
//! silp --workload all --size 5      every workload at size 5
//! silp --execute ...                also execute (work/span report)
//! silp --json ...                   machine-readable JSON array output
//! silp --emit-parallel ...          include the parallelized source
//! silp --no-parallelize ...         analysis only
//! silp --lfu                        use LFU instead of LRU eviction
//! silp --stats ...                  print engine cache statistics at exit
//! ```
//!
//! Exit status is non-zero when any input fails the frontend or the static
//! verifier reports violations.

use sil_engine::{Engine, EngineConfig, EvictionPolicy, ProcessOptions};
use sil_workloads::Workload;
use std::process::ExitCode;

const USAGE: &str = "\
usage: silp [options] [file.sil ...]

options:
  --workload <name|all>  analyze a built-in workload (repeatable)
  --size <n>             size parameter for workloads (default: each
                         workload's test size)
  --execute              execute on the interpreter, report work/span
  --no-parallelize       stop after the analysis
  --no-verify            skip static verification of the parallel output
  --emit-parallel        include the parallelized source in the report
  --incremental          process inputs sequentially in the given order and
                         re-analyze edited variants incrementally: procedures
                         whose call-graph cone is unchanged reuse retained
                         walks, and the report carries stale/reused counts
  --json                 emit one JSON array instead of text
  --lfu                  evict least-frequently-used cache entries
  --stats                print engine cache statistics
  -h, --help             this message
";

struct Cli {
    inputs: Vec<(String, String)>, // (label, source)
    options: ProcessOptions,
    json: bool,
    stats: bool,
    incremental: bool,
    eviction: EvictionPolicy,
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        inputs: Vec::new(),
        options: ProcessOptions::default(),
        json: false,
        stats: false,
        incremental: false,
        eviction: EvictionPolicy::Lru,
    };
    let mut workloads: Vec<String> = Vec::new();
    let mut size: Option<u32> = None;
    let mut files: Vec<String> = Vec::new();

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workload" => {
                i += 1;
                workloads.push(args.get(i).ok_or("--workload needs a value")?.clone());
            }
            "--size" => {
                i += 1;
                size = Some(
                    args.get(i)
                        .ok_or("--size needs a value")?
                        .parse()
                        .map_err(|_| "--size must be an integer".to_string())?,
                );
            }
            "--execute" => cli.options.execute = true,
            "--no-parallelize" => cli.options.parallelize = false,
            "--no-verify" => cli.options.verify = false,
            "--emit-parallel" => cli.options.emit_parallel_source = true,
            "--incremental" => cli.incremental = true,
            "--json" => cli.json = true,
            "--lfu" => cli.eviction = EvictionPolicy::Lfu,
            "--stats" => cli.stats = true,
            "-h" | "--help" => return Err(String::new()),
            flag if flag.starts_with('-') => {
                return Err(format!("unknown option {flag}"));
            }
            file => files.push(file.to_string()),
        }
        i += 1;
    }

    for name in workloads {
        let selected: Vec<Workload> = if name == "all" {
            Workload::ALL.to_vec()
        } else {
            vec![*Workload::ALL
                .iter()
                .find(|w| w.name() == name)
                .ok_or_else(|| {
                    let known: Vec<&str> = Workload::ALL.iter().map(|w| w.name()).collect();
                    format!("unknown workload {name}; known: {}", known.join(", "))
                })?]
        };
        for w in selected {
            let n = size.unwrap_or_else(|| w.test_size());
            cli.inputs
                .push((format!("workload:{}@{n}", w.name()), w.source(n)));
        }
    }
    for file in files {
        let src = std::fs::read_to_string(&file).map_err(|e| format!("cannot read {file}: {e}"))?;
        cli.inputs.push((file, src));
    }
    if cli.inputs.is_empty() {
        return Err("no inputs: pass SIL files or --workload".to_string());
    }
    Ok(cli)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(message) => {
            if message.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("silp: {message}");
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let engine = Engine::new(EngineConfig {
        eviction: cli.eviction,
        incremental: cli.incremental,
        ..EngineConfig::default()
    });
    let sources: Vec<&str> = cli.inputs.iter().map(|(_, src)| src.as_str()).collect();
    // Incremental mode processes the inputs in their given order on one
    // thread: an input is an edit of an earlier one, and must find the
    // earlier cones already retained.
    let results = if cli.incremental {
        sources
            .iter()
            .map(|src| engine.process(src, &cli.options))
            .collect()
    } else {
        engine.process_batch(&sources, &cli.options)
    };

    let mut failed = false;
    let mut json_items: Vec<String> = Vec::new();
    for ((label, _), result) in cli.inputs.iter().zip(results) {
        match result {
            Ok(report) => {
                if !report.violations.is_empty() {
                    failed = true;
                }
                if cli.json {
                    json_items.push(report.to_json());
                } else {
                    print!("{}", report.to_text());
                }
            }
            Err(error) => {
                failed = true;
                if cli.json {
                    json_items.push(format!(
                        "{{\"name\":\"{}\",\"error\":\"{}\"}}",
                        sil_engine::report::json_escape(label),
                        sil_engine::report::json_escape(&error.to_string())
                    ));
                } else {
                    eprintln!("{label}: {error}");
                }
            }
        }
    }
    if cli.json {
        println!("[{}]", json_items.join(","));
    }
    if cli.stats {
        let stats = engine.stats();
        eprintln!(
            "engine: programs {} entries ({} hits / {} misses, {} evictions); \
             summaries {} entries ({} hits / {} misses, {} evictions)",
            stats.program_entries,
            stats.programs.hits,
            stats.programs.misses,
            stats.programs.evictions,
            stats.summary_entries,
            stats.summaries.hits,
            stats.summaries.misses,
            stats.summaries.evictions,
        );
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
