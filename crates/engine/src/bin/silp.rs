//! `silp` — the SIL pipeline CLI, a thin client of the [`Service`] trait.
//!
//! ```text
//! silp file.sil ...                 analyze + parallelize + verify files
//! silp --workload tree_sum          run a built-in workload
//! silp --workload all --size 5      every workload at size 5
//! silp --execute ...                also execute (work/span report)
//! silp --json ...                   machine-readable JSON array output
//! silp --emit-parallel ...          include the parallelized source
//! silp --no-parallelize ...         analysis only
//! silp --lfu / --lru                pin the eviction policy (default: adaptive)
//! silp --stats ...                  print per-namespace/per-shard cache
//!                                   statistics at exit
//! silp --metrics ...                print the service's metrics registry
//!                                   (counters, gauges, latency quantiles)
//! silp --trace-dump ...             dump retained trace spans as ndjson
//! silp --connect unix:/tmp/s.sock   send requests to a running sild daemon
//! silp --connect ... --shutdown     ask the daemon to exit
//! ```
//!
//! The same typed requests flow through the same rendering code whether the
//! service is in-process (`--in-process`, the default) or a `sild` daemon
//! (`--connect`), so for a given input set the two modes print identical
//! bytes — the only observable difference is whose caches get warm.
//!
//! Exit status is non-zero when any input fails the frontend, the static
//! verifier reports violations, or the transport drops.

use sil_engine::cli::unknown_flag_error;
use sil_engine::service::{
    Json, LocalService, RemoteService, Request, Response, Service, TraceSpan,
};
use sil_engine::{
    EngineConfig, EngineStats, EvictionPolicy, Namespace, ProcessOptions, ProgramReport,
    ServerStats, ServiceError, StoreStats,
};
use sil_workloads::Workload;
use silobs::MetricsSnapshot;
use std::fmt::Write as _;
use std::process::ExitCode;

const USAGE: &str = "\
usage: silp [options] [file.sil ...]

options:
  --workload <name|all>  analyze a built-in workload (repeatable)
  --size <n>             size parameter for workloads (default: each
                         workload's test size)
  --execute              execute on the interpreter, report work/span
  --no-parallelize       stop after the analysis
  --no-verify            skip static verification of the parallel output
  --emit-parallel        include the parallelized source in the report
  --incremental          process inputs sequentially in the given order and
                         re-analyze edited variants incrementally: procedures
                         whose call-graph cone is unchanged reuse retained
                         walks, and the report carries stale/reused counts
  --json                 emit one JSON array instead of text
  --lfu                  evict least-frequently-used cache entries
                         (in-process engine only; default: adaptive)
  --lru                  evict least-recently-used cache entries
                         (in-process engine only; default: adaptive)
  --stats                print service cache statistics: per-namespace and
                         per-shard hit rates, eviction counts, and the
                         adaptive policy's current choice (a text table on
                         stderr; one stats JSON line with --json)
  --metrics              print the service's metrics registry — counters,
                         gauges, and latency-histogram quantiles across the
                         engine/store/server namespaces (a text table on
                         stderr; one metrics JSON line with --json); works
                         with no inputs, e.g. to inspect a live daemon
  --trace-dump           dump the service's retained trace spans as ndjson
                         on stdout (one span object per line); works with
                         no inputs
  --trace <req>          render the span tree of request id <req> from the
                         service's trace dump — indented children, per-hop
                         durations, and the recording daemon's origin per
                         span (spans a peer daemon served come back tagged
                         with its address); works with no inputs
  --top                  live console of the daemon's flight recorder:
                         req/s, serve p99, cache hit rate, and queue depth
                         computed as deltas between recorder samples;
                         needs --connect (only a daemon hosts a recorder)
  --refresh <ms>         with --top: redraw interval (default: 1000)
  --iterations <n>       with --top: stop after <n> frames (default: run
                         until interrupted)
  --in-process           serve requests from an in-process engine (default)
  --connect <addr>       send requests to a sild daemon at unix:<path> or
                         tcp:<host:port> instead
  --timeout <ms>         with --connect: fail fast if the daemon does not
                         accept or answer within this many milliseconds
                         (default: wait forever)
  --shutdown             with --connect: ask the daemon to exit
  -h, --help             this message
";

const KNOWN_FLAGS: &[&str] = &[
    "--workload",
    "--size",
    "--execute",
    "--no-parallelize",
    "--no-verify",
    "--emit-parallel",
    "--incremental",
    "--json",
    "--lfu",
    "--lru",
    "--stats",
    "--metrics",
    "--trace-dump",
    "--trace",
    "--top",
    "--refresh",
    "--iterations",
    "--in-process",
    "--connect",
    "--timeout",
    "--shutdown",
    "--help",
];

struct Cli {
    inputs: Vec<(String, String)>, // (label, source)
    options: ProcessOptions,
    json: bool,
    stats: bool,
    metrics: bool,
    trace_dump: bool,
    trace: Option<u64>,
    top: bool,
    refresh: std::time::Duration,
    iterations: u64,
    incremental: bool,
    eviction: EvictionPolicy,
    connect: Option<String>,
    timeout: Option<std::time::Duration>,
    shutdown: bool,
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        inputs: Vec::new(),
        options: ProcessOptions::default(),
        json: false,
        stats: false,
        metrics: false,
        trace_dump: false,
        trace: None,
        top: false,
        refresh: std::time::Duration::from_millis(1000),
        iterations: 0,
        incremental: false,
        eviction: EvictionPolicy::default(),
        connect: None,
        timeout: None,
        shutdown: false,
    };
    let mut workloads: Vec<String> = Vec::new();
    let mut size: Option<u32> = None;
    let mut files: Vec<String> = Vec::new();

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workload" => {
                i += 1;
                workloads.push(args.get(i).ok_or("--workload needs a value")?.clone());
            }
            "--size" => {
                i += 1;
                size = Some(
                    args.get(i)
                        .ok_or("--size needs a value")?
                        .parse()
                        .map_err(|_| "--size must be an integer".to_string())?,
                );
            }
            "--execute" => cli.options.execute = true,
            "--no-parallelize" => cli.options.parallelize = false,
            "--no-verify" => cli.options.verify = false,
            "--emit-parallel" => cli.options.emit_parallel_source = true,
            "--incremental" => cli.incremental = true,
            "--json" => cli.json = true,
            "--lfu" => cli.eviction = EvictionPolicy::Lfu,
            "--lru" => cli.eviction = EvictionPolicy::Lru,
            "--stats" => cli.stats = true,
            "--metrics" => cli.metrics = true,
            "--trace-dump" => cli.trace_dump = true,
            "--trace" => {
                i += 1;
                cli.trace = Some(
                    args.get(i)
                        .ok_or("--trace needs a request id (see --trace-dump)")?
                        .parse()
                        .map_err(|_| "--trace must be a request id (an integer)".to_string())?,
                );
            }
            "--top" => cli.top = true,
            "--refresh" => {
                i += 1;
                let ms: u64 = args
                    .get(i)
                    .ok_or("--refresh needs a value in milliseconds")?
                    .parse()
                    .map_err(|_| "--refresh must be an integer (milliseconds)".to_string())?;
                if ms == 0 {
                    return Err("--refresh must be at least 1 millisecond".to_string());
                }
                cli.refresh = std::time::Duration::from_millis(ms);
            }
            "--iterations" => {
                i += 1;
                cli.iterations = args
                    .get(i)
                    .ok_or("--iterations needs a value")?
                    .parse()
                    .map_err(|_| "--iterations must be an integer".to_string())?;
            }
            "--in-process" => cli.connect = None,
            "--connect" => {
                i += 1;
                cli.connect = Some(args.get(i).ok_or("--connect needs an address")?.clone());
            }
            "--timeout" => {
                i += 1;
                let ms: u64 = args
                    .get(i)
                    .ok_or("--timeout needs a value in milliseconds")?
                    .parse()
                    .map_err(|_| "--timeout must be an integer (milliseconds)".to_string())?;
                if ms == 0 {
                    return Err("--timeout must be at least 1 millisecond".to_string());
                }
                cli.timeout = Some(std::time::Duration::from_millis(ms));
            }
            "--shutdown" => cli.shutdown = true,
            "-h" | "--help" => return Err(String::new()),
            flag if flag.starts_with('-') => {
                return Err(unknown_flag_error(flag, KNOWN_FLAGS));
            }
            file => files.push(file.to_string()),
        }
        i += 1;
    }

    if cli.shutdown && cli.connect.is_none() {
        return Err("--shutdown only makes sense with --connect".to_string());
    }
    if cli.timeout.is_some() && cli.connect.is_none() {
        return Err("--timeout only makes sense with --connect".to_string());
    }
    if cli.top && cli.connect.is_none() {
        return Err("--top needs --connect: only a daemon hosts a flight recorder".to_string());
    }

    for name in workloads {
        let selected: Vec<Workload> = if name == "all" {
            Workload::ALL.to_vec()
        } else {
            vec![*Workload::ALL
                .iter()
                .find(|w| w.name() == name)
                .ok_or_else(|| {
                    let known: Vec<&str> = Workload::ALL.iter().map(|w| w.name()).collect();
                    format!("unknown workload {name}; known: {}", known.join(", "))
                })?]
        };
        for w in selected {
            let n = size.unwrap_or_else(|| w.test_size());
            cli.inputs
                .push((format!("workload:{}@{n}", w.name()), w.source(n)));
        }
    }
    for file in files {
        let src = std::fs::read_to_string(&file).map_err(|e| format!("cannot read {file}: {e}"))?;
        cli.inputs.push((file, src));
    }
    // Pure observability runs (inspect a live daemon's counters or spans)
    // need no inputs, just like --shutdown.
    if cli.inputs.is_empty()
        && !cli.shutdown
        && !cli.metrics
        && !cli.trace_dump
        && cli.trace.is_none()
        && !cli.top
    {
        return Err("no inputs: pass SIL files or --workload".to_string());
    }
    Ok(cli)
}

/// Build the service the requests go to: a daemon connection or an
/// in-process engine.
fn open_service(cli: &Cli) -> Result<Box<dyn Service>, String> {
    match &cli.connect {
        Some(addr) => {
            let remote = RemoteService::connect_with_timeout(addr, cli.timeout)
                .map_err(|e| format!("cannot reach daemon: {e}"))?;
            remote
                .handshake()
                .map_err(|e| format!("handshake with {addr} failed: {e}"))?;
            Ok(Box::new(remote))
        }
        None => {
            let config = EngineConfig::default()
                .with_eviction(cli.eviction)
                .with_incremental(cli.incremental);
            Ok(Box::new(LocalService::new(config)))
        }
    }
}

fn percent(hits: u64, misses: u64) -> String {
    // Zero lookups are a 0.0% hit rate, not a placeholder: every row
    // renders the same 5-character numeric column, so table consumers
    // never special-case cold namespaces.
    let total = hits + misses;
    let rate = if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64 * 100.0
    };
    format!("{rate:>4.1}%")
}

/// The `--stats` text table: the serving daemon's connection counters
/// (when a daemon answered), the shared store's per-namespace counters
/// (with each adaptive policy's current choice), and every shard's view
/// hit rates.
fn render_stats(
    shards: &[EngineStats],
    store: &StoreStats,
    server: Option<&ServerStats>,
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "service: {} shard{} over one shared store",
        shards.len(),
        if shards.len() == 1 { "" } else { "s" },
    );
    if let Some(server) = server {
        let _ = writeln!(
            out,
            "  server: {} — {} connection{} accepted, {} active, up {}s",
            server.kind,
            server.accepted,
            if server.accepted == 1 { "" } else { "s" },
            server.active,
            server.uptime_ticks,
        );
    }
    let _ = writeln!(
        out,
        "  {:<10} {:>11} {:>9} {:>7} {:>7} {:>6}  policy",
        "namespace", "entries/cap", "hit rate", "hits", "misses", "evict"
    );
    for namespace in Namespace::ALL {
        let ns = store.namespace(namespace);
        let policy = match ns.policy {
            EvictionPolicy::Adaptive => format!("adaptive({})", ns.current.name()),
            fixed => fixed.name().to_string(),
        };
        let _ = writeln!(
            out,
            "  {:<10} {:>11} {:>9} {:>7} {:>7} {:>6}  {policy}",
            namespace.name(),
            format!("{}/{}", ns.entries, ns.capacity),
            percent(ns.totals.hits, ns.totals.misses),
            ns.totals.hits,
            ns.totals.misses,
            ns.totals.evictions,
        );
    }
    if let Some(disk) = &store.disk {
        let _ = writeln!(
            out,
            "  {:<10} {:>11} {:>9} {:>7} {:>7} {:>6}  durable ({} seg, {} B live)",
            "disk",
            format!("{}/-", disk.entries),
            percent(disk.hits, disk.misses),
            disk.hits,
            disk.misses,
            disk.evictions,
            disk.segments,
            disk.live_bytes,
        );
    }
    if let Some(peer) = &store.peer {
        // entries/cap shows the advertised remote keys (no local bound);
        // the evict column carries breaker trips, the nearest analogue of
        // "entries this tier gave up on".
        let _ = writeln!(
            out,
            "  {:<10} {:>11} {:>9} {:>7} {:>7} {:>6}  peering ({} peer{}, {} quarantined, {} served)",
            "peer",
            format!("{}/-", peer.known_keys),
            percent(peer.hits, peer.misses),
            peer.hits,
            peer.misses,
            peer.quarantines,
            peer.peers,
            if peer.peers == 1 { "" } else { "s" },
            peer.quarantined,
            peer.serves,
        );
    }
    let _ = writeln!(out, "  shard views (hit rate per namespace):");
    for (index, shard) in shards.iter().enumerate() {
        let _ = writeln!(
            out,
            "  {:<10} programs {} ({}/{})  summaries {} ({}/{})  walks {} ({}/{})",
            format!("shard {index}"),
            percent(shard.programs.hits, shard.programs.misses),
            shard.programs.hits,
            shard.programs.hits + shard.programs.misses,
            percent(shard.summaries.hits, shard.summaries.misses),
            shard.summaries.hits,
            shard.summaries.hits + shard.summaries.misses,
            percent(shard.walks.hits, shard.walks.misses),
            shard.walks.hits,
            shard.walks.hits + shard.walks.misses,
        );
    }
    out
}

/// The `--metrics` text table: every counter and gauge in the service's
/// registry (engine, store, and — through a daemon — server namespaces),
/// then one quantile row per latency histogram.
fn render_metrics(metrics: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "metrics: {} counters, {} gauges, {} histograms",
        metrics.counters.len(),
        metrics.gauges.len(),
        metrics.histograms.len(),
    );
    // One globally name-sorted listing of counters and gauges (not "all
    // counters, then all gauges" in whatever order the service spliced
    // them): a daemon and an in-process run then render byte-identical
    // tables for identical registries, and diffs between runs line up.
    let mut scalars: Vec<(&str, String)> = metrics
        .counters
        .iter()
        .map(|(name, value)| (name.as_str(), value.to_string()))
        .chain(
            metrics
                .gauges
                .iter()
                .map(|(name, value)| (name.as_str(), value.to_string())),
        )
        .collect();
    scalars.sort_unstable_by(|a, b| a.0.cmp(b.0));
    for (name, value) in scalars {
        let _ = writeln!(out, "  {name:<34} {value:>12}");
    }
    if !metrics.histograms.is_empty() {
        let _ = writeln!(
            out,
            "  {:<34} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
            "histogram (µs)", "count", "p50", "p90", "p99", "p999", "max"
        );
        let mut histograms: Vec<_> = metrics.histograms.iter().collect();
        histograms.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        for (name, h) in histograms {
            let _ = writeln!(
                out,
                "  {:<34} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
                name, h.count, h.p50, h.p90, h.p99, h.p999, h.max
            );
        }
    }
    out
}

/// The `--trace <req>` tree: every span of the trace that request belongs
/// to (cross-daemon spans included — the daemon adopted them off peer
/// responses), plus the request's untraced framing spans, indented by
/// parentage with per-hop durations and origins.
fn render_trace_tree(spans: &[TraceSpan], request: u64) -> Option<String> {
    // The request's trace id, from any of its traced spans.  0 means the
    // request only has flat (untraced) spans — still renderable.
    let trace = spans
        .iter()
        .find(|s| s.request == request && s.trace != 0)
        .map(|s| s.trace)
        .unwrap_or(0);
    let mut selected: Vec<&TraceSpan> = spans
        .iter()
        .filter(|s| (trace != 0 && s.trace == trace) || (s.trace == 0 && s.request == request))
        .collect();
    if selected.is_empty() {
        return None;
    }
    selected.sort_by_key(|s| (s.start_us, s.request));
    let ids: std::collections::HashSet<u64> = selected
        .iter()
        .filter(|s| s.span_id != 0)
        .map(|s| s.span_id)
        .collect();
    let base = selected.iter().map(|s| s.start_us).min().unwrap_or(0);
    let mut out = String::new();
    if trace != 0 {
        let _ = writeln!(
            out,
            "trace {trace:x} — request {request}, {} span{}:",
            selected.len(),
            if selected.len() == 1 { "" } else { "s" },
        );
    } else {
        let _ = writeln!(
            out,
            "request {request} (untraced), {} span{}:",
            selected.len(),
            if selected.len() == 1 { "" } else { "s" },
        );
    }
    // Roots are spans whose parent is unknown here (0, or recorded on a
    // daemon whose ring has since dropped it); children render indented
    // under their parent, each level sorted by start tick.
    fn render(
        out: &mut String,
        selected: &[&TraceSpan],
        span: &TraceSpan,
        base: u64,
        depth: usize,
    ) {
        let _ = writeln!(
            out,
            "  {:indent$}{:<width$} {:>8}µs  @{:>7}µs  {}",
            "",
            span.span,
            span.duration_us(),
            span.start_us.saturating_sub(base),
            span.origin,
            indent = depth * 2,
            width = 24usize.saturating_sub(depth * 2),
        );
        if span.span_id == 0 {
            return;
        }
        for child in selected.iter().filter(|s| s.parent == span.span_id) {
            render(out, selected, child, base, depth + 1);
        }
    }
    for root in selected
        .iter()
        .filter(|s| s.parent == 0 || !ids.contains(&s.parent))
    {
        render(&mut out, &selected, root, base, 0);
    }
    Some(out)
}

/// One `--top` frame from the flight recorder's two newest samples:
/// counter deltas become rates over the sampling window, the newest
/// sample's histograms are already per-interval (the recorder diffs
/// buckets at capture time), gauges read as-is.
fn render_top(addr: &str, samples: &[silobs::HistorySample]) -> String {
    let mut out = String::new();
    let newest = &samples[samples.len() - 1];
    let previous = &samples[samples.len() - 2];
    let window_us = newest.at_us.saturating_sub(previous.at_us).max(1);
    let secs = window_us as f64 / 1_000_000.0;
    let delta = |name: &str| -> u64 {
        newest
            .metrics
            .counter(name)
            .unwrap_or(0)
            .saturating_sub(previous.metrics.counter(name).unwrap_or(0))
    };
    let _ = writeln!(
        out,
        "sild top — {addr} — {} sample{}, window {:.2}s",
        samples.len(),
        if samples.len() == 1 { "" } else { "s" },
        secs,
    );
    let _ = writeln!(
        out,
        "  req/s        {:>10.1}",
        delta("server.requests") as f64 / secs,
    );
    match newest.metrics.histogram("server.serve_us") {
        Some(serve) if serve.count > 0 => {
            let _ = writeln!(
                out,
                "  serve p99    {:>8}µs   (p50 {}µs, max {}µs, {} served)",
                serve.p99, serve.p50, serve.max, serve.count,
            );
        }
        _ => {
            let _ = writeln!(out, "  serve p99            -   (idle this window)");
        }
    }
    let hits = delta("store.summaries.hits");
    let lookups = hits + delta("store.summaries.misses");
    if lookups > 0 {
        let _ = writeln!(
            out,
            "  hit rate     {:>9.1}%   (summaries {hits}/{lookups} this window)",
            hits as f64 / lookups as f64 * 100.0,
        );
    } else {
        let _ = writeln!(out, "  hit rate             -   (no lookups this window)");
    }
    let gauge = |name: &str| newest.metrics.gauge(name).unwrap_or(0);
    let _ = writeln!(
        out,
        "  queue depth  {:>10}   active conns {}   pending lines {}",
        gauge("server.queue_depth"),
        gauge("server.active"),
        gauge("server.pending_lines"),
    );
    out
}

/// The `--top` loop: poll `metrics_history`, render a frame per refresh
/// interval, clear the screen between frames only on a real terminal.
fn run_top(service: &dyn Service, addr: &str, cli: &Cli) -> ExitCode {
    use std::io::IsTerminal;
    let clear = std::io::stdout().is_terminal();
    let mut frames = 0u64;
    // Two samples bound every rate; a young daemon gets a bounded grace
    // period to record them before we call the recorder dead.
    let mut waits = 0u32;
    loop {
        let samples = match service.service_metrics_history() {
            Ok(samples) => samples,
            Err(error) => {
                eprintln!("silp: metrics history failed: {error}");
                return ExitCode::FAILURE;
            }
        };
        if samples.len() < 2 {
            waits += 1;
            if waits > 200 {
                eprintln!(
                    "silp: flight recorder produced {} sample(s); was the daemon \
                     started with a very long --recorder-interval?",
                    samples.len()
                );
                return ExitCode::FAILURE;
            }
            std::thread::sleep(cli.refresh.min(std::time::Duration::from_millis(100)));
            continue;
        }
        if clear {
            print!("\x1b[2J\x1b[H");
        }
        print!("{}", render_top(addr, &samples));
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        frames += 1;
        if cli.iterations != 0 && frames >= cli.iterations {
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(cli.refresh);
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(message) => {
            if message.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("silp: {message}");
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let service = match open_service(&cli) {
        Ok(service) => service,
        Err(message) => {
            eprintln!("silp: {message}");
            return ExitCode::FAILURE;
        }
    };

    if cli.shutdown {
        return match service.call(Request::shutdown()) {
            Response::ShuttingDown { .. } => {
                eprintln!("silp: daemon is shutting down");
                ExitCode::SUCCESS
            }
            Response::Error { error, .. } => {
                eprintln!("silp: shutdown failed: {error}");
                ExitCode::FAILURE
            }
            other => {
                eprintln!("silp: unexpected shutdown response: {}", other.encode());
                ExitCode::FAILURE
            }
        };
    }

    if cli.incremental && cli.connect.is_some() {
        eprintln!(
            "silp: note: over --connect, incremental reuse depends on the daemon's shard \
             layout — an edit routes by its own fingerprint and may land on a shard that \
             never saw the base program's cones (run sild with --shards 1 for guaranteed \
             reuse)"
        );
    }

    let sources: Vec<String> = cli.inputs.iter().map(|(_, src)| src.clone()).collect();
    // Incremental mode processes the inputs in their given order, one
    // request at a time: an input is an edit of an earlier one, and must
    // find the earlier cones already retained.  Everything else travels as
    // one batch request.
    let results: Vec<Result<ProgramReport, ServiceError>> = if cli.inputs.is_empty() {
        // A pure observability run (--metrics/--trace-dump, no inputs)
        // sends no analysis traffic at all.
        Vec::new()
    } else if cli.incremental {
        sources
            .iter()
            .map(|src| service.process_source(src, &cli.options))
            .collect()
    } else {
        match service.process_sources(sources, &cli.options) {
            Ok(items) => items,
            Err(error) => {
                eprintln!("silp: batch failed: {error}");
                return ExitCode::FAILURE;
            }
        }
    };

    let mut failed = false;
    let mut json_items: Vec<String> = Vec::new();
    for ((label, _), result) in cli.inputs.iter().zip(results) {
        match result {
            Ok(mut report) => {
                // Incremental-reuse counters depend on which service
                // handled the request and how warm it was; only surface
                // them when the run explicitly asked for incremental
                // processing, so in-process and daemon output stay
                // comparable byte for byte.
                if !cli.incremental {
                    report.incremental = None;
                }
                if !report.violations.is_empty() {
                    failed = true;
                }
                if cli.json {
                    json_items.push(report.to_json());
                } else {
                    print!("{}", report.to_text());
                }
            }
            Err(error) => {
                failed = true;
                if cli.json {
                    json_items.push(
                        Json::obj(vec![
                            ("name", Json::Str(label.clone())),
                            ("error", Json::Str(error.to_string())),
                        ])
                        .encode(),
                    );
                } else {
                    eprintln!("{label}: {error}");
                }
            }
        }
    }
    if cli.json {
        println!("[{}]", json_items.join(","));
    }
    if cli.stats {
        if cli.json {
            // The raw wire form of the Stats response: shard views, their
            // aggregate, and the store's per-namespace counters.
            match service.call(Request::stats()) {
                stats @ Response::Stats { .. } => eprintln!("{}", stats.encode()),
                Response::Error { error, .. } => eprintln!("silp: stats failed: {error}"),
                other => eprintln!("silp: unexpected stats response: {}", other.encode()),
            }
        } else {
            match service.service_stats() {
                Ok((shards, _total, store, server)) => {
                    eprint!("{}", render_stats(&shards, &store, server.as_ref()))
                }
                Err(error) => eprintln!("silp: stats failed: {error}"),
            }
        }
    }
    if cli.metrics {
        if cli.json {
            // The raw wire form of the Metrics response: the registry with
            // histogram quantile summaries, `server.*` spliced in by a
            // daemon.
            match service.call(Request::metrics()) {
                metrics @ Response::Metrics { .. } => eprintln!("{}", metrics.encode()),
                Response::Error { error, .. } => eprintln!("silp: metrics failed: {error}"),
                other => eprintln!("silp: unexpected metrics response: {}", other.encode()),
            }
        } else {
            match service.service_metrics() {
                Ok(metrics) => eprint!("{}", render_metrics(&metrics)),
                Err(error) => eprintln!("silp: metrics failed: {error}"),
            }
        }
    }
    if cli.trace_dump {
        match service.service_trace() {
            Ok(spans) => print!("{}", TraceSpan::to_ndjson(&spans)),
            Err(error) => {
                eprintln!("silp: trace dump failed: {error}");
                failed = true;
            }
        }
    }
    if let Some(request) = cli.trace {
        match service.service_trace() {
            Ok(spans) => match render_trace_tree(&spans, request) {
                Some(tree) => print!("{tree}"),
                None => {
                    eprintln!(
                        "silp: no spans retained for request {request} \
                         (--trace-dump lists the ids still in the ring)"
                    );
                    failed = true;
                }
            },
            Err(error) => {
                eprintln!("silp: trace fetch failed: {error}");
                failed = true;
            }
        }
    }
    if cli.top && !failed {
        let addr = cli.connect.as_deref().unwrap_or("in-process");
        return run_top(service.as_ref(), addr, &cli);
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
