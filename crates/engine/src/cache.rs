//! Content-addressed, capacity-bounded memoization caches with pluggable
//! eviction.
//!
//! Keys are stable 64-bit fingerprints (see `sil_lang::hash`); values are
//! cheaply cloneable (the engine stores `Arc`s).  Two eviction policies are
//! provided:
//!
//! * **LRU** — evict the entry touched longest ago.  Favors recency; the
//!   right default for session-like traffic where a client re-submits the
//!   programs it is actively editing.
//! * **LFU** — evict the entry with the fewest lifetime hits (ties broken by
//!   recency).  Favors long-term popularity; under heavily skewed request
//!   distributions (a few hot programs dominating a long tail, as in the NDN
//!   caching study referenced by PAPERS.md) it keeps the hot set resident
//!   even when bursts of one-off programs sweep through.
//!
//! The cache is a single mutex-guarded map: lookups and insertions are
//! O(1), eviction is an O(n) scan.  Capacities here are small (hundreds of
//! analysis results), and the guarded section never runs an analysis — the
//! engine computes outside the lock and only then inserts — so a finer
//! sharded design would buy nothing measurable.

use sil_analysis::WalkRecord;
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};

/// Which entry to sacrifice when the cache is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EvictionPolicy {
    /// Least recently used.
    #[default]
    Lru,
    /// Least frequently used (ties broken by recency).
    Lfu,
}

/// Hit/miss/eviction counters of one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub insertions: u64,
    pub evictions: u64,
}

impl CacheStats {
    /// Field-wise accumulate (aggregating the same cache across shards).
    pub fn absorb(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.insertions += other.insertions;
        self.evictions += other.evictions;
    }

    /// Fraction of lookups served from the cache (0 when never queried).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug)]
struct Entry<V> {
    value: V,
    /// Logical timestamp of the last hit or insertion.
    last_used: u64,
    /// Number of lifetime hits.
    uses: u64,
}

#[derive(Debug)]
struct Inner<V> {
    entries: HashMap<u64, Entry<V>>,
    stats: CacheStats,
    /// Logical clock, bumped on every touch.
    tick: u64,
}

/// A content-addressed memoization cache.
#[derive(Debug)]
pub struct ContentCache<V> {
    inner: Mutex<Inner<V>>,
    capacity: usize,
    policy: EvictionPolicy,
}

impl<V: Clone> ContentCache<V> {
    /// A cache holding at most `capacity` entries (`capacity == 0` disables
    /// caching entirely: every lookup misses, every insert is dropped).
    pub fn new(capacity: usize, policy: EvictionPolicy) -> ContentCache<V> {
        ContentCache {
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                stats: CacheStats::default(),
                tick: 0,
            }),
            capacity,
            policy,
        }
    }

    /// Look up a fingerprint, recording a hit or miss.
    pub fn get(&self, key: u64) -> Option<V> {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.entries.get_mut(&key) {
            Some(entry) => {
                entry.last_used = tick;
                entry.uses += 1;
                let value = entry.value.clone();
                inner.stats.hits += 1;
                Some(value)
            }
            None => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// Look up a fingerprint without recording a hit or miss and without
    /// touching recency/frequency — for internal merge reads that must not
    /// skew the reuse accounting.
    pub fn peek(&self, key: u64) -> Option<V> {
        let inner = self.inner.lock().unwrap();
        inner.entries.get(&key).map(|e| e.value.clone())
    }

    /// Insert a value, evicting per policy if the cache is full.  Inserting
    /// an existing key refreshes its value without eviction.
    pub fn insert(&self, key: u64, value: V) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(existing) = inner.entries.get_mut(&key) {
            existing.value = value;
            existing.last_used = tick;
            return;
        }
        if inner.entries.len() >= self.capacity {
            let victim = match self.policy {
                EvictionPolicy::Lru => inner
                    .entries
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| *k),
                EvictionPolicy::Lfu => inner
                    .entries
                    .iter()
                    .min_by_key(|(_, e)| (e.uses, e.last_used))
                    .map(|(k, _)| *k),
            };
            if let Some(victim) = victim {
                inner.entries.remove(&victim);
                inner.stats.evictions += 1;
            }
        }
        inner.entries.insert(
            key,
            Entry {
                value,
                last_used: tick,
                uses: 0,
            },
        );
        inner.stats.insertions += 1;
    }

    /// Current number of resident entries.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn policy(&self) -> EvictionPolicy {
        self.policy
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().unwrap().stats
    }

    /// Drop every entry (the counters survive).
    pub fn clear(&self) {
        self.inner.lock().unwrap().entries.clear();
    }
}

/// How many walk records one cone may retain.  A record exists per (round ×
/// distinct entry context) of a procedure, so a handful of edits produce a
/// handful of records; the cap only guards against a pathological client
/// cycling a cone through endlessly distinct contexts.
const RECORDS_PER_CONE: usize = 64;

/// Retained interprocedural body walks, keyed by *cone fingerprint* (see
/// [`sil_analysis::CallGraph::cone_fingerprints`]).
///
/// When an edited variant of a cached program arrives, every procedure whose
/// cone fingerprint is unchanged finds its retained [`WalkRecord`]s here;
/// [`sil_analysis::analyze_program_incremental`] replays them and only the
/// stale cone of the edit pays for re-analysis.  A `get` hit/miss is the
/// engine's per-procedure "reused"/"stale" classification, so the underlying
/// cache stats double as incremental-reuse counters.
#[derive(Debug)]
pub struct ProcedureCache {
    inner: ContentCache<Arc<Vec<Arc<WalkRecord>>>>,
    /// Serializes the read-merge-write cycle of [`ProcedureCache::insert_merged`]:
    /// concurrent batch analyses sharing a cone must not drop each other's
    /// freshly recorded walks.
    merge_lock: Mutex<()>,
}

impl ProcedureCache {
    pub fn new(capacity: usize, policy: EvictionPolicy) -> ProcedureCache {
        ProcedureCache {
            inner: ContentCache::new(capacity, policy),
            merge_lock: Mutex::new(()),
        }
    }

    /// The retained walks of one cone, recording a hit or miss.
    pub fn get(&self, cone: u64) -> Option<Arc<Vec<Arc<WalkRecord>>>> {
        self.inner.get(cone)
    }

    /// Merge freshly recorded walks into a cone's entry: fresh records win,
    /// surviving older records (other entry contexts of the same cone) ride
    /// along up to [`RECORDS_PER_CONE`].
    pub fn insert_merged(&self, cone: u64, fresh: Vec<Arc<WalkRecord>>) {
        let _guard = self.merge_lock.lock().unwrap();
        let mut merged = fresh;
        let mut seen: HashSet<u64> = merged.iter().map(|r| r.key).collect();
        if let Some(existing) = self.inner.peek(cone) {
            for record in existing.iter() {
                if merged.len() >= RECORDS_PER_CONE {
                    break;
                }
                if seen.insert(record.key) {
                    merged.push(record.clone());
                }
            }
        }
        merged.truncate(RECORDS_PER_CONE);
        self.inner.insert(cone, Arc::new(merged));
    }

    /// Number of resident cones.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    pub fn stats(&self) -> CacheStats {
        self.inner.stats()
    }

    pub fn clear(&self) {
        self.inner.clear()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peek_does_not_touch_stats_or_recency() {
        let cache = ContentCache::new(2, EvictionPolicy::Lru);
        cache.insert(1, 1);
        cache.insert(2, 2);
        assert_eq!(cache.peek(1), Some(1));
        assert_eq!(cache.stats().hits, 0);
        // peek(1) must not have refreshed 1: it is still the LRU victim.
        cache.insert(3, 3);
        assert_eq!(cache.peek(1), None, "1 was evicted despite the peek");
        assert_eq!(cache.peek(2), Some(2));
    }

    #[test]
    fn hit_miss_accounting() {
        let cache = ContentCache::new(4, EvictionPolicy::Lru);
        assert_eq!(cache.get(1), None);
        cache.insert(1, "one");
        assert_eq!(cache.get(1), Some("one"));
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.insertions, 1);
        assert_eq!(stats.evictions, 0);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn lru_evicts_the_stalest_entry() {
        let cache = ContentCache::new(2, EvictionPolicy::Lru);
        cache.insert(1, 1);
        cache.insert(2, 2);
        cache.get(1); // 2 is now the least recently used
        cache.insert(3, 3);
        assert_eq!(cache.get(2), None, "2 should have been evicted");
        assert_eq!(cache.get(1), Some(1));
        assert_eq!(cache.get(3), Some(3));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn lfu_keeps_the_popular_entry() {
        let cache = ContentCache::new(2, EvictionPolicy::Lfu);
        cache.insert(1, 1);
        cache.insert(2, 2);
        cache.get(1);
        cache.get(1);
        cache.get(2); // 1 has 2 uses, 2 has 1 use
        cache.insert(3, 3);
        assert_eq!(cache.get(2), None, "least-frequently-used entry evicted");
        assert_eq!(cache.get(1), Some(1));
    }

    #[test]
    fn capacity_bound_holds() {
        let cache = ContentCache::new(3, EvictionPolicy::Lru);
        for key in 0..100u64 {
            cache.insert(key, key);
        }
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.stats().evictions, 97);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = ContentCache::new(0, EvictionPolicy::Lru);
        cache.insert(1, 1);
        assert_eq!(cache.get(1), None);
        assert_eq!(cache.len(), 0);
    }

    /// The ROADMAP eviction-policy experiment, in miniature: under a
    /// Zipf-skewed request stream (a few hot programs, a long tail) a small
    /// LFU cache keeps the hot set resident and beats LRU, which lets tail
    /// bursts sweep hot entries out.
    #[test]
    fn lfu_beats_lru_under_zipf_skew() {
        use rand::distributions::{Distribution, Zipf};
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let simulate = |policy: EvictionPolicy| {
            let cache = ContentCache::new(16, policy);
            let zipf = Zipf::new(256, 1.2).unwrap();
            let mut rng = StdRng::seed_from_u64(42);
            for _ in 0..20_000 {
                let key = zipf.sample(&mut rng);
                if cache.get(key).is_none() {
                    cache.insert(key, key);
                }
            }
            cache.stats().hit_rate()
        };

        let lru = simulate(EvictionPolicy::Lru);
        let lfu = simulate(EvictionPolicy::Lfu);
        assert!(
            lfu > lru,
            "LFU must win under skew: lfu={lfu:.3} lru={lru:.3}"
        );
        assert!(lfu > 0.5, "the hot set must mostly hit: {lfu:.3}");
    }

    #[test]
    fn reinsert_refreshes_without_eviction() {
        let cache = ContentCache::new(2, EvictionPolicy::Lru);
        cache.insert(1, 1);
        cache.insert(2, 2);
        cache.insert(1, 10);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(1), Some(10));
        assert_eq!(cache.stats().evictions, 0);
    }
}
