//! The transport-agnostic service layer.
//!
//! Everything the engine can do is expressible as one typed
//! [`Request`] → [`Response`] exchange (see [`proto`]); the [`Service`]
//! trait abstracts *where* that exchange happens:
//!
//! * [`LocalService`] — in process, wrapping an [`Engine`];
//! * [`ShardedService`] — in process, routing across N engines by stable
//!   program fingerprint; the engines are views over **one shared
//!   [`SummaryStore`]**, so a given program's traffic concentrates on one
//!   shard while its cached summaries are visible to every shard (the
//!   `sild` daemon hosts one of these);
//! * [`remote::RemoteService`] — over a Unix or TCP socket speaking
//!   newline-delimited JSON to a `sild` daemon.
//!
//! `silp` is written against `dyn Service`, which is what makes
//! `--in-process` and `--connect` byte-identical: the same requests flow
//! through the same rendering code, only the transport differs.

pub mod json;
pub mod proto;
pub mod remote;
pub mod server;

#[cfg(target_os = "linux")]
mod aserver;
mod threaded;

pub use json::{Json, JsonError};
pub use proto::{
    AnalyzeSummary, ErrorKind, PeerNamespace, Request, Response, ServerStats, ServiceError,
    TraceHeader, TraceSpan, PROTOCOL_VERSION,
};
pub use remote::RemoteService;
pub use server::{Server, ServerHandle, ServerKind, ServerOptions};

use crate::report::{ProcessOptions, ProgramReport};
use crate::store::{StoreStats, SummaryStore};
use crate::{
    export_analysis_metrics, export_store_metrics, AnalyzedProgram, Engine, EngineConfig,
    EngineStats,
};
use sil_lang::{frontend, program_fingerprint};
use silobs::{HistorySample, MetricsSnapshot, RawMetrics, TraceContext, Tracer};
use std::path::PathBuf;
use std::sync::Arc;

/// Anything that answers protocol requests.
///
/// `call` is the entire API; the provided methods are typed conveniences
/// that unwrap the expected response variant.
pub trait Service {
    fn call(&self, request: Request) -> Response;

    /// [`Request::Process`] one source, expecting a report.
    fn process_source(
        &self,
        source: &str,
        options: &ProcessOptions,
    ) -> Result<ProgramReport, ServiceError> {
        match self.call(Request::process(source, options.clone())) {
            Response::Report { report, .. } => Ok(report),
            Response::Error { error, .. } => Err(error),
            other => Err(unexpected("report", &other)),
        }
    }

    /// [`Request::Batch`] many sources, expecting per-input results in
    /// input order.
    fn process_sources(
        &self,
        sources: Vec<String>,
        options: &ProcessOptions,
    ) -> Result<Vec<Result<ProgramReport, ServiceError>>, ServiceError> {
        match self.call(Request::batch(sources, options.clone())) {
            Response::Batch { items, .. } => Ok(items),
            Response::Error { error, .. } => Err(error),
            other => Err(unexpected("batch", &other)),
        }
    }

    /// [`Request::Stats`], expecting per-shard view counters, their
    /// aggregate, the shared store's own per-namespace counters, and —
    /// when the service is a daemon — the server's connection counters.
    #[allow(clippy::type_complexity)]
    fn service_stats(
        &self,
    ) -> Result<
        (
            Vec<EngineStats>,
            EngineStats,
            StoreStats,
            Option<ServerStats>,
        ),
        ServiceError,
    > {
        match self.call(Request::stats()) {
            Response::Stats {
                shards,
                total,
                store,
                server,
                ..
            } => Ok((shards, total, *store, server)),
            Response::Error { error, .. } => Err(error),
            other => Err(unexpected("stats", &other)),
        }
    }

    /// [`Request::Metrics`], expecting the service's observability
    /// registry (plus the daemon's own `server.*` entries when remote).
    fn service_metrics(&self) -> Result<MetricsSnapshot, ServiceError> {
        match self.call(Request::metrics()) {
            Response::Metrics { metrics, .. } => Ok(metrics),
            Response::Error { error, .. } => Err(error),
            other => Err(unexpected("metrics", &other)),
        }
    }

    /// [`Request::TraceDump`], expecting the retained spans oldest-first.
    fn service_trace(&self) -> Result<Vec<TraceSpan>, ServiceError> {
        match self.call(Request::trace_dump()) {
            Response::Trace { spans, .. } => Ok(spans),
            Response::Error { error, .. } => Err(error),
            other => Err(unexpected("trace", &other)),
        }
    }

    /// [`Request::MetricsHistory`], expecting the flight recorder's
    /// retained samples oldest-first (only a daemon hosts a recorder).
    fn service_metrics_history(&self) -> Result<Vec<HistorySample>, ServiceError> {
        match self.call(Request::metrics_history()) {
            Response::MetricsHistory { samples, .. } => Ok(samples),
            Response::Error { error, .. } => Err(error),
            other => Err(unexpected("metrics_history", &other)),
        }
    }

    /// The tracer this service records spans into, when it exposes one.
    /// The daemon uses it to name the service's origin, to collect
    /// piggybacked span trees, and to capture slow requests.
    fn service_tracer(&self) -> Option<Arc<Tracer>> {
        None
    }

    /// A raw (full-bucket) read of this service's metrics registry, when
    /// it can provide one — what the daemon's flight recorder samples.
    fn raw_metrics(&self) -> Option<RawMetrics> {
        None
    }
}

fn unexpected(wanted: &str, got: &Response) -> ServiceError {
    ServiceError::malformed(format!(
        "expected a {wanted} response, got {:?}",
        got.to_json_value().get("type")
    ))
}

/// Answer one peer fetch from `store`'s own tiers (memory, then disk) as
/// the codec document the fetcher will re-verify.  Never recomputes and
/// never consults the store's *own* peer ring — a peer-originated request
/// stops here, so fetch chains cannot loop through the cluster.
fn peer_entry_body(store: &SummaryStore, namespace: PeerNamespace, key: u64) -> Option<Json> {
    let body = match namespace {
        PeerNamespace::Programs => store.peer_program_body(key),
        PeerNamespace::Summaries => store.peer_summary_body(key),
    }?;
    Json::parse(std::str::from_utf8(&body).ok()?).ok()
}

/// The stable routing key for one source text: the content fingerprint of
/// its normalized program.  Sources that fail the frontend hash their raw
/// bytes instead (FNV-1a) — still deterministic, so the same broken input
/// always reaches the same shard and its error is reproducible.
pub fn route_fingerprint(source: &str) -> u64 {
    match frontend(source) {
        Ok((program, _)) => program_fingerprint(&program),
        Err(_) => {
            let mut hash = 0xcbf2_9ce4_8422_2325u64;
            for byte in source.bytes() {
                hash ^= byte as u64;
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            hash
        }
    }
}

impl Engine {
    /// The unified entry point every other entry point now routes through:
    /// answer one protocol request in process.
    ///
    /// The named methods ([`Engine::analyze_source`], [`Engine::process`],
    /// [`Engine::process_batch`], …) remain as thin typed wrappers for
    /// callers that want Rust results instead of protocol values.
    pub fn serve(&self, request: Request) -> Response {
        if request.version() != PROTOCOL_VERSION {
            return Response::error(ServiceError::version_mismatch(request.version()));
        }
        // Spans recorded below need a request id to attribute to.  Under a
        // daemon the server minted one (and established the trace context)
        // when it framed the line; in-process callers get one minted here
        // — honoring a trace header if the caller attached one — so traces
        // look the same either way.
        match silobs::current_request() {
            Some(_) => self.dispatch(request),
            None => {
                let header = request.trace_header();
                let ctx = TraceContext {
                    request: self.tracer().mint(),
                    trace: header.map_or(0, |h| h.id),
                    parent: header.map_or(0, |h| h.parent),
                };
                silobs::with_context(ctx, || self.dispatch(request))
            }
        }
    }

    fn dispatch(&self, request: Request) -> Response {
        match request {
            Request::Analyze { source, .. } => match self.analyze_source_traced(&source) {
                Ok((entry, cache_hit)) => Response::analyzed(summarize(&entry, cache_hit)),
                Err(e) => Response::error((&e).into()),
            },
            Request::Process {
                source, options, ..
            } => match self.process(&source, &options) {
                Ok(report) => Response::report(report),
                Err(e) => Response::error((&e).into()),
            },
            Request::Batch {
                sources, options, ..
            } => Response::batch(
                self.process_batch(&sources, &options)
                    .into_iter()
                    .map(|r| r.map_err(|e| (&e).into()))
                    .collect(),
            ),
            Request::Stats { .. } => Response::stats(vec![self.stats()], self.store_stats()),
            Request::Metrics { .. } => {
                let mut raw = self.metrics_raw();
                export_store_metrics(&self.store_stats(), &mut raw);
                export_analysis_metrics(&mut raw);
                if let Some(ring) = self.store().peers() {
                    raw.push_histogram("store.peer.fetch_us", &ring.fetch_us());
                }
                self.tracer().export_metrics(&mut raw);
                Response::metrics(raw.summarize())
            }
            Request::TraceDump { .. } => Response::trace(
                self.tracer()
                    .snapshot()
                    .iter()
                    .map(TraceSpan::from)
                    .collect(),
            ),
            Request::ClearCaches { .. } => {
                self.clear_caches();
                Response::cleared()
            }
            Request::PeerInventory { .. } => {
                let (generation, programs, summaries) = self.store().peer_inventory();
                Response::peer_inventory(generation, programs, summaries)
            }
            Request::PeerFetch { namespace, key, .. } => Response::peer_entry(
                namespace,
                key,
                self.store().generation(),
                peer_entry_body(self.store(), namespace, key),
            ),
            // In process there is nothing to shut down; the daemon's server
            // loop intercepts this variant before it reaches an engine.
            Request::Shutdown { .. } => Response::shutting_down(),
            // Only a daemon hosts a flight recorder; the server loop
            // intercepts this variant before it reaches an engine.
            Request::MetricsHistory { .. } => Response::error(ServiceError::malformed(
                "metrics_history needs a daemon's flight recorder; connect to a sild instead",
            )),
        }
    }
}

fn summarize(entry: &AnalyzedProgram, cache_hit: bool) -> AnalyzeSummary {
    AnalyzeSummary {
        fingerprint: entry.fingerprint,
        cache_hit,
        structure: entry
            .analysis
            .procedure("main")
            .map(|p| p.exit.structure.to_string())
            .unwrap_or_else(|| "UNKNOWN".to_string()),
        preserves_tree: entry.analysis.preserves_tree(),
        warnings: entry
            .analysis
            .warnings
            .iter()
            .map(|w| w.to_string())
            .collect(),
        rounds: entry.analysis.rounds,
        analysis_digest: entry.analysis.digest(),
    }
}

impl Service for Engine {
    fn call(&self, request: Request) -> Response {
        self.serve(request)
    }

    fn service_tracer(&self) -> Option<Arc<Tracer>> {
        Some(self.tracer().clone())
    }
}

/// The in-process [`Service`]: one engine, zero transport.
#[derive(Debug, Default)]
pub struct LocalService {
    engine: Arc<Engine>,
}

impl LocalService {
    pub fn new(config: EngineConfig) -> LocalService {
        LocalService {
            engine: Arc::new(Engine::new(config)),
        }
    }

    /// Share an existing engine (its caches stay visible to other holders).
    pub fn over(engine: Arc<Engine>) -> LocalService {
        LocalService { engine }
    }

    pub fn engine(&self) -> &Engine {
        &self.engine
    }
}

impl Service for LocalService {
    fn call(&self, request: Request) -> Response {
        self.engine.serve(request)
    }

    fn service_tracer(&self) -> Option<Arc<Tracer>> {
        Some(self.engine.tracer().clone())
    }
}

/// N engines over **one shared [`SummaryStore`]** behind one [`Service`],
/// with requests routed by stable program fingerprint:
/// `shard = fingerprint % N`.
///
/// The routing rule concentrates each program's *traffic* on one engine
/// (so per-shard view counters are meaningful and batches parallelize one
/// thread per shard), while the shared store makes every shard's cache
/// *contents* visible to all the others: a cone analyzed on shard A is a
/// warm summary/walk hit for a different program homed to shard B.  The
/// store is internally lock-striped, so the shards do not serialize on a
/// global lock (the NDN caching literature frames this as cache placement:
/// one shared tier at full capacity beats private partitions of the same
/// total capacity, because shared content is stored once).
#[derive(Debug)]
pub struct ShardedService {
    store: Arc<SummaryStore>,
    shards: Vec<Arc<Engine>>,
    /// One tracer shared by every shard, so a dump interleaves spans from
    /// all of them in one tick-ordered stream.
    tracer: Arc<Tracer>,
    /// Answer `peer_inventory`/`peer_fetch` requests (`sild
    /// --no-peer-serve` turns this off; the refusal is indistinguishable
    /// from a pre-peering daemon, by design).
    peer_serve: bool,
}

impl ShardedService {
    /// `shard_count` engine views over one store built from `config`
    /// (`shard_count` is clamped to at least 1).
    pub fn new(shard_count: usize, config: EngineConfig) -> ShardedService {
        let store = SummaryStore::shared(config.store_config());
        ShardedService::over(shard_count, config, store)
    }

    /// `shard_count` engine views over an existing store.
    pub fn over(
        shard_count: usize,
        config: EngineConfig,
        store: Arc<SummaryStore>,
    ) -> ShardedService {
        // One span ring for every shard; a durable store contributes its
        // own tracer so `disk-recovery`/`disk-flush` spans are visible in
        // the same `TraceDump` as the request spans.
        let tracer = store
            .durable()
            .map(|tier| tier.tracer().clone())
            .unwrap_or_else(|| Arc::new(Tracer::default()));
        let shards = (0..shard_count.max(1))
            .map(|_| {
                Arc::new(
                    Engine::with_store(config.clone(), store.clone()).with_tracer(tracer.clone()),
                )
            })
            .collect();
        ShardedService {
            store,
            shards,
            tracer,
            peer_serve: true,
        }
    }

    /// Enable or disable answering peer inventory/fetch requests.
    pub fn with_peer_serve(mut self, peer_serve: bool) -> ShardedService {
        self.peer_serve = peer_serve;
        self
    }

    /// The tracer every shard records into.
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    /// The store every shard shares.
    pub fn store(&self) -> &Arc<SummaryStore> {
        &self.store
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Which shard a fingerprint routes to.
    pub fn shard_for(&self, fingerprint: u64) -> usize {
        (fingerprint % self.shards.len() as u64) as usize
    }

    /// Which shard a source text routes to.
    pub fn shard_for_source(&self, source: &str) -> usize {
        self.shard_for(route_fingerprint(source))
    }

    /// The engine behind one shard (tests and benches peek at per-shard
    /// caches through this).
    pub fn shard(&self, index: usize) -> &Engine {
        &self.shards[index]
    }

    /// Per-shard counter snapshots, in shard order.
    pub fn shard_stats(&self) -> Vec<EngineStats> {
        self.shards.iter().map(|engine| engine.stats()).collect()
    }

    fn batch(&self, sources: Vec<String>, options: &ProcessOptions) -> Response {
        if self.shards.len() == 1 {
            return self.shards[0].serve(Request::batch(sources, options.clone()));
        }
        // Partition by routing rule, keeping each source's original index
        // so the merged results come back in input order.
        let mut partitions: Vec<Vec<(usize, String)>> = vec![Vec::new(); self.shards.len()];
        {
            let _span = self.tracer.start("shard-dispatch");
            for (index, source) in sources.into_iter().enumerate() {
                let shard = self.shard_for_source(&source);
                partitions[shard].push((index, source));
            }
        }
        let mut merged: Vec<Option<Result<ProgramReport, ServiceError>>> = Vec::new();
        merged.resize_with(partitions.iter().map(Vec::len).sum(), || None);
        // Scoped worker threads have no thread-local context of their own;
        // forward the dispatching thread's so per-shard spans stay in the
        // request's trace tree.
        let ctx = silobs::current_context();
        std::thread::scope(|scope| {
            let mut pending = Vec::new();
            for (shard, partition) in self.shards.iter().zip(&partitions) {
                if partition.is_empty() {
                    continue;
                }
                pending.push(scope.spawn(move || {
                    silobs::with_context_opt(ctx, || {
                        let sub: Vec<&str> = partition.iter().map(|(_, s)| s.as_str()).collect();
                        shard
                            .process_batch(&sub, options)
                            .into_iter()
                            .zip(partition.iter().map(|(index, _)| *index))
                            .map(|(result, index)| (index, result.map_err(|e| (&e).into())))
                            .collect::<Vec<_>>()
                    })
                }));
            }
            for handle in pending {
                for (index, result) in handle.join().expect("shard batch thread panicked") {
                    merged[index] = Some(result);
                }
            }
        });
        Response::batch(
            merged
                .into_iter()
                .map(|slot| slot.expect("index gap"))
                .collect(),
        )
    }
}

impl Service for ShardedService {
    fn call(&self, request: Request) -> Response {
        if request.version() != PROTOCOL_VERSION {
            return Response::error(ServiceError::version_mismatch(request.version()));
        }
        match silobs::current_request() {
            Some(_) => self.dispatch(request),
            None => {
                let header = request.trace_header();
                let ctx = TraceContext {
                    request: self.tracer.mint(),
                    trace: header.map_or(0, |h| h.id),
                    parent: header.map_or(0, |h| h.parent),
                };
                silobs::with_context(ctx, || self.dispatch(request))
            }
        }
    }

    fn service_tracer(&self) -> Option<Arc<Tracer>> {
        Some(self.tracer.clone())
    }

    fn raw_metrics(&self) -> Option<RawMetrics> {
        Some(self.metrics_raw())
    }
}

impl ShardedService {
    fn dispatch(&self, request: Request) -> Response {
        match request {
            Request::Analyze { ref source, .. } | Request::Process { ref source, .. } => {
                // With one shard there is nothing to route; skip the
                // routing parse entirely.  With several, routing costs one
                // extra frontend pass per request (the shard's engine
                // re-parses) — small next to an analysis, and a warm hit
                // still skips the analysis itself.
                let shard = if self.shards.len() == 1 {
                    0
                } else {
                    let _span = self.tracer.start("shard-dispatch");
                    self.shard_for_source(source)
                };
                self.shards[shard].serve(request)
            }
            Request::Batch {
                sources, options, ..
            } => self.batch(sources, &options),
            Request::Stats { .. } => Response::stats(self.shard_stats(), self.store.stats()),
            Request::Metrics { .. } => Response::metrics(self.metrics_raw().summarize()),
            Request::TraceDump { .. } => {
                Response::trace(self.tracer.snapshot().iter().map(TraceSpan::from).collect())
            }
            // One clear empties the store every shard shares.
            Request::ClearCaches { .. } => {
                self.store.clear();
                Response::cleared()
            }
            // Peer requests answer from the shared store directly — no
            // shard routing, no recomputation, and no consulting *this*
            // daemon's ring, so a fetch from a peer can never fan back out
            // into the cluster.
            Request::PeerInventory { .. } if !self.peer_serve => {
                Response::error(ServiceError::malformed("peer serving is disabled"))
            }
            Request::PeerFetch { .. } if !self.peer_serve => {
                Response::error(ServiceError::malformed("peer serving is disabled"))
            }
            Request::PeerInventory { .. } => {
                let _span = self.tracer.start("peer-serve");
                let (generation, programs, summaries) = self.store.peer_inventory();
                Response::peer_inventory(generation, programs, summaries)
            }
            Request::PeerFetch { namespace, key, .. } => {
                let _span = self.tracer.start("peer-serve");
                Response::peer_entry(
                    namespace,
                    key,
                    self.store.generation(),
                    peer_entry_body(&self.store, namespace, key),
                )
            }
            Request::Shutdown { .. } => Response::shutting_down(),
            // Only a daemon hosts a flight recorder; its server loop
            // intercepts this variant before it reaches the service.
            Request::MetricsHistory { .. } => Response::error(ServiceError::malformed(
                "metrics_history needs a daemon's flight recorder; connect to a sild instead",
            )),
        }
    }

    /// The raw (full-bucket) registry read behind both the `Metrics`
    /// response and the daemon's flight recorder.  Shard registries merge
    /// at the raw level, so the combined histograms are exact; the shared
    /// store's counters fold in exactly once, not once per shard.
    pub fn metrics_raw(&self) -> silobs::RawMetrics {
        let mut raw = silobs::RawMetrics::new();
        for shard in &self.shards {
            raw.absorb(&shard.metrics_raw());
        }
        export_store_metrics(&self.store.stats(), &mut raw);
        export_analysis_metrics(&mut raw);
        if let Some(ring) = self.store.peers() {
            raw.push_histogram("store.peer.fetch_us", &ring.fetch_us());
        }
        self.tracer.export_metrics(&mut raw);
        raw
    }
}

/// A listening or dialing address: `unix:<path>` or `tcp:<host:port>`.
/// Bare strings are accepted too — anything containing `/` is a Unix
/// socket path, anything else is a TCP `host:port`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Addr {
    Unix(PathBuf),
    Tcp(String),
}

impl Addr {
    pub fn parse(text: &str) -> Result<Addr, String> {
        if let Some(path) = text.strip_prefix("unix:") {
            if path.is_empty() {
                return Err("empty unix socket path".to_string());
            }
            return Ok(Addr::Unix(PathBuf::from(path)));
        }
        if let Some(hostport) = text.strip_prefix("tcp:") {
            if !hostport.contains(':') {
                return Err(format!("tcp address {hostport:?} needs host:port"));
            }
            return Ok(Addr::Tcp(hostport.to_string()));
        }
        if text.is_empty() {
            return Err("empty address".to_string());
        }
        if text.contains('/') {
            Ok(Addr::Unix(PathBuf::from(text)))
        } else if text.contains(':') {
            Ok(Addr::Tcp(text.to_string()))
        } else {
            Err(format!(
                "cannot tell what {text:?} is: use unix:<path> or tcp:<host:port>"
            ))
        }
    }
}

impl std::fmt::Display for Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Addr::Unix(path) => write!(f, "unix:{}", path.display()),
            Addr::Tcp(hostport) => write!(f, "tcp:{hostport}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sil_workloads::Workload;

    #[test]
    fn local_service_answers_like_the_engine() {
        let service = LocalService::new(EngineConfig::default());
        let src = Workload::TreeSum.source(4);
        let report = service
            .process_source(&src, &ProcessOptions::default())
            .unwrap();
        let direct = service
            .engine()
            .process(&src, &ProcessOptions::default())
            .unwrap();
        assert_eq!(report.analysis_digest, direct.analysis_digest);
        assert_eq!(report.fingerprint, direct.fingerprint);
    }

    #[test]
    fn engine_serve_rejects_foreign_versions() {
        let engine = Engine::default();
        match engine.serve(Request::stats().with_version(1)) {
            Response::Error { error, version } => {
                assert_eq!(error.kind, ErrorKind::Protocol);
                assert_eq!(version, PROTOCOL_VERSION);
            }
            other => panic!("expected a version error, got {other:?}"),
        }
    }

    #[test]
    fn routing_is_stable_and_format_insensitive() {
        let src = Workload::TreeSum.source(4);
        let reformatted = format!("\n\n{}", src.replace("  ", "    "));
        assert_eq!(
            route_fingerprint(&src),
            route_fingerprint(&reformatted),
            "routing keys off the normalized program, not the text"
        );
        let broken = "program nope {";
        assert_eq!(route_fingerprint(broken), route_fingerprint(broken));
    }

    #[test]
    fn sharded_routing_pins_a_program_to_one_shard() {
        let service = ShardedService::new(4, EngineConfig::default());
        let src = Workload::AddAndReverse.source(4);
        let home = service.shard_for_source(&src);
        for _ in 0..3 {
            match service.call(Request::process(&src, ProcessOptions::default())) {
                Response::Report { .. } => {}
                other => panic!("{other:?}"),
            }
        }
        let stats = service.shard_stats();
        for (index, shard) in stats.iter().enumerate() {
            let touched = shard.programs.hits + shard.programs.misses;
            if index == home {
                assert_eq!(touched, 3, "home shard serves every repeat");
                assert_eq!(shard.programs.hits, 2, "repeats hit the warm cache");
            } else {
                assert_eq!(touched, 0, "shard {index} must stay cold");
            }
        }
    }

    #[test]
    fn sharded_batch_keeps_input_order_and_matches_single_engine() {
        let sources: Vec<String> = Workload::ALL
            .iter()
            .map(|w| w.source(w.test_size()))
            .collect();
        let sharded = ShardedService::new(3, EngineConfig::default());
        let single = LocalService::new(EngineConfig::default());
        let from_shards = sharded
            .process_sources(sources.clone(), &ProcessOptions::default())
            .unwrap();
        let from_single = single
            .process_sources(sources, &ProcessOptions::default())
            .unwrap();
        assert_eq!(from_shards.len(), from_single.len());
        for (a, b) in from_shards.iter().zip(&from_single) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(a.name, b.name, "order must match");
            assert_eq!(a.analysis_digest, b.analysis_digest);
        }
    }

    #[test]
    fn sharded_clear_caches_empties_the_shared_store() {
        let service = ShardedService::new(2, EngineConfig::default());
        for workload in [Workload::TreeSum, Workload::ListSum, Workload::Bisort] {
            let src = workload.source(3);
            service.call(Request::analyze(src));
        }
        assert_eq!(service.store().stats().programs.entries, 3);
        assert_eq!(service.call(Request::clear_caches()), Response::cleared());
        let stats = service.store().stats();
        assert_eq!(stats.programs.entries, 0);
        assert_eq!(stats.summaries.entries, 0);
        assert_eq!(stats.walks.entries, 0);
    }

    #[test]
    fn addr_parsing_covers_both_transports() {
        assert_eq!(
            Addr::parse("unix:/tmp/sild.sock").unwrap(),
            Addr::Unix(PathBuf::from("/tmp/sild.sock"))
        );
        assert_eq!(
            Addr::parse("/tmp/sild.sock").unwrap(),
            Addr::Unix(PathBuf::from("/tmp/sild.sock"))
        );
        assert_eq!(
            Addr::parse("tcp:127.0.0.1:7777").unwrap(),
            Addr::Tcp("127.0.0.1:7777".into())
        );
        assert_eq!(
            Addr::parse("localhost:7777").unwrap(),
            Addr::Tcp("localhost:7777".into())
        );
        assert!(Addr::parse("").is_err());
        assert!(Addr::parse("unix:").is_err());
        assert!(Addr::parse("tcp:missingport").is_err());
        assert!(Addr::parse("sild").is_err());
        assert_eq!(Addr::parse("unix:/a/b").unwrap().to_string(), "unix:/a/b");
    }
}
