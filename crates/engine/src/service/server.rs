//! The daemon side of the wire: bind a socket, accept connections, answer
//! one newline-delimited protocol message per line.
//!
//! Two serving strategies sit behind the one `serve_listener` entry
//! point, selected by [`ServerOptions::kind`]:
//!
//! * [`ServerKind::Threaded`] (`threaded.rs`) — one blocking thread
//!   per connection.  Simple, portable, and the default; its cost is one
//!   stack per client, idle or not.
//! * [`ServerKind::Async`] (`aserver.rs`, Linux only) — a single
//!   silio/epoll event loop multiplexing every connection, with a small
//!   worker pool executing requests and completing responses through an
//!   eventfd wakeup.  Thousands of mostly-idle clients cost file
//!   descriptors, not stacks.  On non-Linux builds the selection falls
//!   back to the threaded server (silio reports `SUPPORTED = false`).
//!
//! Both strategies answer byte-identical responses — they share the
//! request codec, the per-line dispatch (`handle_line`) and the response
//! writer — so `silp --connect` output cannot depend on which one serves.
//!
//! The `sild` binary is a thin shell around [`Server`]; tests spawn the
//! same server in-process on a temp socket, so both daemon paths are
//! exercised by `cargo test` without managing child processes.
//!
//! Shutdown is cooperative: a [`Request::Shutdown`] (or
//! [`ServerHandle::shutdown`]) sets a flag and wakes the accept/event
//! loop; the loop answers in-flight work, cleans up its socket file, and
//! exits.  A shutdown request speaking the wrong protocol version is
//! answered with the version error and does *not* stop the daemon.

#[cfg(target_os = "linux")]
use super::aserver;
use super::proto::{Request, Response, ServerStats, ServiceError, PROTOCOL_VERSION};
use super::{threaded, Addr, Service};
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Which serving strategy a [`Server`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServerKind {
    /// One blocking thread per connection (portable default).
    #[default]
    Threaded,
    /// One silio/epoll event loop plus a worker pool (Linux; falls back to
    /// [`ServerKind::Threaded`] elsewhere).
    Async,
}

impl ServerKind {
    /// Stable lowercase name (wire format and CLI output).
    pub fn name(self) -> &'static str {
        match self {
            ServerKind::Threaded => "threaded",
            ServerKind::Async => "async",
        }
    }
}

/// Construction knobs of a [`Server`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerOptions {
    /// Serving strategy (default: threaded).
    pub kind: ServerKind,
    /// Worker threads of the async event loop's pool; `0` sizes it from
    /// the machine's parallelism.  Ignored by the threaded server.
    pub workers: usize,
}

/// Live daemon-side counters, shared between the serving loop (which
/// updates them) and the per-line dispatch (which snapshots them into
/// `Stats` responses).
#[derive(Debug)]
pub(crate) struct ServerCounters {
    kind: ServerKind,
    accepted: AtomicU64,
    active: AtomicU64,
    started: Instant,
}

impl ServerCounters {
    fn new(kind: ServerKind) -> ServerCounters {
        ServerCounters {
            kind,
            accepted: AtomicU64::new(0),
            active: AtomicU64::new(0),
            started: Instant::now(),
        }
    }

    /// Record one accepted connection (now active).
    pub(crate) fn connection_opened(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
        self.active.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one connection closing.
    pub(crate) fn connection_closed(&self) {
        self.active.fetch_sub(1, Ordering::Relaxed);
    }

    /// The wire-facing snapshot attached to `Stats` responses.
    pub(crate) fn snapshot(&self) -> ServerStats {
        ServerStats {
            kind: self.kind.name().to_string(),
            accepted: self.accepted.load(Ordering::Relaxed),
            active: self.active.load(Ordering::Relaxed),
            uptime_ticks: self.started.elapsed().as_secs(),
        }
    }
}

pub(crate) enum Listener {
    Unix(UnixListener, PathBuf),
    Tcp(TcpListener),
}

/// A bound, not-yet-running protocol server.
pub struct Server {
    listener: Listener,
    service: Arc<dyn Service + Send + Sync>,
    shutdown: Arc<AtomicBool>,
    addr: Addr,
    options: ServerOptions,
    counters: Arc<ServerCounters>,
}

impl Server {
    /// Bind `addr` and wrap `service` with the default (threaded) serving
    /// strategy.  A stale Unix socket file at the path is removed first
    /// (the daemon owns its socket path); for `tcp:host:0` the resolved
    /// port is visible via [`Server::addr`].
    pub fn bind(addr: &Addr, service: Arc<dyn Service + Send + Sync>) -> std::io::Result<Server> {
        Server::bind_with(addr, service, ServerOptions::default())
    }

    /// [`Server::bind`] with an explicit serving strategy.  Asking for
    /// [`ServerKind::Async`] on a platform without silio support silently
    /// resolves to the threaded strategy; [`Server::kind`] reports what
    /// was actually selected.
    pub fn bind_with(
        addr: &Addr,
        service: Arc<dyn Service + Send + Sync>,
        options: ServerOptions,
    ) -> std::io::Result<Server> {
        let (listener, resolved) = match addr {
            Addr::Unix(path) => {
                let _ = std::fs::remove_file(path);
                let listener = UnixListener::bind(path)?;
                (Listener::Unix(listener, path.clone()), addr.clone())
            }
            Addr::Tcp(hostport) => {
                let listener = TcpListener::bind(hostport.as_str())?;
                let resolved = Addr::Tcp(listener.local_addr()?.to_string());
                (Listener::Tcp(listener), resolved)
            }
        };
        let options = ServerOptions {
            kind: if options.kind == ServerKind::Async && !silio::SUPPORTED {
                ServerKind::Threaded
            } else {
                options.kind
            },
            ..options
        };
        Ok(Server {
            listener,
            service,
            shutdown: Arc::new(AtomicBool::new(false)),
            addr: resolved,
            counters: Arc::new(ServerCounters::new(options.kind)),
            options,
        })
    }

    /// The bound address, with `tcp:…:0` resolved to the real port.
    pub fn addr(&self) -> &Addr {
        &self.addr
    }

    /// The serving strategy actually selected (async may have fallen back
    /// to threaded on platforms without silio support).
    pub fn kind(&self) -> ServerKind {
        self.options.kind
    }

    /// Accept and serve connections until shut down.  Blocks; use
    /// [`Server::spawn`] to run on a background thread.
    pub fn run(self) {
        let Server {
            listener,
            service,
            shutdown,
            addr,
            options,
            counters,
        } = self;
        serve_listener(listener, service, shutdown, addr, options, counters);
    }

    /// Run on a background thread, returning a handle that can stop it.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.addr.clone();
        let shutdown = self.shutdown.clone();
        let thread = std::thread::spawn(move || self.run());
        ServerHandle {
            addr,
            shutdown,
            thread,
        }
    }
}

/// The one entry point both serving strategies sit behind: drive the bound
/// listener until shutdown, then clean up the socket file.
pub(crate) fn serve_listener(
    listener: Listener,
    service: Arc<dyn Service + Send + Sync>,
    shutdown: Arc<AtomicBool>,
    addr: Addr,
    options: ServerOptions,
    counters: Arc<ServerCounters>,
) {
    let socket_path = match &listener {
        Listener::Unix(_, path) => Some(path.clone()),
        Listener::Tcp(_) => None,
    };
    match options.kind {
        ServerKind::Threaded => threaded::serve(listener, service, shutdown, addr, counters),
        #[cfg(target_os = "linux")]
        ServerKind::Async => aserver::serve(listener, service, shutdown, addr, options, counters),
        // Unreachable in practice: bind_with resolves Async to Threaded
        // when silio is unsupported.
        #[cfg(not(target_os = "linux"))]
        ServerKind::Async => threaded::serve(listener, service, shutdown, addr, counters),
    }
    if let Some(path) = socket_path {
        let _ = std::fs::remove_file(path);
    }
}

/// Control handle for a spawned [`Server`].
pub struct ServerHandle {
    addr: Addr,
    shutdown: Arc<AtomicBool>,
    thread: JoinHandle<()>,
}

impl ServerHandle {
    pub fn addr(&self) -> &Addr {
        &self.addr
    }

    /// Stop the serving loop and wait for it to exit.  Threaded
    /// connections already being served finish their current line on
    /// their own threads; the async loop flushes pending responses on its
    /// way out.
    pub fn shutdown(self) {
        self.shutdown.store(true, Ordering::SeqCst);
        wake(&self.addr);
        let _ = self.thread.join();
    }
}

/// Unblock a loop that is waiting in `accept()`/`poll()` by dialing it
/// once.
pub(crate) fn wake(addr: &Addr) {
    match addr {
        Addr::Unix(path) => {
            let _ = UnixStream::connect(path);
        }
        Addr::Tcp(hostport) => {
            let _ = TcpStream::connect(hostport.as_str());
        }
    }
}

/// What the per-line dispatch decided.
pub(crate) enum LineOutcome {
    /// Send this response and keep serving the connection.
    Respond(Response),
    /// Send this response, then stop the whole daemon (a well-versioned
    /// [`Request::Shutdown`] arrived).
    ShutdownAfter(Response),
}

/// The per-line protocol dispatch both serving strategies share: decode,
/// negotiate the version, intercept shutdown, execute against the service,
/// and decorate `Stats` responses with the daemon's own counters.  Keeping
/// this in one place is what makes the two servers byte-identical.
pub(crate) fn handle_line(
    service: &(dyn Service + Send + Sync),
    counters: &ServerCounters,
    line: &str,
) -> LineOutcome {
    let response = match Request::decode(line) {
        Err(error) => Response::error(error),
        Ok(request) if request.version() != PROTOCOL_VERSION => {
            Response::error(ServiceError::version_mismatch(request.version()))
        }
        Ok(Request::Shutdown { .. }) => {
            return LineOutcome::ShutdownAfter(Response::shutting_down());
        }
        Ok(request) => {
            let mut response = service.call(request);
            // Snapshot the counters only when a Stats response will carry
            // them — not on the Analyze/Process hot path.
            if let Response::Stats { server, .. } = &mut response {
                *server = Some(counters.snapshot());
            }
            response
        }
    };
    LineOutcome::Respond(response)
}

/// Encode and write one response line (the threaded server's writer; the
/// async server queues through its connection state machine instead).
pub(crate) fn write_response(writer: &mut dyn Write, response: &Response) -> std::io::Result<()> {
    let mut line = response.encode();
    line.push('\n');
    writer.write_all(line.as_bytes())?;
    writer.flush()
}
