//! The daemon side of the wire: bind a socket, accept connections, answer
//! one newline-delimited protocol message per line.
//!
//! Two serving strategies sit behind the one `serve_listener` entry
//! point, selected by [`ServerOptions::kind`]:
//!
//! * [`ServerKind::Threaded`] (`threaded.rs`) — one blocking thread
//!   per connection.  Simple, portable, and the default; its cost is one
//!   stack per client, idle or not.
//! * [`ServerKind::Async`] (`aserver.rs`, Linux only) — a single
//!   silio/epoll event loop multiplexing every connection, with a small
//!   worker pool executing requests and completing responses through an
//!   eventfd wakeup.  Thousands of mostly-idle clients cost file
//!   descriptors, not stacks.  On non-Linux builds the selection falls
//!   back to the threaded server (silio reports `SUPPORTED = false`).
//!
//! Both strategies answer byte-identical responses — they share the
//! request codec, the per-line dispatch (`handle_line`) and the response
//! writer — so `silp --connect` output cannot depend on which one serves.
//!
//! The `sild` binary is a thin shell around [`Server`]; tests spawn the
//! same server in-process on a temp socket, so both daemon paths are
//! exercised by `cargo test` without managing child processes.
//!
//! Shutdown is cooperative: a [`Request::Shutdown`] (or
//! [`ServerHandle::shutdown`]) sets a flag and wakes the accept/event
//! loop; the loop answers in-flight work, cleans up its socket file, and
//! exits.  A shutdown request speaking the wrong protocol version is
//! answered with the version error and does *not* stop the daemon.

#[cfg(target_os = "linux")]
use super::aserver;
use super::proto::{Request, Response, ServerStats, ServiceError, TraceSpan, PROTOCOL_VERSION};
use super::{threaded, Addr, Service};
use silobs::{
    Counter, FlightRecorder, Gauge, MetricsSnapshot, Registry, ShardedHistogram, TraceContext,
    Tracer,
};
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Which serving strategy a [`Server`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServerKind {
    /// One blocking thread per connection (portable default).
    #[default]
    Threaded,
    /// One silio/epoll event loop plus a worker pool (Linux; falls back to
    /// [`ServerKind::Threaded`] elsewhere).
    Async,
}

impl ServerKind {
    /// Stable lowercase name (wire format and CLI output).
    pub fn name(self) -> &'static str {
        match self {
            ServerKind::Threaded => "threaded",
            ServerKind::Async => "async",
        }
    }
}

/// Construction knobs of a [`Server`].
#[derive(Debug, Clone, Copy)]
pub struct ServerOptions {
    /// Serving strategy (default: threaded).
    pub kind: ServerKind,
    /// Worker threads of the async event loop's pool; `0` sizes it from
    /// the machine's parallelism.  Ignored by the threaded server.
    pub workers: usize,
    /// Requests whose service call outlasts this many microseconds have
    /// their span tree captured into the tracer's slow buffer (`silp
    /// --trace-dump` keeps them past ring churn).  `0` disables.
    pub slow_us: u64,
    /// Flight recorder sampling interval in milliseconds (default 1000 —
    /// one sample per second); `0` disables the recorder thread.
    pub recorder_interval_ms: u64,
    /// How many samples the flight recorder retains (default 256).
    pub recorder_capacity: usize,
}

impl Default for ServerOptions {
    fn default() -> ServerOptions {
        ServerOptions {
            kind: ServerKind::default(),
            workers: 0,
            slow_us: 0,
            recorder_interval_ms: 1000,
            recorder_capacity: 256,
        }
    }
}

/// Live daemon-side instrumentation, shared between the serving loop
/// (which updates it) and the per-line dispatch (which snapshots it into
/// `Stats`/`Metrics` responses).
///
/// The counters live on a [`Registry`] under the `server.*` namespace, so
/// a `Metrics` response can splice them next to the engine's `engine.*` /
/// `store.*` entries; the legacy [`ServerStats`] wire shape is a view over
/// the same atomics, byte-identical to what it reported before.
#[derive(Debug)]
pub(crate) struct ServerCounters {
    kind: ServerKind,
    registry: Registry,
    accepted: Counter,
    active: Gauge,
    requests: Counter,
    serve_us: Arc<ShardedHistogram>,
    queue_depth: Gauge,
    pending_lines: Gauge,
    tracer: Arc<Tracer>,
    recorder: Arc<FlightRecorder>,
    /// Service calls slower than this many microseconds are captured into
    /// the tracer's slow buffer; 0 disables.
    slow_us: u64,
    started: Instant,
}

impl ServerCounters {
    fn new(options: &ServerOptions) -> ServerCounters {
        ServerCounters::with_started(options, Instant::now())
    }

    /// [`ServerCounters::new`] with an explicit start instant (tests back-
    /// date it to pin the uptime the snapshot must report).
    fn with_started(options: &ServerOptions, started: Instant) -> ServerCounters {
        let registry = Registry::new();
        ServerCounters {
            kind: options.kind,
            accepted: registry.counter("server.accepted"),
            active: registry.gauge("server.active"),
            requests: registry.counter("server.requests"),
            serve_us: registry.histogram("server.serve_us"),
            queue_depth: registry.gauge("server.queue_depth"),
            pending_lines: registry.gauge("server.pending_lines"),
            tracer: Arc::new(Tracer::default()),
            recorder: Arc::new(FlightRecorder::new(options.recorder_capacity.max(2))),
            slow_us: options.slow_us,
            registry,
            started,
        }
    }

    /// Record one accepted connection (now active).
    pub(crate) fn connection_opened(&self) {
        self.accepted.incr();
        self.active.add(1);
    }

    /// Record one connection closing.
    pub(crate) fn connection_closed(&self) {
        self.active.sub(1);
    }

    /// The tracer request ids are minted from and server-side spans are
    /// recorded into.
    pub(crate) fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    /// Depth of the async server's ready-job queue (stays 0 under the
    /// threaded server, which has no queue).
    pub(crate) fn queue_depth(&self) -> Gauge {
        self.queue_depth.clone()
    }

    /// Lines read off sockets but not yet dispatched, across connections.
    pub(crate) fn pending_lines(&self) -> Gauge {
        self.pending_lines.clone()
    }

    /// Whole seconds since the server started serving.
    fn uptime_ticks(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// The wire-facing snapshot attached to `Stats` responses, reporting
    /// the uptime the caller sampled (see [`handle_line`]: sampling it in
    /// one place is what keeps the two serving strategies byte-identical).
    fn snapshot_at(&self, uptime_ticks: u64) -> ServerStats {
        ServerStats {
            kind: self.kind.name().to_string(),
            accepted: self.accepted.get(),
            active: self.active.get().max(0) as u64,
            uptime_ticks,
        }
    }

    /// The `server.*` metrics namespace (plus the server tracer's
    /// `trace.*` counters), as spliced into `Metrics` responses.  The
    /// service exports its own tracer's counters too; the splice sums
    /// them into daemon-wide totals.
    fn metrics(&self) -> MetricsSnapshot {
        let mut raw = self.registry.collect();
        self.tracer.export_metrics(&mut raw);
        raw.summarize()
    }

    /// One flight-recorder tick: the server registry, the server tracer's
    /// counters, and everything the service can read, merged raw so
    /// histogram deltas are exact.
    fn sample_recorder(&self, service: &(dyn Service + Send + Sync)) {
        let mut raw = self.registry.collect();
        self.tracer.export_metrics(&mut raw);
        if let Some(service_raw) = service.raw_metrics() {
            raw.absorb(&service_raw);
        }
        self.recorder.sample(raw);
    }
}

pub(crate) enum Listener {
    Unix(UnixListener, PathBuf),
    Tcp(TcpListener),
}

/// A bound, not-yet-running protocol server.
pub struct Server {
    listener: Listener,
    service: Arc<dyn Service + Send + Sync>,
    shutdown: Arc<AtomicBool>,
    addr: Addr,
    options: ServerOptions,
    counters: Arc<ServerCounters>,
}

impl Server {
    /// Bind `addr` and wrap `service` with the default (threaded) serving
    /// strategy.  A stale Unix socket file at the path is removed first
    /// (the daemon owns its socket path); for `tcp:host:0` the resolved
    /// port is visible via [`Server::addr`].
    pub fn bind(addr: &Addr, service: Arc<dyn Service + Send + Sync>) -> std::io::Result<Server> {
        Server::bind_with(addr, service, ServerOptions::default())
    }

    /// [`Server::bind`] with an explicit serving strategy.  Asking for
    /// [`ServerKind::Async`] on a platform without silio support silently
    /// resolves to the threaded strategy; [`Server::kind`] reports what
    /// was actually selected.
    pub fn bind_with(
        addr: &Addr,
        service: Arc<dyn Service + Send + Sync>,
        options: ServerOptions,
    ) -> std::io::Result<Server> {
        let (listener, resolved) = match addr {
            Addr::Unix(path) => {
                let _ = std::fs::remove_file(path);
                let listener = UnixListener::bind(path)?;
                (Listener::Unix(listener, path.clone()), addr.clone())
            }
            Addr::Tcp(hostport) => {
                let listener = TcpListener::bind(hostport.as_str())?;
                let resolved = Addr::Tcp(listener.local_addr()?.to_string());
                (Listener::Tcp(listener), resolved)
            }
        };
        let options = ServerOptions {
            kind: if options.kind == ServerKind::Async && !silio::SUPPORTED {
                ServerKind::Threaded
            } else {
                options.kind
            },
            ..options
        };
        let counters = Arc::new(ServerCounters::new(&options));
        // Name this daemon on both tracers, so spans piggybacked to a
        // remote caller say where they were recorded.  First set wins:
        // a service shared across servers keeps its first address.
        counters.tracer().set_origin(&resolved.to_string());
        if let Some(tracer) = service.service_tracer() {
            tracer.set_origin(&resolved.to_string());
        }
        Ok(Server {
            listener,
            service,
            shutdown: Arc::new(AtomicBool::new(false)),
            addr: resolved,
            counters,
            options,
        })
    }

    /// The bound address, with `tcp:…:0` resolved to the real port.
    pub fn addr(&self) -> &Addr {
        &self.addr
    }

    /// The serving strategy actually selected (async may have fallen back
    /// to threaded on platforms without silio support).
    pub fn kind(&self) -> ServerKind {
        self.options.kind
    }

    /// Accept and serve connections until shut down.  Blocks; use
    /// [`Server::spawn`] to run on a background thread.
    pub fn run(self) {
        let Server {
            listener,
            service,
            shutdown,
            addr,
            options,
            counters,
        } = self;
        serve_listener(listener, service, shutdown, addr, options, counters);
    }

    /// Run on a background thread, returning a handle that can stop it.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.addr.clone();
        let shutdown = self.shutdown.clone();
        let thread = std::thread::spawn(move || self.run());
        ServerHandle {
            addr,
            shutdown,
            thread,
        }
    }
}

/// The one entry point both serving strategies sit behind: drive the bound
/// listener until shutdown, then clean up the socket file.
pub(crate) fn serve_listener(
    listener: Listener,
    service: Arc<dyn Service + Send + Sync>,
    shutdown: Arc<AtomicBool>,
    addr: Addr,
    options: ServerOptions,
    counters: Arc<ServerCounters>,
) {
    let socket_path = match &listener {
        Listener::Unix(_, path) => Some(path.clone()),
        Listener::Tcp(_) => None,
    };
    let sampler = spawn_recorder_sampler(&service, &shutdown, &counters, &options);
    match options.kind {
        ServerKind::Threaded => threaded::serve(listener, service, shutdown, addr, counters),
        #[cfg(target_os = "linux")]
        ServerKind::Async => aserver::serve(listener, service, shutdown, addr, options, counters),
        // Unreachable in practice: bind_with resolves Async to Threaded
        // when silio is unsupported.
        #[cfg(not(target_os = "linux"))]
        ServerKind::Async => threaded::serve(listener, service, shutdown, addr, counters),
    }
    if let Some(sampler) = sampler {
        let _ = sampler.join();
    }
    if let Some(path) = socket_path {
        let _ = std::fs::remove_file(path);
    }
}

/// The flight recorder's sampler: one raw metrics read per interval into
/// the bounded ring, for as long as the daemon serves.  Sleeps in short
/// chunks so shutdown stays prompt at any interval.
fn spawn_recorder_sampler(
    service: &Arc<dyn Service + Send + Sync>,
    shutdown: &Arc<AtomicBool>,
    counters: &Arc<ServerCounters>,
    options: &ServerOptions,
) -> Option<JoinHandle<()>> {
    if options.recorder_interval_ms == 0 {
        return None;
    }
    let service = service.clone();
    let shutdown = shutdown.clone();
    let counters = counters.clone();
    let interval = Duration::from_millis(options.recorder_interval_ms);
    Some(std::thread::spawn(move || {
        while !shutdown.load(Ordering::SeqCst) {
            counters.sample_recorder(service.as_ref());
            let mut slept = Duration::ZERO;
            while slept < interval && !shutdown.load(Ordering::SeqCst) {
                let chunk = (interval - slept).min(Duration::from_millis(50));
                std::thread::sleep(chunk);
                slept += chunk;
            }
        }
    }))
}

/// Control handle for a spawned [`Server`].
pub struct ServerHandle {
    addr: Addr,
    shutdown: Arc<AtomicBool>,
    thread: JoinHandle<()>,
}

impl ServerHandle {
    pub fn addr(&self) -> &Addr {
        &self.addr
    }

    /// Stop the serving loop and wait for it to exit.  Threaded
    /// connections already being served finish their current line on
    /// their own threads; the async loop flushes pending responses on its
    /// way out.
    pub fn shutdown(self) {
        self.shutdown.store(true, Ordering::SeqCst);
        wake(&self.addr);
        let _ = self.thread.join();
    }
}

/// Unblock a loop that is waiting in `accept()`/`poll()` by dialing it
/// once.
pub(crate) fn wake(addr: &Addr) {
    match addr {
        Addr::Unix(path) => {
            let _ = UnixStream::connect(path);
        }
        Addr::Tcp(hostport) => {
            let _ = TcpStream::connect(hostport.as_str());
        }
    }
}

/// What the per-line dispatch decided.  The response is already encoded —
/// `handle_line` times the encode under its span, so both serving
/// strategies ship the bytes it produced.
pub(crate) enum LineOutcome {
    /// Send this response line and keep serving the connection.
    Respond(String),
    /// Send this response line, then stop the whole daemon (a
    /// well-versioned [`Request::Shutdown`] arrived).
    ShutdownAfter(String),
}

/// The per-line protocol dispatch both serving strategies share: decode,
/// negotiate the version, intercept shutdown, execute against the service,
/// and decorate `Stats`/`Metrics`/`Trace` responses with the daemon's own
/// counters, `server.*` metrics, and spans.  Keeping this in one place is
/// what makes the two servers byte-identical.
///
/// `id` is the request id the serving strategy minted when it framed the
/// line (from [`ServerCounters::tracer`]); every span recorded while the
/// request executes — here and down in the engine — attributes to it.
pub(crate) fn handle_line(
    service: &(dyn Service + Send + Sync),
    counters: &ServerCounters,
    id: u64,
    line: &str,
) -> LineOutcome {
    // Sample the uptime exactly once, before any work: the threaded and
    // async strategies used to sample it at different points in the line's
    // lifetime, so a slow request could round to a different whole second
    // depending on which server answered it.
    let uptime_ticks = counters.uptime_ticks();
    counters.requests.incr();
    silobs::with_request(id, || {
        let decoded = {
            let _span = counters.tracer.start("parse");
            Request::decode(line)
        };
        let (response, shutdown) = match decoded {
            Err(error) => (Response::error(error), false),
            Ok(request) if request.version() != PROTOCOL_VERSION => (
                Response::error(ServiceError::version_mismatch(request.version())),
                false,
            ),
            Ok(Request::Shutdown { .. }) => (Response::shutting_down(), true),
            Ok(Request::MetricsHistory { .. }) => (
                Response::metrics_history(counters.recorder.history()),
                false,
            ),
            Ok(request) => {
                // Every daemon-served request runs under a trace: either
                // the one the caller propagated on the wire, or a fresh id
                // minted here — so `silp --trace` sees trees without
                // clients having to opt in.  The "serve" root span covers
                // the whole service call; engine spans recorded inside
                // nest under it via the thread-local parent.
                let header = request.trace_header();
                let trace = header.map(|h| h.id).unwrap_or_else(silobs::mint_trace_id);
                let ctx = TraceContext {
                    request: id,
                    trace,
                    parent: header.map_or(0, |h| h.parent),
                };
                let start = silobs::ticks();
                let mut response = silobs::with_context(ctx, || {
                    let _serve = counters.tracer.start("serve");
                    service.call(request)
                });
                let elapsed = silobs::ticks().saturating_sub(start);
                counters.serve_us.record(elapsed);
                // Decorate only the response kinds that carry daemon-side
                // state — never the Analyze/Process hot path.
                if let Response::Stats { server, .. } = &mut response {
                    *server = Some(counters.snapshot_at(uptime_ticks));
                }
                let mut response = match response {
                    Response::Metrics { .. } => response.with_server_metrics(counters.metrics()),
                    Response::Trace { .. } => response.with_server_spans(
                        counters
                            .tracer
                            .snapshot_all()
                            .iter()
                            .map(TraceSpan::from)
                            .collect(),
                    ),
                    other => other,
                };
                // Piggyback this hop's spans only to callers that sent a
                // trace header (daemon-to-daemon hops): plain clients keep
                // byte-identical responses, while the origin daemon
                // assembles the cross-daemon tree from these.
                if header.is_some() {
                    let mut spans: Vec<TraceSpan> = counters
                        .tracer
                        .spans_for(trace, id)
                        .iter()
                        .map(TraceSpan::from)
                        .collect();
                    if let Some(tracer) = service.service_tracer() {
                        spans.extend(tracer.spans_for(trace, id).iter().map(TraceSpan::from));
                    }
                    response = response.with_trace_spans(spans);
                }
                if counters.slow_us > 0 && elapsed > counters.slow_us {
                    let mut capture = counters.tracer.spans_for(trace, id);
                    if let Some(tracer) = service.service_tracer() {
                        capture.extend(tracer.spans_for(trace, id));
                    }
                    counters.tracer.capture_slow(capture);
                }
                (response, false)
            }
        };
        let encoded = {
            let _span = counters.tracer.start("encode");
            response.encode()
        };
        if shutdown {
            LineOutcome::ShutdownAfter(encoded)
        } else {
            LineOutcome::Respond(encoded)
        }
    })
}

/// Write one already-encoded response line (the threaded server's writer;
/// the async server queues through its connection state machine instead).
pub(crate) fn write_response(writer: &mut dyn Write, line: &str) -> std::io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::LocalService;
    use crate::EngineConfig;
    use std::time::Duration;

    /// A service that takes over a second to answer, exposing where the
    /// uptime sample happens relative to the call.
    struct Slow(LocalService);

    impl Service for Slow {
        fn call(&self, request: Request) -> Response {
            std::thread::sleep(Duration::from_millis(1200));
            self.0.call(request)
        }
    }

    /// Regression: uptime must be sampled once, at line entry.  With the
    /// server 10s old and a service that takes 1.2s, sampling after the
    /// call (as the serving strategies once did, each at its own point)
    /// would report 11.
    #[test]
    fn uptime_is_sampled_before_the_service_runs() {
        let started = Instant::now()
            .checked_sub(Duration::from_secs(10))
            .expect("clock predates process start");
        let options = ServerOptions {
            kind: ServerKind::Threaded,
            ..ServerOptions::default()
        };
        let counters = ServerCounters::with_started(&options, started);
        let service = Slow(LocalService::new(EngineConfig::default()));
        let id = counters.tracer().mint();
        let line = match handle_line(&service, &counters, id, &Request::stats().encode()) {
            LineOutcome::Respond(line) => line,
            LineOutcome::ShutdownAfter(_) => panic!("stats must not shut the daemon down"),
        };
        match Response::decode(&line).expect("stats response decodes") {
            Response::Stats { server, .. } => {
                let server = server.expect("daemon path attaches server stats");
                assert_eq!(
                    server.uptime_ticks, 10,
                    "sampled at entry, not after the call"
                );
                assert_eq!(server.kind, "threaded");
            }
            other => panic!("expected stats, got {other:?}"),
        }
    }

    #[test]
    fn handle_line_attributes_spans_to_the_minted_id() {
        let counters = ServerCounters::new(&ServerOptions::default());
        let service = LocalService::new(EngineConfig::default());
        let id = counters.tracer().mint();
        match handle_line(&service, &counters, id, &Request::clear_caches().encode()) {
            LineOutcome::Respond(_) => {}
            LineOutcome::ShutdownAfter(_) => panic!("clear_caches must keep serving"),
        }
        let spans = counters.tracer().snapshot();
        let names: Vec<&str> = spans
            .iter()
            .filter(|span| span.request == id)
            .map(|span| span.name.as_ref())
            .collect();
        assert_eq!(names, vec!["parse", "serve", "encode"]);
    }

    /// A service call outlasting `--slow-us` lands its span tree in the
    /// slow buffer: visible via `snapshot_all`, counted by the
    /// `trace.slow_captures` metric.
    #[test]
    fn slow_requests_are_captured_past_ring_churn() {
        let options = ServerOptions {
            slow_us: 1, // the 1.2s Slow service always trips this
            ..ServerOptions::default()
        };
        let counters = ServerCounters::new(&options);
        let service = Slow(LocalService::new(EngineConfig::default()));
        let id = counters.tracer().mint();
        match handle_line(&service, &counters, id, &Request::analyze("f(){}").encode()) {
            LineOutcome::Respond(_) => {}
            LineOutcome::ShutdownAfter(_) => panic!("analyze must keep serving"),
        }
        let dump = counters.tracer().snapshot_all();
        let captured = dump
            .iter()
            .filter(|span| span.request == id && span.name == "serve")
            .count();
        assert!(captured > 0, "slow serve span survives in the dump");
        let metrics = counters.metrics();
        assert_eq!(metrics.counter("trace.slow_captures"), Some(1));
    }

    /// The recorder sampler path: two manual ticks produce a monotone
    /// `server.requests` series a `metrics_history` response can diff.
    #[test]
    fn metrics_history_answers_from_the_recorder() {
        let counters = ServerCounters::new(&ServerOptions::default());
        let service = LocalService::new(EngineConfig::default());
        let id = counters.tracer().mint();
        counters.sample_recorder(&service);
        match handle_line(&service, &counters, id, &Request::analyze("f(){}").encode()) {
            LineOutcome::Respond(_) => {}
            LineOutcome::ShutdownAfter(_) => panic!("analyze must keep serving"),
        }
        counters.sample_recorder(&service);
        let line = match handle_line(
            &service,
            &counters,
            counters.tracer().mint(),
            &Request::metrics_history().encode(),
        ) {
            LineOutcome::Respond(line) => line,
            LineOutcome::ShutdownAfter(_) => panic!("metrics_history must keep serving"),
        };
        match Response::decode(&line).expect("metrics_history response decodes") {
            Response::MetricsHistory { samples, .. } => {
                assert!(samples.len() >= 2, "both manual ticks retained");
                let requests: Vec<u64> = samples
                    .iter()
                    .map(|sample| sample.metrics.counter("server.requests").unwrap_or(0))
                    .collect();
                assert!(
                    requests.windows(2).all(|pair| pair[0] <= pair[1]),
                    "counter series is monotone: {requests:?}"
                );
                assert!(
                    requests.last() > requests.first(),
                    "the analyze in between moved the counter"
                );
            }
            other => panic!("expected metrics history, got {other:?}"),
        }
    }
}
