//! The daemon side of the wire: accept connections, answer one
//! newline-delimited protocol message per line, one thread per client.
//!
//! The `sild` binary is a thin shell around [`Server`]; tests spawn the
//! same server in-process on a temp socket, so the daemon path is exercised
//! by `cargo test` without managing child processes.
//!
//! Shutdown is cooperative: a [`Request::Shutdown`] (or
//! [`ServerHandle::shutdown`]) sets a flag and wakes the accept loop with a
//! throwaway connection; the loop re-checks the flag per accepted
//! connection and exits.  A shutdown request speaking the wrong protocol
//! version is answered with the version error and does *not* stop the
//! daemon.

use super::proto::{Request, Response, ServiceError, PROTOCOL_VERSION};
use super::{Addr, Service};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

enum Listener {
    Unix(UnixListener, PathBuf),
    Tcp(TcpListener),
}

enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

/// A bound, not-yet-running protocol server.
pub struct Server {
    listener: Listener,
    service: Arc<dyn Service + Send + Sync>,
    shutdown: Arc<AtomicBool>,
    addr: Addr,
}

impl Server {
    /// Bind `addr` and wrap `service`.  A stale Unix socket file at the
    /// path is removed first (the daemon owns its socket path); for
    /// `tcp:host:0` the resolved port is visible via [`Server::addr`].
    pub fn bind(addr: &Addr, service: Arc<dyn Service + Send + Sync>) -> std::io::Result<Server> {
        let (listener, resolved) = match addr {
            Addr::Unix(path) => {
                let _ = std::fs::remove_file(path);
                let listener = UnixListener::bind(path)?;
                (Listener::Unix(listener, path.clone()), addr.clone())
            }
            Addr::Tcp(hostport) => {
                let listener = TcpListener::bind(hostport.as_str())?;
                let resolved = Addr::Tcp(listener.local_addr()?.to_string());
                (Listener::Tcp(listener), resolved)
            }
        };
        Ok(Server {
            listener,
            service,
            shutdown: Arc::new(AtomicBool::new(false)),
            addr: resolved,
        })
    }

    /// The bound address, with `tcp:…:0` resolved to the real port.
    pub fn addr(&self) -> &Addr {
        &self.addr
    }

    /// Accept and serve connections until shut down.  Blocks; use
    /// [`Server::spawn`] to run on a background thread.
    pub fn run(self) {
        let Server {
            listener,
            service,
            shutdown,
            addr,
        } = self;
        loop {
            let stream = match &listener {
                Listener::Unix(listener, _) => listener.accept().map(|(s, _)| Stream::Unix(s)),
                Listener::Tcp(listener) => listener.accept().map(|(s, _)| Stream::Tcp(s)),
            };
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else {
                // Transient accept failures (e.g. fd exhaustion under
                // load) must not spin a core; back off briefly.
                std::thread::sleep(std::time::Duration::from_millis(20));
                continue;
            };
            let service = service.clone();
            let shutdown = shutdown.clone();
            let addr = addr.clone();
            std::thread::spawn(move || serve_connection(stream, service, shutdown, addr));
        }
        if let Listener::Unix(_, path) = listener {
            let _ = std::fs::remove_file(path);
        }
    }

    /// Run on a background thread, returning a handle that can stop it.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.addr.clone();
        let shutdown = self.shutdown.clone();
        let thread = std::thread::spawn(move || self.run());
        ServerHandle {
            addr,
            shutdown,
            thread,
        }
    }
}

/// Control handle for a spawned [`Server`].
pub struct ServerHandle {
    addr: Addr,
    shutdown: Arc<AtomicBool>,
    thread: JoinHandle<()>,
}

impl ServerHandle {
    pub fn addr(&self) -> &Addr {
        &self.addr
    }

    /// Stop the accept loop and wait for it to exit.  Connections already
    /// being served finish their current line on their own threads.
    pub fn shutdown(self) {
        self.shutdown.store(true, Ordering::SeqCst);
        wake(&self.addr);
        let _ = self.thread.join();
    }
}

/// Unblock an accept loop that is waiting in `accept()` by dialing it once.
fn wake(addr: &Addr) {
    match addr {
        Addr::Unix(path) => {
            let _ = UnixStream::connect(path);
        }
        Addr::Tcp(hostport) => {
            let _ = TcpStream::connect(hostport.as_str());
        }
    }
}

fn serve_connection(
    stream: Stream,
    service: Arc<dyn Service + Send + Sync>,
    shutdown: Arc<AtomicBool>,
    addr: Addr,
) {
    let (reader, mut writer): (Box<dyn std::io::Read>, Box<dyn Write>) = match stream {
        Stream::Unix(s) => match s.try_clone() {
            Ok(clone) => (Box::new(clone), Box::new(s)),
            Err(_) => return,
        },
        Stream::Tcp(s) => match s.try_clone() {
            Ok(clone) => (Box::new(clone), Box::new(s)),
            Err(_) => return,
        },
    };
    let mut reader = BufReader::new(reader);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return, // client hung up
            Ok(_) => {}
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let response = match Request::decode(trimmed) {
            Err(error) => Response::error(error),
            Ok(request) if request.version() != PROTOCOL_VERSION => {
                Response::error(ServiceError::version_mismatch(request.version()))
            }
            Ok(Request::Shutdown { .. }) => {
                // Acknowledge, then stop the daemon: flag + self-dial wakes
                // the accept loop.
                let _ = write_response(&mut writer, &Response::shutting_down());
                shutdown.store(true, Ordering::SeqCst);
                wake(&addr);
                return;
            }
            Ok(request) => service.call(request),
        };
        if write_response(&mut writer, &response).is_err() {
            return;
        }
    }
}

fn write_response(writer: &mut dyn Write, response: &Response) -> std::io::Result<()> {
    let mut line = response.encode();
    line.push('\n');
    writer.write_all(line.as_bytes())?;
    writer.flush()
}
