//! The client side of the wire: a [`Service`] that speaks
//! newline-delimited JSON to a `sild` daemon over a Unix or TCP socket.
//!
//! One message per line, one response per request, strictly in order — the
//! simplest framing that is still trivially debuggable with `nc`/`socat`.
//! The JSON encoder escapes every control character, so an encoded message
//! can never contain a raw newline and the framing is unambiguous.

use super::proto::{Request, Response, ServiceError, TraceHeader, PROTOCOL_VERSION};
use super::{Addr, Service};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::os::unix::net::UnixStream;
use std::sync::Mutex;
use std::time::Duration;

/// Either stream type behind one `Read`/`Write` face.
#[derive(Debug)]
enum Conn {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Conn {
    fn connect(addr: &Addr, timeout: Option<Duration>) -> io::Result<Conn> {
        let conn = match addr {
            Addr::Unix(path) => {
                // Unix connects resolve locally (a full backlog fails with
                // an error rather than hanging), so the timeout guards the
                // exchanges, not the dial.
                Conn::Unix(UnixStream::connect(path)?)
            }
            Addr::Tcp(hostport) => {
                let stream = match timeout {
                    None => TcpStream::connect(hostport.as_str())?,
                    Some(limit) => {
                        // connect_timeout needs resolved addresses; try
                        // each with the full budget and keep the last
                        // failure for the error message.
                        let mut addrs = hostport.as_str().to_socket_addrs()?;
                        let mut last = None;
                        let stream = loop {
                            let Some(candidate) = addrs.next() else {
                                return Err(last.unwrap_or_else(|| {
                                    io::Error::new(
                                        io::ErrorKind::InvalidInput,
                                        format!("{hostport} resolved to no addresses"),
                                    )
                                }));
                            };
                            match TcpStream::connect_timeout(&candidate, limit) {
                                Ok(stream) => break stream,
                                Err(e) => last = Some(e),
                            }
                        };
                        stream
                    }
                };
                // Each request is one small line; batching for throughput
                // happens at the protocol level (Request::Batch), so favor
                // latency.
                stream.set_nodelay(true)?;
                Conn::Tcp(stream)
            }
        };
        // A hung daemon (accepted but never answers) fails the read
        // instead of blocking the client forever.
        match &conn {
            Conn::Unix(s) => {
                s.set_read_timeout(timeout)?;
                s.set_write_timeout(timeout)?;
            }
            Conn::Tcp(s) => {
                s.set_read_timeout(timeout)?;
                s.set_write_timeout(timeout)?;
            }
        }
        Ok(conn)
    }

    fn try_clone(&self) -> io::Result<Conn> {
        match self {
            Conn::Unix(s) => s.try_clone().map(Conn::Unix),
            Conn::Tcp(s) => s.try_clone().map(Conn::Tcp),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Unix(s) => s.read(buf),
            Conn::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Unix(s) => s.write(buf),
            Conn::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Unix(s) => s.flush(),
            Conn::Tcp(s) => s.flush(),
        }
    }
}

struct Pipe {
    reader: BufReader<Conn>,
    writer: Conn,
    /// Set after any transport failure.  The protocol has no correlation
    /// ids, so once a write/read fails (a timeout especially — the late
    /// response may still arrive, or a partial line may sit in the
    /// reader), request/response pairing on this connection can no longer
    /// be trusted; every later exchange fails fast instead of silently
    /// returning the previous request's answer.
    broken: bool,
}

/// A [`Service`] backed by one connection to a remote daemon.
///
/// The connection is serialized behind a mutex (the protocol is strict
/// request/response); open one `RemoteService` per concurrent client
/// instead of sharing one across threads that should proceed in parallel.
pub struct RemoteService {
    addr: Addr,
    timeout: Option<Duration>,
    pipe: Mutex<Pipe>,
}

impl RemoteService {
    /// Dial `addr` (`unix:<path>`, `tcp:<host:port>`, or the bare forms —
    /// see [`Addr::parse`]), waiting indefinitely for the daemon.
    pub fn connect(addr: &str) -> Result<RemoteService, ServiceError> {
        RemoteService::connect_with_timeout(addr, None)
    }

    /// [`RemoteService::connect`] with an optional per-operation timeout:
    /// the TCP dial, every request write, and every response read each
    /// fail with a transport error naming the timeout instead of blocking
    /// forever on a hung daemon.
    pub fn connect_with_timeout(
        addr: &str,
        timeout: Option<Duration>,
    ) -> Result<RemoteService, ServiceError> {
        let addr = Addr::parse(addr).map_err(ServiceError::transport)?;
        RemoteService::dial_with_timeout(&addr, timeout)
    }

    pub fn dial(addr: &Addr) -> Result<RemoteService, ServiceError> {
        RemoteService::dial_with_timeout(addr, None)
    }

    /// [`RemoteService::dial`] with an optional per-operation timeout.
    pub fn dial_with_timeout(
        addr: &Addr,
        timeout: Option<Duration>,
    ) -> Result<RemoteService, ServiceError> {
        let writer = Conn::connect(addr, timeout)
            .map_err(|e| ServiceError::transport(format!("cannot connect to {addr}: {e}")))?;
        let reader = writer
            .try_clone()
            .map_err(|e| ServiceError::transport(format!("cannot clone stream: {e}")))?;
        Ok(RemoteService {
            addr: addr.clone(),
            timeout,
            pipe: Mutex::new(Pipe {
                reader: BufReader::new(reader),
                writer,
                broken: false,
            }),
        })
    }

    pub fn addr(&self) -> &Addr {
        &self.addr
    }

    /// Verify the daemon speaks our protocol version with a
    /// [`Request::Stats`] ping; on mismatch the returned error names both
    /// versions.
    pub fn handshake(&self) -> Result<(), ServiceError> {
        match self.call(Request::stats()) {
            Response::Stats { version, .. } if version == PROTOCOL_VERSION => Ok(()),
            Response::Error { error, .. } => Err(error),
            other => Err(ServiceError::new(
                super::ErrorKind::Protocol,
                format!(
                    "daemon speaks protocol version {}, this client speaks {PROTOCOL_VERSION}",
                    other.version()
                ),
            )),
        }
    }

    /// Describe an I/O failure, naming the configured timeout when the
    /// failure is the timeout firing (socket timeouts surface as
    /// `TimedOut` on TCP and `WouldBlock` on Unix sockets).
    fn transport_error(&self, direction: &str, error: &io::Error) -> ServiceError {
        if matches!(
            error.kind(),
            io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
        ) {
            if let Some(timeout) = self.timeout {
                return ServiceError::transport(format!(
                    "{direction} {}: timed out after {}ms",
                    self.addr,
                    timeout.as_millis()
                ));
            }
        }
        ServiceError::transport(format!("{direction} {}: {error}", self.addr))
    }

    fn exchange(&self, line: &str) -> Result<String, ServiceError> {
        let mut pipe = self.pipe.lock().unwrap();
        if pipe.broken {
            return Err(ServiceError::transport(format!(
                "connection to {} is broken after a previous transport failure; reconnect",
                self.addr
            )));
        }
        if let Err(e) = pipe
            .writer
            .write_all(line.as_bytes())
            .and_then(|_| pipe.writer.write_all(b"\n"))
            .and_then(|_| pipe.writer.flush())
        {
            pipe.broken = true;
            return Err(self.transport_error("write to", &e));
        }
        let mut reply = String::new();
        let n = match pipe.reader.read_line(&mut reply) {
            Ok(n) => n,
            Err(e) => {
                pipe.broken = true;
                return Err(self.transport_error("read from", &e));
            }
        };
        if n == 0 {
            pipe.broken = true;
            return Err(ServiceError::transport(format!(
                "{} closed the connection",
                self.addr
            )));
        }
        Ok(reply)
    }
}

impl RemoteService {
    /// [`Service::call`], also reporting how many bytes of response line
    /// were read off the wire (0 when the exchange failed before a reply
    /// arrived).  Callers that meter traffic use this instead of
    /// re-encoding the decoded response to guess at its size.
    pub fn call_counted(&self, request: Request) -> (Response, u64) {
        // When the caller is itself serving a traced request (the ambient
        // context carries a trace id), propagate it on the wire so the
        // callee's spans come back and join this daemon's tree.  Requests
        // that already carry a header, or kinds that cannot, pass through
        // untouched — an untraced caller sends byte-identical lines.
        let request = match silobs::current_context() {
            Some(ctx) if ctx.trace != 0 && request.trace_header().is_none() => {
                request.with_trace(TraceHeader {
                    id: ctx.trace,
                    parent: ctx.parent,
                })
            }
            _ => request,
        };
        let line = request.encode();
        match self.exchange(&line) {
            Ok(reply) => {
                let wire_bytes = reply.len() as u64;
                let response = match Response::decode(reply.trim_end_matches(['\r', '\n'])) {
                    Ok(response) => response,
                    Err(error) => Response::error(error),
                };
                (response, wire_bytes)
            }
            Err(error) => (Response::error(error), 0),
        }
    }
}

impl Service for RemoteService {
    fn call(&self, request: Request) -> Response {
        self.call_counted(request).0
    }
}

impl std::fmt::Debug for RemoteService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteService")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}
