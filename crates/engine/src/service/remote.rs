//! The client side of the wire: a [`Service`] that speaks
//! newline-delimited JSON to a `sild` daemon over a Unix or TCP socket.
//!
//! One message per line, one response per request, strictly in order — the
//! simplest framing that is still trivially debuggable with `nc`/`socat`.
//! The JSON encoder escapes every control character, so an encoded message
//! can never contain a raw newline and the framing is unambiguous.

use super::proto::{Request, Response, ServiceError, PROTOCOL_VERSION};
use super::{Addr, Service};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::sync::Mutex;

/// Either stream type behind one `Read`/`Write` face.
#[derive(Debug)]
enum Conn {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Conn {
    fn connect(addr: &Addr) -> io::Result<Conn> {
        match addr {
            Addr::Unix(path) => UnixStream::connect(path).map(Conn::Unix),
            Addr::Tcp(hostport) => {
                let stream = TcpStream::connect(hostport.as_str())?;
                // Each request is one small line; batching for throughput
                // happens at the protocol level (Request::Batch), so favor
                // latency.
                stream.set_nodelay(true)?;
                Ok(Conn::Tcp(stream))
            }
        }
    }

    fn try_clone(&self) -> io::Result<Conn> {
        match self {
            Conn::Unix(s) => s.try_clone().map(Conn::Unix),
            Conn::Tcp(s) => s.try_clone().map(Conn::Tcp),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Unix(s) => s.read(buf),
            Conn::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Unix(s) => s.write(buf),
            Conn::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Unix(s) => s.flush(),
            Conn::Tcp(s) => s.flush(),
        }
    }
}

struct Pipe {
    reader: BufReader<Conn>,
    writer: Conn,
}

/// A [`Service`] backed by one connection to a remote daemon.
///
/// The connection is serialized behind a mutex (the protocol is strict
/// request/response); open one `RemoteService` per concurrent client
/// instead of sharing one across threads that should proceed in parallel.
pub struct RemoteService {
    addr: Addr,
    pipe: Mutex<Pipe>,
}

impl RemoteService {
    /// Dial `addr` (`unix:<path>`, `tcp:<host:port>`, or the bare forms —
    /// see [`Addr::parse`]).
    pub fn connect(addr: &str) -> Result<RemoteService, ServiceError> {
        let addr = Addr::parse(addr).map_err(ServiceError::transport)?;
        RemoteService::dial(&addr)
    }

    pub fn dial(addr: &Addr) -> Result<RemoteService, ServiceError> {
        let writer = Conn::connect(addr)
            .map_err(|e| ServiceError::transport(format!("cannot connect to {addr}: {e}")))?;
        let reader = writer
            .try_clone()
            .map_err(|e| ServiceError::transport(format!("cannot clone stream: {e}")))?;
        Ok(RemoteService {
            addr: addr.clone(),
            pipe: Mutex::new(Pipe {
                reader: BufReader::new(reader),
                writer,
            }),
        })
    }

    pub fn addr(&self) -> &Addr {
        &self.addr
    }

    /// Verify the daemon speaks our protocol version with a
    /// [`Request::Stats`] ping; on mismatch the returned error names both
    /// versions.
    pub fn handshake(&self) -> Result<(), ServiceError> {
        match self.call(Request::stats()) {
            Response::Stats { version, .. } if version == PROTOCOL_VERSION => Ok(()),
            Response::Error { error, .. } => Err(error),
            other => Err(ServiceError::new(
                super::ErrorKind::Protocol,
                format!(
                    "daemon speaks protocol version {}, this client speaks {PROTOCOL_VERSION}",
                    other.version()
                ),
            )),
        }
    }

    fn exchange(&self, line: &str) -> Result<String, ServiceError> {
        let mut pipe = self.pipe.lock().unwrap();
        pipe.writer
            .write_all(line.as_bytes())
            .and_then(|_| pipe.writer.write_all(b"\n"))
            .and_then(|_| pipe.writer.flush())
            .map_err(|e| ServiceError::transport(format!("write to {}: {e}", self.addr)))?;
        let mut reply = String::new();
        let n = pipe
            .reader
            .read_line(&mut reply)
            .map_err(|e| ServiceError::transport(format!("read from {}: {e}", self.addr)))?;
        if n == 0 {
            return Err(ServiceError::transport(format!(
                "{} closed the connection",
                self.addr
            )));
        }
        Ok(reply)
    }
}

impl Service for RemoteService {
    fn call(&self, request: Request) -> Response {
        let line = request.encode();
        match self.exchange(&line) {
            Ok(reply) => match Response::decode(reply.trim_end_matches(['\r', '\n'])) {
                Ok(response) => response,
                Err(error) => Response::error(error),
            },
            Err(error) => Response::error(error),
        }
    }
}

impl std::fmt::Debug for RemoteService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteService")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}
